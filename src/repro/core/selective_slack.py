"""Reliability-aware selective slack computation (Section III-F).

Two views of the same idea, at the two levels the paper moves between:

- **Processor model** (:func:`max_level_slack`): the maximum slack
  ``S_max_{i,t}`` stealable at priority level i in ``[t, t + d_{i,t})``,
  obtained by summing the level-i idle periods of the interval -- the
  busy/idle-period scan of Section III-F, evaluated against the
  precomputed level-idle tables of a :class:`SlackStealer`.

- **FlexRay model** (:class:`SelectiveSlackPlanner`): in the table-driven
  static segment, slack is *structural idle slots*.  The planner is
  "selective" in exactly the paper's sense: it only considers slacks
  "whose timing lengths are larger than the segments to be retransmitted"
  -- i.e. slots whose capacity fits the candidate frame -- and only
  tracks slack for the messages the differentiated-retransmission plan
  actually selected, keeping the online computation O(1) per decision.
"""

from __future__ import annotations

import bisect

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.slack_table import IdleSlotTable
from repro.core.slack_stealing import SlackStealer
from repro.protocol.frame import PendingFrame
from repro.protocol.geometry import SegmentGeometry
from repro.obs import NULL_OBS, ObsLike

__all__ = ["max_level_slack", "SelectiveSlackPlanner"]


def max_level_slack(stealer: SlackStealer, level: int,
                    start: int, relative_deadline: int) -> int:
    """S_max_{i,t}: stealable slack at level ``level`` in [t, t+d).

    Evaluated on the aperiodic-free schedule: the total level-``level``
    idle time of the interval, which is exactly the busy/idle-period
    scan's result (idle periods are summed, busy periods contribute
    nothing).

    Args:
        stealer: Provides the precomputed level-idle tables.
        level: Priority level i.
        start: Interval start t.
        relative_deadline: Interval length d_{i,t}.
    """
    if start < 0 or relative_deadline < 0:
        raise ValueError("start and deadline must be non-negative")
    end = start + relative_deadline
    return (stealer.available_aperiodic_processing(level, end)
            - stealer.available_aperiodic_processing(level, start))


@dataclass
class _SlackDemand:
    """Outstanding demand against the structural slack supply."""

    count: int = 0


class SelectiveSlackPlanner:
    """Online selective-slack accounting for the FlexRay static segment.

    The planner answers, in O(1) amortized per query, the question the
    CoEfficient policy asks before promising a retransmission: *between
    now and this frame's deadline, are there enough structurally idle
    static slots (large enough for the frame) that are not already
    promised to earlier retransmissions?*

    Args:
        idle_table: Precomputed structural idle slots of the schedule.
        params: Cluster parameters (slot capacity, cycle length).
        dynamic_retransmission_share: Guaranteed retransmission capacity
            in the dynamic segment, in frames per cycle (CoEfficient
            reserves the highest-priority dynamic frame ID, worth one
            frame per cycle per channel when the segment is long enough).
        obs: Observability context; acceptance-test outcomes are
            recorded as ``slack.*`` counters and ``slack.promise`` hook
            events when enabled.
    """

    def __init__(self, idle_table: IdleSlotTable, params: SegmentGeometry,
                 dynamic_retransmission_share: float = 0.0,
                 obs: ObsLike = NULL_OBS) -> None:
        if dynamic_retransmission_share < 0:
            raise ValueError("dynamic share must be >= 0")
        self._idle_table = idle_table
        # The channel list is immutable for the table's lifetime; the
        # per-promise window scan is hot enough that re-materializing it
        # through the property on every call shows up in profiles.
        self._channels = list(idle_table.channels)
        self._params = params
        self._dynamic_share = dynamic_retransmission_share
        self._obs = obs
        # Outstanding promises as a sorted list of absolute deadlines:
        # a new candidate only competes with promises due no later than
        # itself (the retransmission queue is EDF, so later-deadline
        # promises never consume slots the candidate needs).
        self._outstanding: List[int] = []
        self._granted = 0
        self._rejected = 0

    @property
    def promised(self) -> int:
        """Retransmission slots currently promised but not yet used."""
        return len(self._outstanding)

    @property
    def stats(self) -> Dict[str, int]:
        """Grant/reject counters for experiment logs."""
        return {"granted": self._granted, "rejected": self._rejected,
                "outstanding": len(self._outstanding)}

    def fits_slot(self, pending: PendingFrame) -> bool:
        """Selective filter: does the frame fit a static slot at all?

        Slacks shorter than the segment to be retransmitted are never
        considered (the paper's selection rule); with uniform static
        slots this reduces to a capacity check.
        """
        return pending.payload_bits <= self._params.static_slot_capacity_bits

    def supply_between(self, now_mt: int, deadline_mt: int,
                       include_structural: bool = True) -> int:
        """Guaranteed slack slots in ``[now, deadline]``.

        Structural idle slots of whole cycles inside the window plus the
        reserved dynamic-segment share.  Partial leading/trailing cycles
        are excluded (conservative: a promise must never overcount).

        Args:
            include_structural: Count static idle slots; ``False``
                restricts the supply to the dynamic share (used for
                frames too large for a static slot).
        """
        if deadline_mt <= now_mt:
            return 0
        cycle_mt = self._params.gd_cycle_mt
        first_full = -(-now_mt // cycle_mt)   # ceil div
        last_full = max(first_full, deadline_mt // cycle_mt)
        structural = 0
        if include_structural:
            if last_full > first_full:
                structural = self._idle_table.idle_slots_between(
                    first_full, last_full
                )
            # Partial leading cycle: idle slots whose whole slot window
            # still lies after `now` (slot-granular, so conservative).
            leading_cycle = now_mt // cycle_mt
            if leading_cycle < first_full:
                structural += self._idle_slots_in_window(
                    leading_cycle,
                    from_mt=now_mt,
                    to_mt=min(deadline_mt, first_full * cycle_mt),
                )
            # Partial trailing cycle: idle slots fully before `deadline`.
            trailing_cycle = deadline_mt // cycle_mt
            if trailing_cycle >= first_full and trailing_cycle >= last_full \
                    and trailing_cycle != leading_cycle:
                structural += self._idle_slots_in_window(
                    trailing_cycle,
                    from_mt=max(now_mt, trailing_cycle * cycle_mt),
                    to_mt=deadline_mt,
                )
        window_cycles = max(last_full - first_full, 0)
        dynamic = int(self._dynamic_share * window_cycles)
        if self._obs.enabled:
            # Table "hit": the idle-slot table found structural slack in
            # the window; a miss falls back to the dynamic share only.
            self._obs.inc("slack.table_queries")
            self._obs.inc("slack.table_hits" if structural > 0
                          else "slack.table_misses")
        return structural + dynamic

    def _idle_slots_in_window(self, cycle: int, from_mt: int,
                              to_mt: int) -> int:
        """Idle slots of ``cycle`` whose slot window fits [from, to]."""
        if to_mt <= from_mt:
            return 0
        cycle_start = cycle * self._params.gd_cycle_mt
        count = 0
        for channel in self._channels:
            for start, end in self._idle_table.idle_slot_windows(channel,
                                                                 cycle):
                if (cycle_start + start >= from_mt
                        and cycle_start + end <= to_mt):
                    count += 1
        return count

    def try_promise(self, pending: PendingFrame, now_mt: int) -> bool:
        """Promise a slack slot to a retransmission if supply allows.

        The selective filter in action: a frame that fits a static slot
        may draw on structural idle slots plus the dynamic share; a
        larger frame only on the dynamic share (static slacks are
        "smaller than the segment to be retransmitted"); and a promise
        is only made when the unpromised supply before the deadline
        covers it.

        Args:
            pending: The retransmission candidate.
            now_mt: Current time.

        Returns:
            Whether the copy was promised capacity.
        """
        fits_static = self.fits_slot(pending)
        if not fits_static and self._dynamic_share <= 0:
            self._rejected += 1
            self._note_outcome(pending, now_mt, granted=False,
                               fits_static=False, supply=0, competing=0)
            return False
        supply = self.supply_between(
            now_mt, pending.deadline_mt, include_structural=fits_static
        )
        competing = bisect.bisect_right(self._outstanding,
                                        pending.deadline_mt)
        if supply <= competing:
            self._rejected += 1
            self._note_outcome(pending, now_mt, granted=False,
                               fits_static=fits_static, supply=supply,
                               competing=competing)
            return False
        bisect.insort(self._outstanding, pending.deadline_mt)
        self._granted += 1
        self._note_outcome(pending, now_mt, granted=True,
                           fits_static=fits_static, supply=supply,
                           competing=competing)
        return True

    def _note_outcome(self, pending: PendingFrame, now_mt: int,
                      granted: bool, fits_static: bool, supply: int,
                      competing: int) -> None:
        """Record one acceptance-test outcome (no-op when disabled)."""
        if not self._obs.enabled:
            return
        self._obs.inc("slack.promise_granted" if granted
                      else "slack.promise_rejected")
        self._obs.emit("slack.promise", granted=granted,
                       message_id=pending.message_id,
                       instance=pending.instance, now_mt=now_mt,
                       deadline_mt=pending.deadline_mt,
                       fits_static=fits_static, supply=supply,
                       competing=competing)

    def consume(self) -> None:
        """A promised slot was used (retransmission transmitted).

        The retransmission queue is EDF-ordered, so the consumed promise
        is the earliest-deadline outstanding one.
        """
        if self._outstanding:
            self._outstanding.pop(0)
            if self._obs.enabled:
                self._obs.inc("slack.promise_consumed")

    def release(self) -> None:
        """A promise lapsed (frame expired before transmission)."""
        if self._outstanding:
            self._outstanding.pop(0)
            if self._obs.enabled:
                self._obs.inc("slack.promise_released")
