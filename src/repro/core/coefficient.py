"""The CoEfficient scheduler (Sections III-D/E/F assembled).

CoEfficient's four moves, each mapped to a mechanism here:

1. **Cooperative dual-channel static scheduling** -- the static schedule
   is built with :data:`ChannelStrategy.DISTRIBUTE`: every frame
   transmits once, channel A first, spill to channel B.  What the
   spec-default duplication would have burned on redundant copies
   becomes structural slack on both channels.

2. **Differentiated retransmission** -- at bind time the policy computes
   per-message failure probabilities from the BER model and solves
   Theorem 1 for the minimum retransmission budgets ``k_z`` meeting the
   reliability goal rho (:func:`repro.core.retransmission.plan_retransmissions`).
   A corrupted frame is retried only if its message was selected and its
   budget is not exhausted -- "it is unnecessary to retransmit all
   segments".

3. **Selective slack stealing** -- retransmissions are hard-deadline
   aperiodic tasks placed into *structurally idle static slots* (and a
   reserved top-priority dynamic slot), but only after the
   :class:`~repro.core.selective_slack.SelectiveSlackPlanner` confirms
   enough fitting slack exists before the frame's deadline; unpromisable
   retries are dropped instead of wasting bandwidth.

4. **Unified soft-aperiodic scheduling** -- dynamic messages are not
   bound to fixed FTDMA frame IDs ("schedules both static and dynamic
   segments in a unified manner"): they wait in one global priority
   queue, every dynamic slot of either channel serves the most urgent
   message that still fits the segment remainder, and small heads may
   also ride idle static slots.  This removes the spec's ID-order
   starvation of low-priority frames and is what lifts bandwidth
   utilization and cuts dynamic latency relative to FSPEC's strictly
   separate segments.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.analysis.slack_table import IdleSlotTable
from repro.core.queueing import QueueingPolicyBase
from repro.core.retransmission import (
    RetransmissionPlan,
    plan_retransmissions,
    uniform_retransmission_plan,
)
from repro.core.selective_slack import SelectiveSlackPlanner
from repro.faults.ber import BitErrorRateModel
from repro.protocol.channel import Channel
from repro.protocol.frame import FrameKind, PendingFrame
from repro.protocol.schedule import ChannelStrategy
from repro.packing.frame_packing import PackingResult
from repro.sim.trace import TransmissionOutcome

__all__ = ["CoEfficientPolicy"]


class CoEfficientPolicy(QueueingPolicyBase):
    """Cooperative, reliability-goal-driven FlexRay scheduler.

    Args:
        packing: The packed workload.
        ber_model: Fault environment used for the offline Theorem-1
            planning (the planner sees channel A's BER; the injector may
            of course differ -- that mismatch is what the robustness
            tests probe).
        reliability_goal: rho in (0, 1].
        time_unit_ms: Theorem 1's time unit u.
        max_budget: Cap on per-message retransmission budgets.
        steal_for_dynamic: Whether soft aperiodics may ride static slack
            (disabled by the ablation benchmark).
        selective: Whether the slack planner gates retransmissions
            (disabled by the ablation benchmark: every retry is queued).
        feedback: Reactive-ARQ extension: retransmit only on observed
            corruption instead of sending the planned k_z open-loop
            copies (see :class:`QueueingPolicyBase`).
        uniform_budget: Ablation: replace the differentiated plan with
            the smallest uniform k meeting rho.
    """

    name = "CoEfficient"

    def __init__(self, packing: PackingResult, ber_model: BitErrorRateModel,
                 reliability_goal: float = 0.999999,
                 time_unit_ms: float = 1000.0,
                 max_budget: int = 8,
                 steal_for_dynamic: bool = True,
                 selective: bool = True,
                 feedback: bool = False,
                 uniform_budget: bool = False,
                 drop_expired_dynamic: bool = True,
                 optimize_iterations: int = 0) -> None:
        super().__init__(packing, reserve_retransmission_slot=True,
                         feedback=feedback,
                         drop_expired_dynamic=drop_expired_dynamic,
                         optimize_iterations=optimize_iterations)
        self._uniform_budget = uniform_budget
        if not 0.0 < reliability_goal <= 1.0:
            raise ValueError(
                f"reliability goal must be in (0, 1], got {reliability_goal}"
            )
        if time_unit_ms <= 0:
            raise ValueError(f"time unit must be positive, got {time_unit_ms}")
        self._ber_model = ber_model
        self._rho = reliability_goal
        self._time_unit_ms = time_unit_ms
        self._max_budget = max_budget
        self._steal_for_dynamic = steal_for_dynamic
        self._selective = selective
        self.plan: Optional[RetransmissionPlan] = None
        self._planner: Optional[SelectiveSlackPlanner] = None
        # Unified soft-aperiodic pool: (priority, generation, seq, frame).
        self._soft_heap: List[tuple] = []

    # ------------------------------------------------------------------
    # Offline planning
    # ------------------------------------------------------------------

    def channel_strategy(self) -> str:
        return ChannelStrategy.DISTRIBUTE

    def serves_dynamic(self, channel: Channel) -> bool:
        return True  # cooperative: both channels' dynamic segments work

    def on_bound(self) -> None:
        assert self.params is not None
        failure: Dict[str, float] = {}
        instances: Dict[str, float] = {}
        cost: Dict[str, float] = {}
        for message in self._packing.messages:
            # Worst chunk drives the per-attempt failure probability; the
            # budget applies per chunk (conservative for multi-chunk
            # messages, and exact for the common single-chunk case).
            worst_bits = max(
                chunk.payload_bits for chunk in message.chunks
            ) + 64  # frame overhead
            failure[message.message_id] = self._ber_model.failure_probability(
                "A", worst_bits
            )
            instances[message.message_id] = (
                self._time_unit_ms / message.period_ms
            )
            cost[message.message_id] = worst_bits / message.period_ms
        if self._uniform_budget:
            self.plan = uniform_retransmission_plan(
                failure, instances, self._rho, max_budget=self._max_budget,
            )
        else:
            self.plan = plan_retransmissions(
                failure, instances, self._rho,
                bandwidth_cost=cost, max_budget=self._max_budget,
            )
        compiled = self.compiled_round()
        assert compiled is not None
        idle_table = IdleSlotTable.from_compiled(compiled)
        dynamic_share = 0.0
        if self.retransmission_slot_id is not None:
            serving = sum(
                1 for channel in self.cluster.channels
                if self.serves_dynamic(channel)
            )
            dynamic_share = float(serving)
        self._planner = SelectiveSlackPlanner(
            idle_table, self.params,
            dynamic_retransmission_share=dynamic_share,
            obs=self.obs,
        )
        if self.obs.enabled:
            self.obs.merge_counters("retransmission.plan", {
                "selected_messages": len(self.plan.selected_messages()),
                "planned_messages": len(self.plan.budgets),
                "budget_total": sum(self.plan.budgets.values()),
                "feasible": self.plan.feasible,
                "achieved_probability": self.plan.achieved_probability,
            })
            self.obs.emit("retransmission.plan", feasible=self.plan.feasible,
                          selected=len(self.plan.selected_messages()),
                          budget_total=sum(self.plan.budgets.values()))

    @property
    def slack_planner(self) -> SelectiveSlackPlanner:
        """The selective-slack planner (available after ``bind``)."""
        if self._planner is None:
            raise RuntimeError("policy not bound yet")
        return self._planner

    # ------------------------------------------------------------------
    # Differentiated retransmission
    # ------------------------------------------------------------------

    def redundancy_for_arrival(self, pending: PendingFrame) -> int:
        """Open-loop copies per instance: the planned budget k_z."""
        assert self.plan is not None
        return self.plan.budget_for(pending.message_id)

    def enqueue_copy(self, copy: PendingFrame, now_mt: int) -> bool:
        """Admit a planned copy only if selective slack covers it."""
        if self._selective and self._planner is not None:
            if not self._planner.try_promise(copy, now_mt):
                return False
        self.push_retransmission(copy)
        return True

    def handle_failure(self, pending: PendingFrame, segment: str,
                       end_mt: int) -> None:
        assert self.plan is not None and self._planner is not None
        budget = self.plan.budget_for(pending.message_id)
        if pending.attempt >= budget:
            if self.obs.enabled:
                self.obs.inc("retransmission.budget_exhausted")
            return  # budget exhausted or message not selected
        if end_mt >= pending.deadline_mt:
            self.counters["retx_abandoned"] += 1
            return
        if self.chunk_delivered(pending):
            return
        retry = pending.retry(end_mt)
        if self._selective:
            if not self._planner.try_promise(retry, end_mt):
                self.counters["retx_abandoned"] += 1
                if self.obs.enabled:
                    self.obs.emit("policy.retx_admission",
                                  message_id=pending.message_id,
                                  instance=pending.instance,
                                  admitted=False, open_loop=False)
                return
        self.push_retransmission(retry)
        self.counters["retx_enqueued"] += 1
        if self.obs.enabled:
            self.obs.emit("policy.retx_admission",
                          message_id=pending.message_id,
                          instance=pending.instance,
                          admitted=True, open_loop=False)

    def on_retx_discard(self, pending: PendingFrame) -> None:
        if self._selective and self._planner is not None:
            self._planner.release()

    def on_outcome(self, pending: PendingFrame, channel: Channel,
                   segment: str, outcome: TransmissionOutcome,
                   end_mt: int) -> None:
        # A transmitted retransmission used its promised slack slot,
        # whichever path (stolen static slot or the reserved dynamic
        # slot) carried it.
        if (pending.kind is FrameKind.RETRANSMISSION
                and self._selective and self._planner is not None):
            self._planner.consume()
        super().on_outcome(pending, channel, segment, outcome, end_mt)

    # ------------------------------------------------------------------
    # Unified soft-aperiodic pool (dynamic messages)
    # ------------------------------------------------------------------

    def route_dynamic_arrival(self, pending: PendingFrame) -> None:
        """Dynamic messages join one global priority queue."""
        heapq.heappush(self._soft_heap, (pending.queue_key(), pending))
        self._dynamic_backlog += 1

    def _pop_soft(self, max_payload_bits: Optional[int],
                  now_mt: int) -> Optional[PendingFrame]:
        """Most urgent live soft message with payload <= the bound.

        Oversized entries are skipped (bounded re-push scan), expired
        entries are dropped when ``drop_expired_dynamic`` is set.
        """
        skipped: List[tuple] = []
        result: Optional[PendingFrame] = None
        while self._soft_heap:
            entry = heapq.heappop(self._soft_heap)
            __, pending = entry
            if (self.drop_expired_dynamic
                    and pending.deadline_mt < now_mt):
                self._dynamic_backlog -= 1
                self.counters["stale_drops"] += 1
                continue
            if pending.generation_time_mt > now_mt:
                skipped.append(entry)
                continue
            if (max_payload_bits is not None
                    and pending.payload_bits > max_payload_bits):
                skipped.append(entry)
                continue
            result = pending
            self._dynamic_backlog -= 1
            break
        for entry in skipped:
            heapq.heappush(self._soft_heap, entry)
        return result

    def _push_soft(self, pending: PendingFrame) -> None:
        heapq.heappush(self._soft_heap, (pending.queue_key(), pending))
        self._dynamic_backlog += 1

    def dynamic_frame_for(self, channel: Channel, slot_id: int,
                          start_mt: int,
                          minislots_remaining: int) -> Optional[PendingFrame]:
        assert self.params is not None
        self._now_mt = start_mt
        # Retransmissions keep absolute priority in the reserved slot.
        if slot_id == self.retransmission_slot_id:
            retry = self.pop_retransmission(fit_bits=None, now_mt=start_mt)
            if retry is not None:
                self.counters["retx_tx"] += 1
                return retry
        # Every other dynamic slot serves the unified pool with the most
        # urgent message that still fits the segment remainder.
        capacity_bits = self._payload_fitting_minislots(minislots_remaining)
        if capacity_bits <= 0 or self._dynamic_backlog == 0:
            return None
        pending = self._pop_soft(capacity_bits, start_mt)
        if pending is not None:
            self.counters["dynamic_tx"] += 1
        return pending

    def _payload_fitting_minislots(self, minislots: int) -> int:
        """Largest payload whose dynamic transmission fits ``minislots``."""
        assert self.params is not None
        params = self.params
        usable_mt = ((minislots - params.gd_dynamic_slot_idle_phase_minislots)
                     * params.gd_minislot_mt
                     - params.gd_minislot_action_point_offset_mt)
        if usable_mt <= 0:
            return 0
        bits = int(usable_mt * params.bits_per_macrotick) - 64
        return max(0, bits)

    def on_dynamic_hold(self, pending: PendingFrame, channel: Channel) -> None:
        if pending.kind is FrameKind.RETRANSMISSION:
            self.push_retransmission(pending)
            self.counters["retx_tx"] -= 1
        else:
            self._push_soft(pending)
            self.counters["dynamic_tx"] -= 1

    def pending_work(self) -> int:
        return super().pending_work() + len(self._soft_heap)

    # ------------------------------------------------------------------
    # Slack stealing in idle static slots
    # ------------------------------------------------------------------

    def decisions_are_outcome_free(self) -> bool:
        """CoEfficient's open-loop decisions ignore same-segment outcomes.

        Beyond the base mutations, CoEfficient's ``on_outcome`` consumes
        a slack promise (``planner.consume``) for transmitted
        retransmissions.  Planner state is read back only by
        ``try_promise``, and ``try_promise`` is reached solely from
        ``enqueue_copy`` (the ``on_arrival`` path) and the feedback-only
        ``handle_failure`` -- never from ``static_frame_for`` /
        ``slack_frame_for`` / ``dynamic_frame_for`` / ``on_dynamic_hold``.
        The vectorized engine separately guarantees that no arrival is
        delivered between a deferred outcome and a later decision: a
        mid-segment arrival ends the current sub-batch, whose outcomes
        (including the ``consume`` ledger updates) are settled *before*
        the arrival's ``try_promise`` runs.  So deferring ``consume``
        within a sub-batch cannot change any phase-A answer.  With
        feedback on, a corrupted frame re-enters the retransmission
        heap mid-segment and the proof fails.
        """
        return not self.feedback

    def slack_idle_is_noop(self) -> bool:
        """Idle static queries are no-ops when nothing can be stolen.

        ``slack_frame_for`` below has exactly two sources: the
        retransmission heap (empty => the pop is a side-effect-free
        ``None``) and, when cooperation is on, the soft pool
        (``_dynamic_backlog`` counts it incrementally).  With both dry
        the query provably answers ``None`` without mutating state, so
        the stepper may skip it.
        """
        return (not self._retx_heap
                and (not self._steal_for_dynamic
                     or self._dynamic_backlog == 0))

    def slack_frame_for(self, channel: Channel, cycle: int, slot_id: int,
                        action_point_mt: int) -> Optional[PendingFrame]:
        assert self.params is not None
        capacity = self.params.static_slot_capacity_bits

        # Hard aperiodics (retransmissions) first.  The promise is
        # consumed in on_outcome, once the transmission actually happened
        # (covers the dynamic-slot path too and is immune to holds).
        retry = self.pop_retransmission(fit_bits=capacity,
                                        now_mt=action_point_mt)
        if retry is not None:
            return retry

        # Then soft aperiodics (dynamic messages), if cooperation is on.
        if not self._steal_for_dynamic or self._dynamic_backlog == 0:
            return None
        return self._pop_soft(capacity, action_point_mt)
