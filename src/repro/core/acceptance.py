"""Hard-aperiodic acceptance test (Section III-C).

A retransmitted segment is a *hard-deadline aperiodic* task: before
promising it, the scheduler must "determine whether there exists
sufficient time available during the interval between the arrival time
and the completion deadline", while "all the guaranteed tasks, including
periodics and previously guaranteed but not yet completed aperiodics,
[still] meet their deadlines".

Two tests are provided:

- :meth:`AcceptanceTest.quick_reject` -- the paper's theta-accumulator
  style bound: the level-idle prefix tables give an *upper* bound on the
  aperiodic processing available in ``[alpha, alpha + D]``; when even the
  upper bound cannot fit the new task plus the already-promised backlog,
  the task is rejected without simulation.
- :meth:`AcceptanceTest.admit` -- the authoritative test: a trial run of
  the exact slack-stealing schedule over the interval.  The task is
  admitted iff the trial completes it by its deadline with every
  previously guaranteed aperiodic still on time (periodic deadlines hold
  by the slack stealer's construction).

The quick bound makes the common (overloaded) case cheap; the trial run
keeps admission exact, which the property tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.slack_stealing import SlackStealer
from repro.core.tasks import AperiodicTask, TaskSet

__all__ = ["AcceptanceTest", "AdmissionResult"]


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of one admission attempt."""

    admitted: bool
    reason: str
    projected_completion: Optional[int] = None


class AcceptanceTest:
    """Admission control for hard-deadline aperiodic tasks.

    Args:
        tasks: The hard periodic task set (priority order).
        horizon: Analysis horizon (defaults to the task set's).
    """

    def __init__(self, tasks: TaskSet, horizon: Optional[int] = None) -> None:
        self._stealer = SlackStealer(tasks, horizon=horizon)
        self._n = len(tasks)
        self._guaranteed: List[AperiodicTask] = []

    @property
    def guaranteed(self) -> List[AperiodicTask]:
        """Previously admitted, not-yet-expired hard aperiodics."""
        return list(self._guaranteed)

    def quick_reject(self, task: AperiodicTask) -> bool:
        """Cheap necessary-condition check: ``True`` means *reject now*.

        Upper-bounds the aperiodic processing available in
        ``[alpha_k, alpha_k + D_k]`` by the smallest per-level idle time
        of the aperiodic-free schedule in that window (idle at every
        level is necessary for top-priority aperiodic service), then
        compares against the task's demand plus the backlog of admitted
        tasks sharing the window.
        """
        if task.deadline is None:
            return False  # soft tasks are never admission-tested
        window_start = task.arrival
        window_end = task.absolute_deadline or task.arrival
        upper = None
        for level in range(self._n):
            idle = (self._stealer.available_aperiodic_processing(level, window_end)
                    - self._stealer.available_aperiodic_processing(level, window_start))
            upper = idle if upper is None else min(upper, idle)
        if upper is None:
            return False
        backlog = sum(
            g.execution for g in self._guaranteed
            if g.arrival < window_end
            and (g.absolute_deadline or window_end) > window_start
        )
        return upper < task.execution + backlog

    def admit(self, task: AperiodicTask) -> AdmissionResult:
        """Authoritative admission test (trial schedule).

        Args:
            task: A *hard* aperiodic task (``deadline`` must be set).

        Returns:
            An :class:`AdmissionResult`; on admission the task joins the
            guaranteed set and its projected completion is reported.
        """
        if task.deadline is None:
            raise ValueError(
                f"{task.name}: soft aperiodics are served best-effort, "
                f"not admission-tested"
            )
        if self.quick_reject(task):
            return AdmissionResult(
                admitted=False,
                reason="insufficient slack upper bound in window",
            )

        trial_set = self._guaranteed + [task]
        trial_until = max(
            (t.absolute_deadline or 0) for t in trial_set
        ) + 1
        outcome = self._stealer.run(trial_set, until=trial_until)

        for guaranteed in trial_set:
            completion = outcome.aperiodic_completions.get(guaranteed.name)
            deadline = guaranteed.absolute_deadline
            if completion is None or (deadline is not None
                                      and completion > deadline):
                culprit = ("new task" if guaranteed.name == task.name
                           else f"previously guaranteed {guaranteed.name}")
                return AdmissionResult(
                    admitted=False,
                    reason=f"trial schedule misses {culprit}",
                )

        self._guaranteed.append(task)
        return AdmissionResult(
            admitted=True,
            reason="trial schedule meets all deadlines",
            projected_completion=outcome.aperiodic_completions[task.name],
        )

    def expire(self, now: int) -> int:
        """Drop guaranteed tasks whose deadline already passed.

        Returns:
            Number of entries removed.  Called as time advances so the
            guaranteed set (and trial-schedule cost) stays small.
        """
        before = len(self._guaranteed)
        self._guaranteed = [
            g for g in self._guaranteed
            if (g.absolute_deadline or now) > now
        ]
        return before - len(self._guaranteed)
