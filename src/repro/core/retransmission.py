"""Differentiated retransmission planning (Section III-E, Theorem 1).

Given per-message failure probabilities ``p_z``, instance rates
``u / T_z`` and a reliability goal ``rho``, choose the retransmission
budget vector ``k_z`` so that

    prod_z (1 - p_z^{k_z+1})^{u/T_z}  >=  rho

at minimum cost.  "Different reliability goals may produce different
sets of retransmitted segments" -- messages whose single-shot success
already suffices get ``k_z = 0`` and are *not* selected for
retransmission, which is the selectivity the bandwidth savings come from.

The planner is greedy in log space: each step buys one retransmission
for the message with the best marginal improvement of the goal gap per
unit of bandwidth cost (``W_z / T_z`` -- retransmitting a big frequent
message costs more slack).  Greedy is optimal here because the marginal
log-gain of each additional k for a fixed message is strictly decreasing
(diminishing returns) and costs are additive.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.faults.analysis import log_message_success_probability

__all__ = ["RetransmissionPlan", "plan_retransmissions",
           "uniform_retransmission_plan"]

#: Practical ceiling on per-message retransmissions: past this, either
#: the goal is unreachable at this BER or the inputs are degenerate.
MAX_RETRANSMISSIONS = 64


@dataclass(frozen=True)
class RetransmissionPlan:
    """The planner's output.

    Attributes:
        budgets: ``message -> k_z`` (messages absent or 0 are not
            selected for retransmission).
        achieved_log_probability: log of Theorem 1's product under the
            budgets.
        goal_log_probability: log(rho) the plan was built against.
        feasible: Whether the goal was met within the budget cap.
        total_cost: Sum of ``k_z * W_z / T_z`` (bandwidth-weighted).
    """

    budgets: Dict[str, int]
    achieved_log_probability: float
    goal_log_probability: float
    feasible: bool
    total_cost: float

    def budget_for(self, message: str) -> int:
        """k_z for a message (0 when unselected)."""
        return self.budgets.get(message, 0)

    def selected_messages(self) -> Dict[str, int]:
        """Messages with a non-zero retransmission budget."""
        return {m: k for m, k in self.budgets.items() if k > 0}

    @property
    def achieved_probability(self) -> float:
        """Theorem 1's product in linear space."""
        return math.exp(self.achieved_log_probability)


def _log_gain(p_z: float, k: int, instances: float) -> float:
    """Marginal log-probability gain of going from k to k+1 retries."""
    return (log_message_success_probability(p_z, k + 1, instances)
            - log_message_success_probability(p_z, k, instances))


def plan_retransmissions(
    failure_probabilities: Mapping[str, float],
    instances: Mapping[str, float],
    rho: float,
    bandwidth_cost: Optional[Mapping[str, float]] = None,
    max_budget: int = MAX_RETRANSMISSIONS,
) -> RetransmissionPlan:
    """Compute the differentiated retransmission budgets.

    Args:
        failure_probabilities: ``message -> p_z`` per-attempt failure
            probability.
        instances: ``message -> u / T_z`` instance count over the time
            unit (fractional allowed).
        rho: Reliability goal in (0, 1].
        bandwidth_cost: ``message -> cost`` of one retransmission
            (defaults to 1 per message: pure count minimization).
        max_budget: Per-message cap on k_z.

    Returns:
        A :class:`RetransmissionPlan`; ``feasible`` is ``False`` when
        even max budgets cannot reach rho (the plan then carries the
        best-achievable budgets).
    """
    if not 0.0 < rho <= 1.0:
        raise ValueError(f"rho must be in (0, 1], got {rho}")
    missing = set(failure_probabilities) - set(instances)
    if missing:
        raise ValueError(f"no instance counts for: {sorted(missing)}")
    costs = dict(bandwidth_cost or {})

    gamma = 1.0 - rho
    goal_log = math.log1p(-gamma) if gamma < 0.5 else math.log(rho)

    budgets: Dict[str, int] = {m: 0 for m in failure_probabilities}
    current_log = sum(
        log_message_success_probability(p, 0, instances[m])
        for m, p in failure_probabilities.items()
    )
    total_cost = 0.0

    # Max-heap of (gain / cost) candidates; lazily re-pushed after pops
    # because each message's next gain depends on its current budget.
    heap: list = []
    for message, p_z in failure_probabilities.items():
        if p_z <= 0.0:
            continue
        gain = _log_gain(p_z, 0, instances[message])
        cost = max(costs.get(message, 1.0), 1e-12)
        if gain > 0:
            heapq.heappush(heap, (-gain / cost, message))

    while current_log < goal_log and heap:
        __, message = heapq.heappop(heap)
        k = budgets[message]
        if k >= max_budget:
            continue
        p_z = failure_probabilities[message]
        gain = _log_gain(p_z, k, instances[message])
        budgets[message] = k + 1
        current_log += gain
        total_cost += costs.get(message, 1.0)
        next_gain = _log_gain(p_z, k + 1, instances[message])
        cost = max(costs.get(message, 1.0), 1e-12)
        if next_gain > 0 and budgets[message] < max_budget:
            heapq.heappush(heap, (-next_gain / cost, message))

    return RetransmissionPlan(
        budgets=budgets,
        achieved_log_probability=current_log,
        goal_log_probability=goal_log,
        feasible=current_log >= goal_log,
        total_cost=total_cost,
    )


def uniform_retransmission_plan(
    failure_probabilities: Mapping[str, float],
    instances: Mapping[str, float],
    rho: float,
    max_budget: int = MAX_RETRANSMISSIONS,
) -> RetransmissionPlan:
    """Ablation baseline: one k for every message (no differentiation).

    Finds the smallest uniform k meeting the goal -- the "retransmit
    everything equally" strawman the differentiated planner is compared
    against in the ablation benchmark.
    """
    if not 0.0 < rho <= 1.0:
        raise ValueError(f"rho must be in (0, 1], got {rho}")
    gamma = 1.0 - rho
    goal_log = math.log1p(-gamma) if gamma < 0.5 else math.log(rho)

    for k in range(max_budget + 1):
        current_log = sum(
            log_message_success_probability(p, k, instances[m])
            for m, p in failure_probabilities.items()
        )
        if current_log >= goal_log:
            budgets = {m: k for m in failure_probabilities}
            return RetransmissionPlan(
                budgets=budgets,
                achieved_log_probability=current_log,
                goal_log_probability=goal_log,
                feasible=True,
                total_cost=float(k * len(budgets)),
            )
    budgets = {m: max_budget for m in failure_probabilities}
    current_log = sum(
        log_message_success_probability(p, max_budget, instances[m])
        for m, p in failure_probabilities.items()
    )
    return RetransmissionPlan(
        budgets=budgets,
        achieved_log_probability=current_log,
        goal_log_probability=goal_log,
        feasible=False,
        total_cost=float(max_budget * len(budgets)),
    )
