"""Shared queue/buffer mechanics for FlexRay scheduler policies.

Everything CoEfficient and the FSPEC baseline have in *common* lives
here, so that their benchmark differences are attributable to policy,
not plumbing:

- schedule-table construction (strategy chosen by the subclass);
- CHI static buffers (one per chunk per channel, overwrite semantics);
- per-frame-ID dynamic priority queues (peek/pop via the engine
  contract: pop in ``dynamic_frame_for``, restore in ``on_dynamic_hold``);
- a hard-aperiodic retransmission heap (EDF order);
- per-chunk delivery status used to cancel retransmissions that a
  redundant copy already satisfied.

Subclasses decide: the channel strategy, what happens in an idle static
slot (slack!), which channels serve dynamic traffic, and the
retransmission reaction to failures.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.protocol.channel import Channel
from repro.protocol.chi import PriorityOutputQueue, StaticBuffer
from repro.protocol.cluster import Cluster
from repro.protocol.frame import FrameKind, PendingFrame
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.policy import SchedulerPolicy
from repro.protocol.schedule import ScheduleTable
from repro.packing.frame_packing import PackingResult
from repro.sim.trace import TransmissionOutcome
from repro.timeline.compiler import CompiledRound, compile_round

__all__ = ["QueueingPolicyBase"]

#: Per-chunk delivery status values.
_PENDING, _DELIVERED = 0, 1

#: Prune the chunk-status map every this many cycles.
_STATUS_PRUNE_INTERVAL = 64


class QueueingPolicyBase(SchedulerPolicy):
    """Common mechanics; see module docstring.

    Retransmission model: FlexRay has no acknowledgements ("it does not
    support acknowledgement or retransmission schemes" -- Section I), so
    the paper's retransmissions are *open-loop planned copies*: message z
    is transmitted ``k_z + 1`` times per instance whether or not the
    first copy survived, and Theorem 1 prices exactly that.  The default
    here is therefore open-loop: copies are enqueued at arrival via the
    :meth:`redundancy_for_arrival` hook.  ``feedback=True`` switches to
    reactive ARQ (the sender's controller monitors the bus and retries
    only actual corruption) -- an extension the ablation benchmark
    compares against the paper's model.

    Args:
        packing: The packed workload (messages, chunk frames, IDs).
        reserve_retransmission_slot: Whether the first dynamic slot ID is
            reserved for retransmission traffic (shifting the dynamic
            messages' IDs up by one).
        feedback: Reactive-ARQ mode (see above).
        drop_expired_dynamic: Drop dynamic-queue messages once their
            deadline passed (real controllers would still send them;
            metrics count them missed either way).  Completion-mode
            experiments disable this so every instance eventually
            delivers and "running time" is well defined.
        optimize_iterations: Hill-climbing proposals applied to the
            greedy static schedule at bind time (0 = greedy only); see
            :class:`repro.packing.optimizer.ScheduleOptimizer`.
    """

    name = "queueing-base"

    def __init__(self, packing: PackingResult,
                 reserve_retransmission_slot: bool = True,
                 feedback: bool = False,
                 drop_expired_dynamic: bool = True,
                 optimize_iterations: int = 0) -> None:
        if optimize_iterations < 0:
            raise ValueError("optimize_iterations must be >= 0")
        self._packing = packing
        self._reserve_retx = reserve_retransmission_slot
        self.feedback = feedback
        self.drop_expired_dynamic = drop_expired_dynamic
        self._optimize_iterations = optimize_iterations
        self.params: Optional[SegmentGeometry] = None
        self.cluster: Optional[Cluster] = None
        self._table: Optional[ScheduleTable] = None
        self._round: Optional[CompiledRound] = None
        # (message_id, chunk) -> [(channel, slot_id), ...]
        self._placements: Dict[Tuple[str, int], List[Tuple[Channel, int]]] = {}
        # (message_id, chunk, channel) -> StaticBuffer
        self._buffers: Dict[Tuple[str, int, Channel], StaticBuffer] = {}
        # dynamic slot id -> queue
        self._dynamic_queues: Dict[int, PriorityOutputQueue] = {}
        self._retx_heap: List[tuple] = []  # (deadline, sequence, pending)
        self._retx_slot_id: Optional[int] = None
        self._dynamic_backlog = 0  # incremental count across all queues
        # (message_id, instance, chunk) -> (status, deadline)
        self._chunk_status: Dict[Tuple[str, int, int], Tuple[int, int]] = {}
        self._now_mt = 0
        self.counters: Dict[str, int] = {
            "primary_tx": 0, "retx_tx": 0, "dynamic_tx": 0,
            "slack_steals": 0, "retx_enqueued": 0, "retx_abandoned": 0,
            "stale_drops": 0,
        }

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def channel_strategy(self) -> str:
        """Channel strategy for the static schedule (subclass hook)."""
        raise NotImplementedError

    def serves_dynamic(self, channel: Channel) -> bool:
        """Whether a channel's dynamic segment serves traffic."""
        return True

    def on_bound(self) -> None:
        """Extra offline planning after the table exists (hook)."""

    def handle_failure(self, pending: PendingFrame, segment: str,
                       end_mt: int) -> None:
        """React to a corrupted transmission (feedback mode only, hook)."""

    def redundancy_for_arrival(self, pending: PendingFrame) -> int:
        """Open-loop copies to enqueue when an instance arrives (hook)."""
        return 0

    def enqueue_copy(self, copy: PendingFrame, now_mt: int) -> bool:
        """Queue one open-loop redundancy copy (hook: admission policy).

        The base implementation queues unconditionally (best-effort);
        CoEfficient overrides with the selective-slack promise check.

        Returns:
            Whether the copy was queued.
        """
        self.push_retransmission(copy)
        return True

    def slack_frame_for(self, channel: Channel, cycle: int, slot_id: int,
                        action_point_mt: int) -> Optional[PendingFrame]:
        """What to send in an idle static slot (hook: slack stealing).

        The base policy leaves idle slots idle (the separate-scheduling
        behaviour the paper criticizes).
        """
        return None

    # ------------------------------------------------------------------
    # SchedulerPolicy: lifecycle
    # ------------------------------------------------------------------

    def bind(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.params = cluster.params
        frames = self._packing.static_frames()
        self._table = self.params.build_schedule(
            frames, strategy=self.channel_strategy()
        )
        if self._optimize_iterations > 0:
            from repro.packing.optimizer import ScheduleOptimizer
            from repro.sim.rng import RngStream
            optimizer = ScheduleOptimizer(
                self.params,
                rng=RngStream(0, f"schedule-optimizer/{self.name}"),
            )
            self._table = optimizer.optimize_table(
                self._table, iterations=self._optimize_iterations)
        self._round = compile_round(
            self._table, self.params, list(cluster.channels), obs=self.obs
        )
        self._build_placements()
        self._build_dynamic_queues()
        self._configure_nodes()
        self.on_bound()

    @property
    def table(self) -> ScheduleTable:
        """The static schedule (available after ``bind``)."""
        if self._table is None:
            raise RuntimeError("policy not bound to a cluster yet")
        return self._table

    def compiled_round(self) -> Optional[CompiledRound]:
        """The compiled communication round (available after ``bind``)."""
        return self._round

    @property
    def retransmission_slot_id(self) -> Optional[int]:
        """Dynamic slot ID reserved for retransmissions (if any)."""
        return self._retx_slot_id

    def _build_placements(self) -> None:
        for channel in (Channel.A, Channel.B):
            for assignment in self.table.assignments(channel):
                frame = assignment.frame
                key = (frame.message_id, frame.chunk)
                self._placements.setdefault(key, []).append(
                    (channel, assignment.slot_id)
                )
                buffer_key = (frame.message_id, frame.chunk, channel)
                if buffer_key not in self._buffers:
                    self._buffers[buffer_key] = StaticBuffer(assignment.slot_id)

    def _build_dynamic_queues(self) -> None:
        params = self.params
        assert params is not None
        offset = 0
        if self._reserve_retx and params.g_number_of_minislots > 0:
            self._retx_slot_id = params.first_dynamic_slot_id
            offset = 1
        for message_id, packed_id in self._packing.dynamic_frame_ids().items():
            slot_id = packed_id + offset
            self._dynamic_queues[slot_id] = PriorityOutputQueue(slot_id)
            # Remember which slot serves this message for arrival routing.
            self._dynamic_slot_of = getattr(self, "_dynamic_slot_of", {})
            self._dynamic_slot_of[message_id] = slot_id

    def _configure_nodes(self) -> None:
        """Mirror slot/ID ownership into the node controllers."""
        assert self.cluster is not None
        assert self._round is not None
        node_count = len(self.cluster.nodes)
        for node in self.cluster.nodes:
            node.controller.configure_from_round(self._round)
        for message in self._packing.aperiodic_messages():
            slot_id = getattr(self, "_dynamic_slot_of", {}).get(
                message.message_id
            )
            if slot_id is None:
                continue
            producer = message.chunks[0].producer_ecu
            if 0 <= producer < node_count:
                controller = self.cluster.nodes[producer].controller
                if not controller.owns_dynamic_id(slot_id):
                    controller.configure_dynamic_id(slot_id)

    # ------------------------------------------------------------------
    # SchedulerPolicy: arrivals and cycles
    # ------------------------------------------------------------------

    def route_dynamic_arrival(self, pending: PendingFrame) -> None:
        """Queue an arriving dynamic message (hook).

        Default: the spec's FTDMA discipline -- each message waits in
        the priority queue of its own frame ID, so bus access follows
        ID order (and short dynamic segments starve high IDs, the
        behaviour the paper criticizes).
        """
        slot_id = getattr(self, "_dynamic_slot_of", {}).get(
            pending.message_id
        )
        if slot_id is not None:
            self._dynamic_queues[slot_id].push(pending)
            self._dynamic_backlog += 1

    def on_arrival(self, pending: PendingFrame) -> None:
        self._note_chunk(pending)
        if pending.frame.kind is FrameKind.DYNAMIC:
            self.route_dynamic_arrival(pending)
        else:
            key = (pending.message_id, pending.frame.chunk)
            for channel, __ in self._placements.get(key, ()):
                buffer = self._buffers[(pending.message_id,
                                        pending.frame.chunk, channel)]
                buffer.write(pending)
        if not self.feedback:
            copies = self.redundancy_for_arrival(pending)
            previous = pending
            for __ in range(copies):
                copy = previous.retry(pending.generation_time_mt)
                previous = copy
                admitted = self.enqueue_copy(copy, pending.generation_time_mt)
                if admitted:
                    self.counters["retx_enqueued"] += 1
                else:
                    self.counters["retx_abandoned"] += 1
                if self.obs.enabled:
                    self.obs.emit("policy.retx_admission",
                                  message_id=pending.message_id,
                                  instance=pending.instance,
                                  admitted=admitted, open_loop=True)

    def on_cycle_start(self, cycle: int, start_mt: int) -> None:
        self._now_mt = start_mt
        if cycle % _STATUS_PRUNE_INTERVAL == 0 and self._chunk_status:
            cutoff = start_mt - 2 * self.params.gd_cycle_mt \
                if self.params else start_mt
            self._chunk_status = {
                key: value for key, value in self._chunk_status.items()
                if value[1] >= cutoff or value[0] == _PENDING
            }

    # ------------------------------------------------------------------
    # SchedulerPolicy: static segment
    # ------------------------------------------------------------------

    def static_frame_for(self, channel: Channel, cycle: int, slot_id: int,
                         action_point_mt: int) -> Optional[PendingFrame]:
        self._now_mt = action_point_mt
        assert self._round is not None
        frame = self._round.owner(channel, cycle, slot_id)
        if frame is not None:
            buffer = self._buffers.get(
                (frame.message_id, frame.chunk, channel)
            )
            if buffer is not None:
                head = buffer.peek()
                if head is not None and head.generation_time_mt <= action_point_mt:
                    taken = buffer.take()
                    self.counters["primary_tx"] += 1
                    return taken
        stolen = self.slack_frame_for(channel, cycle, slot_id, action_point_mt)
        if stolen is not None:
            self.counters["slack_steals"] += 1
            if self.obs.enabled:
                self.obs.emit("policy.slack_steal", channel=channel.name,
                              cycle=cycle, slot_id=slot_id,
                              message_id=stolen.message_id,
                              kind=stolen.kind.name,
                              deadline_mt=stolen.deadline_mt)
        return stolen

    # ------------------------------------------------------------------
    # SchedulerPolicy: dynamic segment
    # ------------------------------------------------------------------

    def dynamic_frame_for(self, channel: Channel, slot_id: int,
                          start_mt: int,
                          minislots_remaining: int) -> Optional[PendingFrame]:
        self._now_mt = start_mt
        if not self.serves_dynamic(channel):
            return None
        if slot_id == self._retx_slot_id:
            pending = self.pop_retransmission(
                fit_bits=None, now_mt=start_mt
            )
            if pending is not None:
                self.counters["retx_tx"] += 1
            return pending
        queue = self._dynamic_queues.get(slot_id)
        if queue is None:
            return None
        while not queue.empty:
            head = queue.peek()
            assert head is not None
            if self.drop_expired_dynamic and head.deadline_mt < start_mt:
                queue.pop()
                self._dynamic_backlog -= 1
                self.counters["stale_drops"] += 1
                continue
            self.counters["dynamic_tx"] += 1
            self._dynamic_backlog -= 1
            return queue.pop()
        return None

    def on_dynamic_hold(self, pending: PendingFrame, channel: Channel) -> None:
        """Restore a popped-but-held frame to its queue (engine contract)."""
        if pending.is_retransmission and pending.kind is FrameKind.RETRANSMISSION:
            self.push_retransmission(pending)
            self.counters["retx_tx"] -= 1
            return
        slot_id = getattr(self, "_dynamic_slot_of", {}).get(pending.message_id)
        if slot_id is not None:
            self._dynamic_queues[slot_id].push(pending)
            self._dynamic_backlog += 1
            self.counters["dynamic_tx"] -= 1

    # ------------------------------------------------------------------
    # SchedulerPolicy: outcomes
    # ------------------------------------------------------------------

    def on_outcome(self, pending: PendingFrame, channel: Channel,
                   segment: str, outcome: TransmissionOutcome,
                   end_mt: int) -> None:
        self._now_mt = end_mt
        key = (pending.message_id, pending.instance, pending.frame.chunk)
        if outcome is TransmissionOutcome.DELIVERED:
            deadline = self._chunk_status.get(key, (0, pending.deadline_mt))[1]
            self._chunk_status[key] = (_DELIVERED, deadline)
        elif self.feedback:
            self.handle_failure(pending, segment, end_mt)

    # ------------------------------------------------------------------
    # Retransmission heap helpers (shared by subclasses)
    # ------------------------------------------------------------------

    def push_retransmission(self, pending: PendingFrame) -> None:
        """Enqueue a hard-aperiodic retransmission (EDF order)."""
        heapq.heappush(
            self._retx_heap,
            (pending.deadline_mt, pending.sequence, pending),
        )

    def pop_retransmission(self, fit_bits: Optional[int],
                           now_mt: int) -> Optional[PendingFrame]:
        """Pop the most urgent live retransmission that fits.

        Args:
            fit_bits: Payload capacity of the stealing slot, or ``None``
                for the dynamic segment (any FlexRay payload fits).
            now_mt: Current time; entries past deadline or already
                satisfied by a redundant copy are discarded.
        """
        skipped: List[tuple] = []
        result: Optional[PendingFrame] = None
        while self._retx_heap:
            entry = heapq.heappop(self._retx_heap)
            __, ___, pending = entry
            if self.drop_expired_dynamic and pending.deadline_mt < now_mt:
                self.counters["retx_abandoned"] += 1
                self.on_retx_discard(pending)
                continue
            if self.feedback and self.chunk_delivered(pending):
                # Only a feedback-mode sender knows the copy is moot;
                # open-loop copies are transmitted regardless (Theorem 1
                # prices every one of the k_z + 1 attempts).
                self.on_retx_discard(pending)
                continue
            if fit_bits is not None and pending.payload_bits > fit_bits:
                skipped.append(entry)
                continue
            result = pending
            break
        for entry in skipped:
            heapq.heappush(self._retx_heap, entry)
        return result

    def on_retx_discard(self, pending: PendingFrame) -> None:
        """A queued retransmission lapsed (hook for promise accounting)."""

    def chunk_delivered(self, pending: PendingFrame) -> bool:
        """Whether this chunk instance was already delivered by any copy."""
        key = (pending.message_id, pending.instance, pending.frame.chunk)
        status = self._chunk_status.get(key)
        return status is not None and status[0] == _DELIVERED

    def _note_chunk(self, pending: PendingFrame) -> None:
        key = (pending.message_id, pending.instance, pending.frame.chunk)
        if key not in self._chunk_status:
            self._chunk_status[key] = (_PENDING, pending.deadline_mt)

    # ------------------------------------------------------------------
    # Stepper fast-path proofs (see SchedulerPolicy for the contracts)
    # ------------------------------------------------------------------

    def note_time(self, now_mt: int) -> None:
        self._now_mt = now_mt

    def static_idle_is_noop(self) -> bool:
        """Idle static queries are no-ops unless a subclass slack-steals.

        ``static_frame_for`` on a compiled-idle slot reduces to the
        ``slack_frame_for`` hook; the base hook is a constant ``None``,
        so any subclass that keeps it inherits the fast path wholesale.
        A subclass that overrides it must supply its own proof via
        :meth:`slack_idle_is_noop`.
        """
        if type(self).slack_frame_for is QueueingPolicyBase.slack_frame_for:
            return True
        return self.slack_idle_is_noop()

    def slack_idle_is_noop(self) -> bool:
        """Proof hook for slack-stealing subclasses (default: no proof)."""
        return False

    def decisions_are_outcome_free(self) -> bool:
        """Open-loop runs decide independently of same-segment outcomes.

        With ``feedback=False`` the base ``on_outcome`` mutates exactly
        two things: the policy clock ``_now_mt`` (which every decision
        hook overwrites on entry before reading) and the chunk-status
        map (read back exclusively on feedback-gated paths --
        ``pop_retransmission``'s moot-copy filter and ``pending_work``'s
        liveness count).  ``handle_failure`` is unreachable without
        feedback, so subclasses overriding only it (the baselines)
        inherit the proof; a subclass that overrides ``on_outcome``
        itself must restate the proof or stay on the default ``False``.
        """
        if self.feedback:
            return False
        return type(self).on_outcome is QueueingPolicyBase.on_outcome

    def dynamic_idle_is_noop(self) -> bool:
        """Dynamic arbitration is provably idle when nothing is queued.

        With every dynamic queue empty (``_dynamic_backlog`` counts them
        incrementally) and the retransmission heap empty, each
        ``dynamic_frame_for`` query -- reserved retransmission slot
        included -- returns ``None`` without touching any queue.
        """
        return self._dynamic_backlog == 0 and not self._retx_heap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def pending_work(self) -> int:
        queued = sum(len(q) for q in self._dynamic_queues.values())
        buffered = sum(1 for b in self._buffers.values() if b.occupied)
        if self.drop_expired_dynamic:
            # Only count retransmissions that are still live.
            retx = sum(
                1 for __, ___, p in self._retx_heap
                if p.deadline_mt >= self._now_mt
                and not (self.feedback and self.chunk_delivered(p))
            )
        else:
            retx = len(self._retx_heap)
        return queued + buffered + retx

    def dynamic_backlog(self) -> int:
        """Messages waiting in dynamic queues (for tests/diagnostics)."""
        return sum(len(q) for q in self._dynamic_queues.values())
