"""CoEfficient: the paper's primary contribution.

The pieces map one-to-one onto Section III of the paper:

- :mod:`repro.core.tasks` -- the three-class task model (hard periodic /
  hard aperiodic / soft aperiodic), Section III-A;
- :mod:`repro.core.slack_stealing` -- the fixed-priority slack stealer
  (``S_{i,t} = A_i(r_i(t)+1) - C_i(t) - I_i(t)``), Section III-B;
- :mod:`repro.core.acceptance` -- the hard-aperiodic acceptance test with
  the theta accumulator over ``[alpha_k, alpha_k + D_k]``, Section III-C;
- :mod:`repro.core.retransmission` -- differentiated retransmission
  planning against the reliability goal rho (Theorem 1), Section III-E;
- :mod:`repro.core.selective_slack` -- reliability-aware selective slack
  computation, Section III-F;
- :mod:`repro.core.queueing` -- shared queue/buffer mechanics for
  FlexRay scheduler policies;
- :mod:`repro.core.coefficient` -- the CoEfficient scheduler itself:
  cooperative dual-channel scheduling of static, retransmitted and
  dynamic segments.
"""

from repro.core.acceptance import AcceptanceTest
from repro.core.coefficient import CoEfficientPolicy
from repro.core.mode_change import AdmissionDecision, ModeChangeController
from repro.core.queueing import QueueingPolicyBase
from repro.core.retransmission import (
    RetransmissionPlan,
    plan_retransmissions,
    uniform_retransmission_plan,
)
from repro.core.selective_slack import SelectiveSlackPlanner, max_level_slack
from repro.core.slack_stealing import SlackStealer
from repro.core.tasks import AperiodicTask, PeriodicTask, TaskSet

__all__ = [
    "AcceptanceTest",
    "AdmissionDecision",
    "AperiodicTask",
    "CoEfficientPolicy",
    "ModeChangeController",
    "PeriodicTask",
    "QueueingPolicyBase",
    "RetransmissionPlan",
    "SelectiveSlackPlanner",
    "SlackStealer",
    "TaskSet",
    "max_level_slack",
    "plan_retransmissions",
    "uniform_retransmission_plan",
]
