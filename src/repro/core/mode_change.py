"""Mode changes: online admission of new message streams.

Production vehicles reconfigure communication at runtime -- a diagnostic
session opens, a driver-assist feature activates -- and the scheduler
must decide whether the new stream fits without jeopardizing what is
already guaranteed.  The paper's machinery contains everything needed
for that decision (schedulability validation, Theorem-1 re-planning);
this module composes it into an admission-control API, the natural
"future work" extension of CoEfficient:

1. tentatively re-pack the workload with the candidate signal;
2. rebuild the static schedule; reject if infeasible;
3. validate analytically that *every* periodic message -- old and new --
   still meets its deadline in fault-free operation;
4. re-solve Theorem 1 for the enlarged set; reject if the reliability
   goal becomes unreachable;
5. check the new plan's slack demand against the new schedule's
   structural idle supply.

Admission is transactional: the returned decision carries the new
packing/plan for the caller to swap in at a cycle boundary, and the
current configuration is untouched on rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.slack_table import IdleSlotTable
from repro.analysis.validator import MessageValidation, validate_schedule
from repro.core.retransmission import RetransmissionPlan, plan_retransmissions
from repro.faults.ber import BitErrorRateModel
from repro.protocol.channel import Channel
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.schedule import (
    ChannelStrategy,
    ScheduleInfeasibleError,
    ScheduleTable,
)
from repro.protocol.signal import Signal, SignalSet
from repro.packing.frame_packing import PackingResult, pack_signals

__all__ = ["AdmissionDecision", "ModeChangeController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt.

    Attributes:
        admitted: Whether the signal can join.
        reason: Human-readable explanation.
        packing: The new packing (``None`` on rejection).
        table: The new schedule table (``None`` on rejection).
        plan: The new retransmission plan (``None`` on rejection or when
            no reliability goal is configured).
        validations: Per-message analytical results (present whenever
            the schedule could be built, even on rejection -- the
            culprits are visible).
    """

    admitted: bool
    reason: str
    packing: Optional[PackingResult] = None
    table: Optional[ScheduleTable] = None
    plan: Optional[RetransmissionPlan] = None
    validations: Sequence[MessageValidation] = ()

    def violating_messages(self) -> List[str]:
        """Messages failing the analytical deadline check."""
        return [v.message_id for v in self.validations
                if not v.meets_deadline]


class ModeChangeController:
    """Transactional admission control over a running configuration.

    Args:
        params: Cluster parameters (fixed across mode changes).
        signals: The currently admitted workload.
        ber_model: Fault environment for Theorem-1 re-planning.
        reliability_goal: rho; ``None`` disables the reliability check.
        time_unit_ms: Theorem-1 time unit.
        strategy: Channel strategy for rebuilt schedules.
        max_budget: Per-message retransmission cap.
        require_deadlines: Reject when any periodic message fails the
            analytical deadline check (set ``False`` for soft systems
            that tolerate documented violations).
    """

    def __init__(
        self,
        params: SegmentGeometry,
        signals: SignalSet,
        ber_model: Optional[BitErrorRateModel] = None,
        reliability_goal: Optional[float] = None,
        time_unit_ms: float = 1000.0,
        strategy: str = ChannelStrategy.DISTRIBUTE,
        max_budget: int = 8,
        require_deadlines: bool = True,
    ) -> None:
        self._params = params
        self._signals = signals
        self._ber_model = ber_model
        self._rho = reliability_goal
        self._time_unit_ms = time_unit_ms
        self._strategy = strategy
        self._max_budget = max_budget
        self._require_deadlines = require_deadlines
        self.history: List[AdmissionDecision] = []
        # The baseline must itself be admissible.
        baseline = self._evaluate(signals)
        if not baseline.admitted:
            raise ValueError(
                f"current workload is not admissible: {baseline.reason}"
            )
        self._current = baseline

    @property
    def signals(self) -> SignalSet:
        """The currently admitted workload."""
        return self._signals

    @property
    def current(self) -> AdmissionDecision:
        """The current configuration's evaluation."""
        return self._current

    # ------------------------------------------------------------------

    def _evaluate(self, signals: SignalSet) -> AdmissionDecision:
        try:
            packing = pack_signals(signals, self._params)
        except ValueError as error:
            return AdmissionDecision(admitted=False,
                                     reason=f"unpackable: {error}")
        try:
            table = self._params.build_schedule(packing.static_frames(),
                                                self._strategy)
        except ScheduleInfeasibleError as error:
            return AdmissionDecision(admitted=False,
                                     reason=f"schedule infeasible: {error}")

        validations = validate_schedule(table, packing, self._params)
        if self._require_deadlines:
            violators = [v.message_id for v in validations
                         if not v.meets_deadline]
            if violators:
                return AdmissionDecision(
                    admitted=False,
                    reason=f"deadline violations: {violators}",
                    validations=validations,
                )

        plan: Optional[RetransmissionPlan] = None
        if self._rho is not None and self._ber_model is not None:
            failure, instances, cost = {}, {}, {}
            for message in packing.messages:
                worst = max(c.payload_bits for c in message.chunks) + 64
                failure[message.message_id] = \
                    self._ber_model.failure_probability("A", worst)
                instances[message.message_id] = \
                    self._time_unit_ms / message.period_ms
                cost[message.message_id] = worst / message.period_ms
            plan = plan_retransmissions(
                failure, instances, self._rho,
                bandwidth_cost=cost, max_budget=self._max_budget)
            if not plan.feasible:
                return AdmissionDecision(
                    admitted=False,
                    reason="reliability goal unreachable for the "
                           "enlarged set",
                    validations=validations,
                )
            # Slack demand vs structural supply over the time unit.
            idle = IdleSlotTable(table, [Channel.A, Channel.B])
            unit_cycles = max(1, int(self._time_unit_ms
                                     / self._params.cycle_ms))
            supply = idle.idle_slots_between(0, unit_cycles)
            demand = sum(
                budget * instances[message]
                for message, budget in plan.budgets.items()
            )
            if demand > supply:
                return AdmissionDecision(
                    admitted=False,
                    reason=f"retransmission demand ({demand:.0f} slots "
                           f"per unit) exceeds structural slack "
                           f"({supply})",
                    validations=validations,
                    plan=plan,
                )

        return AdmissionDecision(
            admitted=True, reason="fits", packing=packing, table=table,
            plan=plan, validations=validations,
        )

    # ------------------------------------------------------------------

    def try_admit(self, signal: Signal) -> AdmissionDecision:
        """Attempt to admit one new signal.

        On success the controller's current workload is updated; on
        rejection nothing changes.  Either way the decision is appended
        to :attr:`history`.
        """
        if signal.name in self._signals:
            decision = AdmissionDecision(
                admitted=False,
                reason=f"duplicate signal name {signal.name!r}",
            )
            self.history.append(decision)
            return decision
        candidate = SignalSet(self._signals.signals + [signal],
                              name=self._signals.name)
        decision = self._evaluate(candidate)
        self.history.append(decision)
        if decision.admitted:
            self._signals = candidate
            self._current = decision
        return decision

    def retire(self, signal_name: str) -> AdmissionDecision:
        """Remove a signal (always succeeds; frees its capacity)."""
        remaining = [s for s in self._signals if s.name != signal_name]
        if len(remaining) == len(self._signals):
            decision = AdmissionDecision(
                admitted=False,
                reason=f"no signal named {signal_name!r}",
            )
            self.history.append(decision)
            return decision
        candidate = SignalSet(remaining, name=self._signals.name)
        decision = self._evaluate(candidate)
        self.history.append(decision)
        if decision.admitted:
            self._signals = candidate
            self._current = decision
        return decision
