"""Rule catalogue of the determinism linter.

The ``DET*`` namespace covers hazards that break the bit-identical
reproducibility the parallel Monte-Carlo campaigns (PR 2) rely on:
wall-clock reads, RNG draws that bypass the seeded
:mod:`repro.sim.rng` streams, mutable default arguments (shared state
across calls), float equality on time values, and iteration over sets
on paths that feed ordered output.

Severity semantics match the verifier's: ``ERROR`` findings fail
``repro lint`` (and CI); ``WARNING`` findings are surfaced only.
"""

from __future__ import annotations

from typing import Dict

from repro.verify.diagnostics import Severity
from repro.verify.rules import Rule

__all__ = ["LINT_RULES", "RESTRICTED_PACKAGES", "ORDERED_OUTPUT_PACKAGES",
           "RNG_MODULE_SUFFIX"]

#: Sub-packages of ``repro`` in which simulated time and randomness are
#: load-bearing: wall-clock and unseeded-RNG rules apply here.
RESTRICTED_PACKAGES = frozenset(
    {"sim", "core", "protocol", "flexray", "ttethernet", "analysis"})

#: Sub-packages whose output ordering is part of the determinism
#: contract (campaign merge, observability export): the set-iteration
#: rule applies here.
ORDERED_OUTPUT_PACKAGES = frozenset({"experiments", "obs"})

#: The sanctioned RNG wrapper itself is exempt from DET102.
RNG_MODULE_SUFFIX = ("sim", "rng.py")


def _catalogue(*rules: Rule) -> Dict[str, Rule]:
    return {rule.rule_id: rule for rule in rules}


#: Every rule the determinism linter can emit, keyed by id.
LINT_RULES: Dict[str, Rule] = _catalogue(
    Rule("DET100", "suppression-missing-reason", Severity.WARNING,
         "A '# lint-ok: <RULE>' suppression has no reason text; "
         "suppressions must say why the finding is safe."),
    Rule("DET101", "wall-clock-read", Severity.ERROR,
         "time.time()/datetime.now()-style wall-clock reads inside "
         "sim/, core/, protocol/, the protocol backends or analysis/ "
         "make runs irreproducible; simulated time comes from the "
         "engine."),
    Rule("DET102", "unseeded-rng", Severity.ERROR,
         "Global random.* or numpy.random.* draws (including "
         "np.random.default_rng() without a seed) inside sim/, core/, "
         "protocol/, the protocol backends or analysis/ bypass the "
         "seeded stream-splitting design; route through "
         "repro.sim.rng.RngStream."),
    Rule("DET103", "mutable-default-argument", Severity.ERROR,
         "A mutable default argument (list/dict/set literal or "
         "constructor) is shared across calls and mutates global "
         "state."),
    Rule("DET104", "float-time-equality", Severity.ERROR,
         "== / != on a float time-valued expression (a *_ms / *_us "
         "name) is representation-dependent; compare macrotick "
         "integers or use an explicit tolerance."),
    Rule("DET105", "unordered-set-iteration", Severity.ERROR,
         "Iterating a set inside experiments/ or obs/ feeds "
         "hash-order-dependent sequences into merge or export paths; "
         "wrap the iterable in sorted()."),
    Rule("DET106", "suppression-unknown-rule", Severity.ERROR,
         "A '# lint-ok:' comment lists a rule id that no catalogue "
         "(DET/FRC/FRS/ANA/EFF/MDL) defines; a typo'd id suppresses "
         "nothing and hides the author's intent."),
    Rule("DET999", "syntax-error", Severity.ERROR,
         "The file does not parse; no determinism rule can be "
         "checked."),
)
