"""AST checker implementing the ``DET*`` determinism rules.

One :class:`FileChecker` instance lints one module.  The checker is a
plain :class:`ast.NodeVisitor`; every rule is a method over syntax, no
imports are executed, and the diagnostics come out in source order, so
linting is deterministic and safe to run over arbitrary code.

Suppressions
------------

A finding is suppressed by a trailing comment on the offending line::

    elapsed = time.time()  # lint-ok: DET101 host-side profiling only

The rule id must match and a reason is required; a bare
``# lint-ok: DET101`` suppresses the finding but earns a ``DET100``
warning, so silent suppressions are visible in review.  Several ids may
be listed comma-separated: ``# lint-ok: DET101,DET102 reason``.  An id
that no rule catalogue defines (``DET9999``, say) suppresses nothing
and is itself a ``DET106`` error.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.verify.diagnostics import Diagnostic, Severity

__all__ = ["FileChecker", "LintScope"]

_SUPPRESS_RE = re.compile(
    r"#\s*lint-ok:\s*(?P<ids>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
    r"(?:\s+(?P<reason>\S.*))?"
)

#: Dotted call targets that read the wall clock (DET101).
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

#: Names whose call with these roots is a global RNG draw (DET102).
_RNG_ROOTS = ("random", "np.random", "numpy.random")

#: Time-valued identifier suffixes for DET104.  Macrotick names
#: (``*_mt``) are integers and deliberately excluded: integer equality
#: is exact and idiomatic in the engine.
_TIME_SUFFIX_RE = re.compile(r"(_ms|_us)$")

_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set"})


def _known_rule_ids() -> frozenset:
    """Every rule id any catalogue defines (valid suppression targets).

    Imported lazily: the ``repro.check`` package's call graph analyzes
    this module in turn, and a module-level import would tie the two
    packages into a cycle.
    """
    from repro.lint.rules import LINT_RULES
    from repro.verify.rules import VERIFY_RULES
    from repro.check.rules import CHECK_RULES
    return frozenset(LINT_RULES) | frozenset(VERIFY_RULES) \
        | frozenset(CHECK_RULES)


@dataclass(frozen=True)
class LintScope:
    """Which path-dependent rules apply to the file being linted."""

    restricted: bool = True        # DET101 / DET102 apply
    ordered_output: bool = True    # DET105 applies
    rng_module: bool = False       # the sanctioned wrapper: DET102 exempt


@dataclass
class _Suppression:
    ids: Set[str]
    has_reason: bool
    used: bool = False


class FileChecker(ast.NodeVisitor):
    """Lint one module's AST against every applicable ``DET*`` rule.

    Args:
        path: Display path for diagnostic locations.
        source: Module source text (used for suppression comments).
        scope: Path-dependent rule applicability.
    """

    def __init__(self, path: str, source: str,
                 scope: Optional[LintScope] = None) -> None:
        self._path = path
        self._scope = scope or LintScope()
        self._suppressions = self._parse_suppressions(source)
        self._aliases: Dict[str, str] = {}
        self.diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_suppressions(source: str) -> Dict[int, _Suppression]:
        suppressions: Dict[int, _Suppression] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                ids = {part.strip()
                       for part in match.group("ids").split(",")}
                suppressions[lineno] = _Suppression(
                    ids=ids, has_reason=bool(match.group("reason")))
        return suppressions

    def _report(self, rule_id: str, node: ast.AST, message: str,
                fix_hint: str, severity: Severity = Severity.ERROR) -> None:
        lineno = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        suppression = self._suppressions.get(lineno)
        if suppression and rule_id in suppression.ids:
            suppression.used = True
            if not suppression.has_reason:
                self.diagnostics.append(Diagnostic(
                    rule_id="DET100", severity=Severity.WARNING,
                    location=f"{self._path}:{lineno}:{col}",
                    message=f"suppression of {rule_id} has no reason",
                    fix_hint="write '# lint-ok: "
                             f"{rule_id} <why this is safe>'",
                ))
            return
        self.diagnostics.append(Diagnostic(
            rule_id=rule_id, severity=severity,
            location=f"{self._path}:{lineno}:{col}",
            message=message, fix_hint=fix_hint,
        ))

    def _dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted string, expanding
        import aliases at the root (``npr.rand`` -> ``numpy.random.rand``)."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self._aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    # ------------------------------------------------------------------
    # Import tracking (for alias resolution)
    # ------------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._aliases[alias.asname or alias.name.split(".")[0]] = \
                alias.name if alias.asname else alias.name.split(".")[0]
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self._aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # DET101 / DET102: calls
    # ------------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted_name(node.func)
        if dotted is not None:
            if self._scope.restricted and dotted in _WALL_CLOCK_CALLS:
                self._report(
                    "DET101", node,
                    f"wall-clock read {dotted}() in simulation code",
                    "use the engine's simulated clock, or move the "
                    "timing into repro.obs",
                )
            elif (self._scope.restricted and not self._scope.rng_module
                    and self._is_unseeded_rng(dotted, node)):
                self._report(
                    "DET102", node,
                    f"global RNG draw {dotted}() bypasses the seeded "
                    f"streams",
                    "take an RngStream (repro.sim.rng) and draw from it",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_unseeded_rng(dotted: str, node: ast.Call) -> bool:
        for root in _RNG_ROOTS:
            if dotted == root or dotted.startswith(root + "."):
                # A seeded Generator construction is the one sanctioned
                # use: np.random.default_rng(seed) with an argument.
                if dotted.endswith(".default_rng") \
                        and (node.args or node.keywords):
                    return False
                return True
        return False

    # ------------------------------------------------------------------
    # DET103: mutable default arguments
    # ------------------------------------------------------------------

    def _check_defaults(self, node, arguments: ast.arguments) -> None:
        names = [arg.arg for arg in arguments.posonlyargs + arguments.args]
        defaults: List[Tuple[str, Optional[ast.AST]]] = list(zip(
            names[len(names) - len(arguments.defaults):],
            arguments.defaults,
        ))
        defaults.extend(
            (arg.arg, default) for arg, default
            in zip(arguments.kwonlyargs, arguments.kw_defaults)
        )
        for name, default in defaults:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                           ast.ListComp, ast.DictComp,
                                           ast.SetComp))
            if not mutable and isinstance(default, ast.Call) \
                    and isinstance(default.func, ast.Name) \
                    and default.func.id in _MUTABLE_CONSTRUCTORS:
                mutable = True
            if mutable:
                self._report(
                    "DET103", default,
                    f"argument {name!r} has a mutable default",
                    "default to None and create the container inside "
                    "the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # DET104: float equality on time-valued expressions
    # ------------------------------------------------------------------

    @staticmethod
    def _terminal_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def _is_time_valued(self, node: ast.AST) -> bool:
        name = self._terminal_name(node)
        return name is not None and bool(_TIME_SUFFIX_RE.search(name))

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if self._is_time_valued(side):
                    name = self._terminal_name(side)
                    self._report(
                        "DET104", node,
                        f"float time value {name!r} compared with "
                        f"{'==' if isinstance(op, ast.Eq) else '!='}",
                        "compare integer macroticks, or use "
                        "math.isclose / an explicit tolerance",
                    )
                    break
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # DET105: set iteration on ordered-output paths
    # ------------------------------------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in ("set", "frozenset"):
                return True
        return False

    def _iterates_set(self, iterable: ast.AST) -> bool:
        if self._is_set_expr(iterable):
            return True
        # Set algebra over literals/constructors or dict-key views:
        # `a.keys() - b`, `set(x) | set(y)` -- all hash-ordered.
        if isinstance(iterable, ast.BinOp) \
                and isinstance(iterable.op, (ast.BitOr, ast.BitAnd,
                                             ast.BitXor, ast.Sub)):
            sides = (iterable.left, iterable.right)
            if any(self._is_set_expr(side) for side in sides):
                return True
            if any(isinstance(side, ast.Call)
                   and isinstance(side.func, ast.Attribute)
                   and side.func.attr == "keys" for side in sides):
                return True
        return False

    def _check_iteration(self, iterable: ast.AST, node: ast.AST) -> None:
        if self._scope.ordered_output and self._iterates_set(iterable):
            self._report(
                "DET105", node,
                "iteration over a set feeds hash-dependent order into "
                "an ordered-output path",
                "wrap the iterable in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter, node.iter)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def check(self, tree: ast.AST) -> List[Diagnostic]:
        """Visit the tree and return diagnostics in source order."""
        self.visit(tree)

        known = _known_rule_ids()
        for lineno, suppression in self._suppressions.items():
            for rule_id in sorted(suppression.ids - known):
                self.diagnostics.append(Diagnostic(
                    rule_id="DET106", severity=Severity.ERROR,
                    location=f"{self._path}:{lineno}:0",
                    message=f"suppression names unknown rule id "
                            f"{rule_id}; it suppresses nothing",
                    fix_hint="fix the typo or drop the id (valid ids "
                             "come from the DET/FRC/FRS/ANA/EFF/MDL "
                             "catalogues)",
                ))

        def position(diagnostic: Diagnostic) -> Tuple[int, int, str]:
            __, line, col = diagnostic.location.rsplit(":", 2)
            return int(line), int(col), diagnostic.rule_id

        self.diagnostics.sort(key=position)
        return self.diagnostics
