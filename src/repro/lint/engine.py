"""File walking and scope assignment for the determinism linter.

The engine decides, from a file's path, which path-dependent rules
apply (see :mod:`repro.lint.rules`), parses the file, and runs the
:class:`~repro.lint.checker.FileChecker` over it.  Files are visited in
sorted order so reports are deterministic regardless of filesystem
enumeration order -- the linter practices what it preaches.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from repro.lint.checker import FileChecker, LintScope
from repro.lint.rules import (
    ORDERED_OUTPUT_PACKAGES,
    RESTRICTED_PACKAGES,
    RNG_MODULE_SUFFIX,
)
from repro.verify.diagnostics import Diagnostic, Report, Severity

__all__ = ["scope_for_path", "lint_source", "lint_paths"]


def scope_for_path(path: str) -> LintScope:
    """Derive the applicable rule scopes from a file path.

    Args:
        path: Path of the module (absolute or relative); the directory
            names decide which package the file belongs to.

    Returns:
        The :class:`LintScope` the checker should run under.
    """
    parts = tuple(os.path.normpath(path).replace(os.sep, "/").split("/"))
    return LintScope(
        restricted=bool(RESTRICTED_PACKAGES.intersection(parts)),
        ordered_output=bool(ORDERED_OUTPUT_PACKAGES.intersection(parts)),
        rng_module=parts[-2:] == RNG_MODULE_SUFFIX,
    )


def lint_source(source: str, path: str = "<string>",
                scope: Optional[LintScope] = None) -> List[Diagnostic]:
    """Lint one module given as text.

    Args:
        source: Module source code.
        path: Display path; also decides the scope unless ``scope`` is
            given explicitly.
        scope: Explicit scope override (tests use this).

    Returns:
        Diagnostics in source order.  A file that does not parse yields
        a single ``DET999`` error for the syntax error.
    """
    if scope is None:
        scope = scope_for_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Diagnostic(
            rule_id="DET999", severity=Severity.ERROR,
            location=f"{path}:{error.lineno or 0}:{error.offset or 0}",
            message=f"file does not parse: {error.msg}",
            fix_hint="fix the syntax error first",
        )]
    return FileChecker(path, source, scope).check(tree)


def _python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_paths(paths: Sequence[str]) -> Report:
    """Lint every ``.py`` file under the given files/directories.

    Args:
        paths: Files or directory roots.

    Returns:
        A :class:`Report` over all files, in sorted path order.
    """
    report = Report()
    for path in _python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        report.extend(lint_source(source, path=path))
    return report
