"""AST-based determinism linter for the repro source tree.

PR 2's parallel campaigns promise bit-identical results across worker
counts; that promise only holds while the simulation code stays
deterministic.  This package *statically* enforces the coding rules the
promise rests on (see :mod:`repro.lint.rules` for the ``DET*``
catalogue) and shares the structured-diagnostic shape of the
configuration verifier (:mod:`repro.verify`).

Entry points:

- :func:`lint_paths` -- lint files/directories (the ``repro lint`` CLI);
- :func:`lint_source` -- lint a source string (tests, tooling);
- :data:`LINT_RULES` -- the rule catalogue behind
  ``docs/static_analysis.md``.
"""

from repro.lint.checker import FileChecker, LintScope
from repro.lint.engine import lint_paths, lint_source, scope_for_path
from repro.lint.rules import LINT_RULES

__all__ = [
    "FileChecker",
    "LintScope",
    "LINT_RULES",
    "lint_paths",
    "lint_source",
    "scope_for_path",
]
