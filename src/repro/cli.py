"""Command-line interface.

Four subcommands mirror the library's main entry points:

- ``run`` -- one experiment: workload x scheduler x fault environment;
- ``campaign`` -- a multi-seed Monte-Carlo campaign with confidence
  intervals (``--workers`` fans seeds over processes, ``--cache-dir``
  skips already-simulated seeds);
- ``figures`` -- regenerate a paper figure's data series;
- ``tables`` -- print the case-study message tables;
- ``plan`` -- show the differentiated retransmission plan for a
  workload/goal without running a simulation;
- ``report`` -- regenerate the whole evaluation as a markdown report;
- ``breakdown`` -- breakdown-load search per scheduler (extension);
- ``verify-config`` -- statically verify a cluster configuration,
  schedule, and Theorem-1 plan without simulating (exit 1 on errors);
- ``lint`` -- determinism lint over source paths (exit 1 on errors);
- ``serve`` -- run the online admission-control service (JSON lines
  over TCP; see ``docs/service.md``);
- ``loadgen`` -- fire a deterministic seeded Poisson request stream at
  a running service and report latency/acceptance percentiles;
- ``web`` -- serve a result store over read-only HTTP (paginated
  canonical-JSON endpoints with content-digest ETags; see
  ``docs/results.md``).

``run``, ``campaign``, ``serve`` and ``verify-config`` accept
``--store PATH`` to persist what they produce into the SQLite result
store ``repro web`` reads.

Invoke as ``python -m repro <subcommand>``; every subcommand supports
``--help``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.experiments import figures as figures_module
from repro.experiments.campaign import CAMPAIGN_METRICS, run_campaign
from repro.experiments.runner import SCHEDULERS, run_experiment
from repro.faults.ber import BitErrorRateModel
from repro.core.retransmission import plan_retransmissions
from repro.obs import (
    NULL_OBS,
    Observability,
    attach_event_capture,
    format_profile,
    write_metrics_jsonl,
)
from repro.protocol.backend import available_backends, get_backend
from repro.protocol.signal import SignalSet
from repro.workloads.acc import acc_signals
from repro.workloads.bbw import bbw_signals
from repro.workloads.sae import sae_aperiodic_signals
from repro.workloads.synthetic import synthetic_signals

__all__ = ["main", "build_parser"]

_WORKLOADS = ("bbw", "acc", "synthetic")
_FIGURES = ("1", "2", "3", "4", "5")


def _periodic_workload(name: str, count: int, seed: int) -> SignalSet:
    if name == "bbw":
        return bbw_signals()
    if name == "acc":
        return acc_signals()
    if name == "synthetic":
        return synthetic_signals(count, seed=seed, max_size_bits=216)
    raise ValueError(f"unknown workload {name!r}")


def _backend_of(args):
    return get_backend(getattr(args, "backend", "flexray"))


def _params_for(args) -> "SegmentGeometry":
    backend = _backend_of(args)
    if args.workload in ("bbw", "acc"):
        return backend.case_study_params(args.workload,
                                         minislots=args.minislots)
    return backend.dynamic_preset(args.minislots)


def _emit(rows: List[Dict], as_json: bool) -> None:
    if as_json:
        print(json.dumps(rows, indent=2, default=str))
        return
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {c: max(len(c), 14) for c in columns}
    print("  ".join(f"{c:>{widths[c]}s}" for c in columns))
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>{widths[column]}.4f}")
            else:
                cells.append(f"{str(value):>{widths[column]}s}")
        print("  ".join(cells))


def _make_observability(args):
    """Build an observability context iff a flag asks for one.

    Returns ``(obs, events)``: the shared :data:`NULL_OBS` no-op (and
    ``None``) unless ``--profile`` or ``--metrics-out`` was given, in
    which case a live context with a bounded event recorder attached.
    """
    wants_profile = getattr(args, "profile", False)
    wants_export = getattr(args, "metrics_out", None)
    if not wants_profile and not wants_export:
        return NULL_OBS, None
    if wants_export:
        # Fail fast on an unwritable path: the export happens after the
        # whole simulation, which is too late to discover a typo.
        try:
            open(wants_export, "w").close()
        except OSError as error:
            raise SystemExit(
                f"repro: cannot write --metrics-out {wants_export}: {error}")
    obs = Observability()
    events = attach_event_capture(obs)
    return obs, events


def _finish_observability(args, obs, events, **meta) -> None:
    """Export / print whatever the enabled observability collected."""
    if not obs.enabled:
        return
    path = getattr(args, "metrics_out", None)
    if path:
        meta.setdefault("tool", "repro-cli")
        count = write_metrics_jsonl(path, obs, meta=meta, events=events)
        print(f"wrote {path} ({count} records)", file=sys.stderr)
    if getattr(args, "profile", False):
        print(file=sys.stderr)
        print(format_profile(obs.profiler), file=sys.stderr)


def _open_store(args, obs):
    """Open the ``--store`` result store, or ``None`` without the flag."""
    path = getattr(args, "store", None)
    if not path:
        return None
    from repro.results import ResultStore

    return ResultStore(path, obs=obs)


def _cmd_run(args) -> int:
    obs, events = _make_observability(args)
    periodic = _periodic_workload(args.workload, args.count, args.seed)
    aperiodic = sae_aperiodic_signals(count=args.aperiodic) \
        if args.aperiodic > 0 else None
    params = _params_for(args)
    store = _open_store(args, obs)
    experiment_kwargs = dict(
        params=params, periodic=periodic, aperiodic=aperiodic,
        ber=args.ber, duration_ms=args.duration_ms,
        reliability_goal=args.rho, engine_mode=args.engine_mode)
    rows = []
    for scheduler in args.scheduler:
        result = run_experiment(
            scheduler=scheduler,
            seed=args.seed,
            obs=obs,
            **experiment_kwargs,
        )
        row = result.row()
        row["produced"] = result.metrics.produced_instances
        row["delivered"] = result.metrics.delivered_instances
        rows.append(row)
        if store is not None:
            run_id = store.record_run(result, args.seed, experiment_kwargs)
            print(f"repro run: stored {scheduler} as run {run_id[:12]} "
                  f"in {args.store}", file=sys.stderr)
    if store is not None:
        store.close()
    _emit(rows, args.json)
    _finish_observability(args, obs, events, command="run",
                          workload=args.workload, seed=args.seed,
                          ber=args.ber,
                          schedulers=",".join(args.scheduler))
    return 0


def _cmd_campaign(args) -> int:
    from repro.verify import ConfigurationError

    if args.coordinate:
        return _cmd_campaign_coordinated(args)
    obs, events = _make_observability(args)
    periodic = _periodic_workload(args.workload, args.count, args.seed)
    aperiodic = sae_aperiodic_signals(count=args.aperiodic) \
        if args.aperiodic > 0 else None
    params = _params_for(args)
    seeds = list(range(args.seed, args.seed + args.seeds))
    store = _open_store(args, obs)
    rows = []
    failed = 0
    for scheduler in args.scheduler:
        try:
            campaign = run_campaign(
                scheduler,
                seeds=seeds,
                metrics=args.metric or None,
                params=params,
                periodic=periodic,
                aperiodic=aperiodic,
                ber=args.ber,
                duration_ms=args.duration_ms,
                reliability_goal=args.rho,
                workers=args.workers,
                cache_dir=args.cache_dir,
                validate=args.validate,
                obs=obs,
                store=store,
                store_workload=args.workload,
                engine_mode=args.engine_mode,
            )
        except ConfigurationError as error:
            print(f"repro: {scheduler}: configuration failed "
                  f"validation:", file=sys.stderr)
            print(error.report.format(), file=sys.stderr)
            if store is not None:
                store.close()
            return 1
        row = campaign.table_row()
        row["cache_hits"] = campaign.cache_hits
        row["simulated"] = campaign.simulations_run
        row["failures"] = len(campaign.failures)
        rows.append(row)
        failed += len(campaign.failures)
        for failure in campaign.failures:
            print(f"repro: {scheduler}: seed {failure.seed} failed "
                  f"after {failure.attempts} attempts", file=sys.stderr)
        if campaign.store_campaign_id:
            print(f"repro: {scheduler}: stored campaign "
                  f"{campaign.store_campaign_id[:12]} in {args.store}",
                  file=sys.stderr)
    if store is not None:
        store.close()
    _emit(rows, args.json)
    _finish_observability(args, obs, events, command="campaign",
                          workload=args.workload, seeds=args.seeds,
                          workers=args.workers or 1,
                          schedulers=",".join(args.scheduler))
    return 1 if failed else 0


def _cmd_campaign_coordinated(args) -> int:
    from repro.distrib.coordinator import coordinate_campaign
    from repro.distrib.plan import CampaignPlan
    from repro.verify import ConfigurationError

    if len(args.scheduler) != 1:
        print("repro campaign: --coordinate takes exactly one "
              "--scheduler (one plan per directory)", file=sys.stderr)
        return 1
    for flag, name in ((args.store, "--store"),
                       (args.cache_dir, "--cache-dir"),
                       (args.workers, "--workers"),
                       (args.metric, "--metric")):
        if flag:
            print(f"repro campaign: {name} is not supported with "
                  f"--coordinate (the directory provides cache and "
                  f"store; metrics come from the reduced campaign)",
                  file=sys.stderr)
            return 1
    obs, events = _make_observability(args)
    plan = CampaignPlan(
        scheduler=args.scheduler[0], workload=args.workload,
        backend=args.backend,
        count=args.count, seed=args.seed,
        seeds=tuple(range(args.seed, args.seed + args.seeds)),
        aperiodic=args.aperiodic, minislots=args.minislots,
        ber=args.ber, reliability_goal=args.rho,
        duration_ms=args.duration_ms, engine_mode=args.engine_mode,
        chunk=args.chunk)
    try:
        campaign, report = coordinate_campaign(
            args.coordinate, plan=plan, join=args.join,
            worker_id=args.worker_id, heartbeat_s=args.heartbeat_s,
            stale_after_s=args.stale_after_s,
            timeout_s=args.coordinate_timeout_s, obs=obs)
    except (ConfigurationError, ValueError, TimeoutError,
            FileNotFoundError) as error:
        print(f"repro campaign: coordination failed: {error}",
              file=sys.stderr)
        return 1
    print(f"repro campaign: worker {report.worker_id} completed "
          f"{report.ranges_completed} ranges ({report.seeds_simulated} "
          f"simulated, {report.cache_hits} cache hits, "
          f"{report.takeovers} takeovers)", file=sys.stderr)
    rows = [report.row()]
    if campaign is not None:
        row = campaign.table_row()
        row["cache_hits"] = campaign.cache_hits
        row["simulated"] = campaign.simulations_run
        row["failures"] = len(campaign.failures)
        rows = [row]
    _emit(rows, args.json)
    _finish_observability(args, obs, events, command="campaign",
                          workload=args.workload, seeds=args.seeds,
                          workers=1, coordinate=args.coordinate,
                          schedulers=",".join(args.scheduler))
    if campaign is not None and campaign.failures:
        return 1
    return 0


def _cmd_figures(args) -> int:
    obs, events = _make_observability(args)
    figure = args.figure
    if figure == "1":
        rows = figures_module.fig1_2_running_time(ber=1e-7, obs=obs)
    elif figure == "2":
        rows = figures_module.fig1_2_running_time(ber=1e-9, obs=obs)
    elif figure == "3":
        rows = figures_module.fig3_bandwidth_utilization(
            duration_ms=args.duration_ms, obs=obs)
    elif figure == "4":
        rows = figures_module.fig4_transmission_latency(
            duration_ms=args.duration_ms, obs=obs)
    elif figure == "5":
        rows = figures_module.fig5_deadline_miss_ratio(
            duration_ms=args.duration_ms, obs=obs)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown figure {figure}")
    _emit(rows, args.json)
    _finish_observability(args, obs, events, command="figures",
                          figure=figure, duration_ms=args.duration_ms)
    return 0


def _cmd_tables(args) -> int:
    if args.table == "2":
        _emit(figures_module.table2_bbw_rows(), args.json)
    else:
        _emit(figures_module.table3_acc_rows(), args.json)
    return 0


def _cmd_plan(args) -> int:
    periodic = _periodic_workload(args.workload, args.count, args.seed)
    model = BitErrorRateModel(ber_channel_a=args.ber)
    failure = {}
    instances = {}
    cost = {}
    for signal in periodic:
        wire = signal.size_bits + 64
        failure[signal.name] = model.failure_probability("A", wire)
        instances[signal.name] = args.time_unit_ms / signal.period_ms
        cost[signal.name] = wire / signal.period_ms
    plan = plan_retransmissions(failure, instances, args.rho,
                                bandwidth_cost=cost)
    rows = [
        {"message": message, "k": budget,
         "p_fail": failure[message],
         "instances_per_unit": round(instances[message], 1)}
        for message, budget in sorted(plan.budgets.items())
    ]
    _emit(rows, args.json)
    print(f"\nfeasible: {plan.feasible}   "
          f"achieved: {plan.achieved_probability:.12f}   "
          f"goal: {args.rho:.12f}   "
          f"selected: {len(plan.selected_messages())}/{len(plan.budgets)}")
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    report = generate_report(
        duration_ms=args.duration_ms,
        include_running_time=not args.skip_running_time,
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output} ({report.count(chr(10))} lines)")
    else:
        print(report)
    return 0


def _cmd_breakdown(args) -> int:
    from repro.analysis.sensitivity import aperiodic_breakdown_factor
    from repro.experiments.figures import (
        dynamic_study_aperiodic,
        dynamic_study_periodic,
    )

    params = get_backend("flexray").dynamic_preset(args.minislots)
    rows = []
    for scheduler in args.scheduler:
        result = aperiodic_breakdown_factor(
            scheduler,
            params=params,
            periodic=dynamic_study_periodic(),
            aperiodic=dynamic_study_aperiodic(),
            ber=args.ber,
            reliability_goal=args.rho,
            duration_ms=args.duration_ms,
            seed=args.seed,
        )
        rows.append({
            "scheduler": scheduler,
            "breakdown_factor": result.factor,
            "miss_at_factor": result.miss_at_factor,
            "evaluations": result.evaluations,
        })
    _emit(rows, args.json)
    return 0


_VERIFY_WORKLOADS = ("sae", "bbw", "acc", "synthetic")


def _verify_target(workload: str, args) -> Dict[str, object]:
    """Assemble the ``verify_experiment`` inputs for one bundled workload.

    The defaults mirror the pairings the evaluation actually runs: the
    case studies (``bbw``/``acc``) on the 50-minislot case-study
    cluster, the SAE/synthetic dynamic studies on the 100-minislot
    paper preset.
    """
    backend = _backend_of(args)
    minislots = args.minislots
    if minislots is None:
        minislots = 50 if workload in ("bbw", "acc") else 100
    aperiodic = sae_aperiodic_signals(count=args.aperiodic) \
        if args.aperiodic > 0 else None
    if workload == "sae":
        # The SAE set is the paper's aperiodic study: no periodic half.
        count = args.aperiodic if args.aperiodic > 0 else 30
        return {
            "params": backend.dynamic_preset(minislots),
            "periodic": None,
            "aperiodic": sae_aperiodic_signals(count=count),
        }
    if workload in ("bbw", "acc"):
        params = backend.case_study_params(workload,
                                           minislots=minislots)
        periodic = bbw_signals() if workload == "bbw" else acc_signals()
        return {"params": params, "periodic": periodic,
                "aperiodic": aperiodic}
    return {
        "params": backend.dynamic_preset(minislots),
        "periodic": synthetic_signals(args.count, seed=args.seed,
                                      max_size_bits=216),
        "aperiodic": aperiodic,
    }


def _cmd_verify_config(args) -> int:
    from repro.verify import verify_experiment

    workloads = _VERIFY_WORKLOADS if args.workload == "all" \
        else (args.workload,)
    store = _open_store(args, NULL_OBS)
    rows = []
    failed = False
    for workload in workloads:
        try:
            target = _verify_target(workload, args)
        except ValueError as error:
            # The cluster factory itself rejected the pairing (e.g. a
            # case-study workload forced onto too many minislots).
            print(f"{workload}: setup error: {error}", file=sys.stderr)
            failed = True
            rows.append({"workload": workload, "errors": 1,
                         "warnings": 0, "rules": "(setup)"})
            continue
        report = verify_experiment(
            ber=args.ber,
            reliability_goal=args.rho,
            **target,
        )
        failed = failed or report.has_errors
        rows.append({
            "workload": workload,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "rules": ",".join(report.rule_ids()) or "-",
        })
        for diagnostic in report:
            print(f"{workload}: {diagnostic.format()}", file=sys.stderr)
        if store is not None:
            report_id = store.record_verify_report(report, target=workload)
            print(f"repro verify-config: stored report {report_id[:12]} "
                  f"for {workload} in {args.store}", file=sys.stderr)
    if store is not None:
        store.close()
    _emit(rows, args.json)
    return 1 if failed else 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import load_service_setup, serve_forever
    from repro.verify import ConfigurationError

    if args.shards < 1:
        print("repro serve: --shards must be >= 1", file=sys.stderr)
        return 1
    obs, events = _make_observability(args)
    setup_kwargs = dict(
        workload=args.workload, count=args.count, seed=args.seed,
        minislots=args.minislots, ber=args.ber,
        reliability_goal=args.rho, tick_us=args.tick_us,
        verify=not args.no_verify, engine_mode=args.engine_mode,
        backend=args.backend)
    if args.shards > 1:
        from repro.distrib import serve_sharded

        if args.store:
            print("repro serve: --store is not supported with --shards "
                  "(audit sampling runs per shard)", file=sys.stderr)
            return 1
        try:
            router = asyncio.run(serve_sharded(
                setup_kwargs, args.shards, host=args.host,
                port=args.port, obs=obs, queue_limit=args.queue_limit,
                batch_limit=args.batch_limit,
                request_timeout_s=args.timeout_ms / 1000.0,
                reconcile_every=args.reconcile_every,
                inflight_limit=args.inflight_limit,
                max_restarts=args.max_restarts,
                health_interval_s=args.health_interval))
        except ConfigurationError as error:
            print("repro serve: configuration failed static "
                  "verification:", file=sys.stderr)
            print(error.report.format(), file=sys.stderr)
            return 1
        rows = [dict(sorted(router.counters.items()))] \
            if router.counters else []
        _emit(rows, args.json)
        _finish_observability(args, obs, events, command="serve",
                              workload=args.workload, seed=args.seed)
        return 1 if router.counters.get("router.shard_abandoned", 0) \
            else 0
    try:
        setup = load_service_setup(**setup_kwargs)
    except ConfigurationError as error:
        print("repro serve: configuration failed static verification:",
              file=sys.stderr)
        print(error.report.format(), file=sys.stderr)
        return 1
    store = _open_store(args, obs)
    try:
        service = asyncio.run(serve_forever(
            setup, host=args.host, port=args.port, obs=obs,
            queue_limit=args.queue_limit, batch_limit=args.batch_limit,
            request_timeout_s=args.timeout_ms / 1000.0,
            reconcile_every=args.reconcile_every,
            audit_every=args.audit_every, store=store))
    finally:
        if store is not None:
            store.close()
    rows = [dict(sorted(service.counters.items()))] \
        if service.counters else []
    _emit(rows, args.json)
    _finish_observability(args, obs, events, command="serve",
                          workload=args.workload, seed=args.seed)
    divergence = service.counters.get("service.reconcile.divergence", 0)
    return 1 if divergence else 0


def _cmd_loadgen(args) -> int:
    import asyncio

    from repro.service.loadgen import LoadgenSpec, run_loadgen

    spec = LoadgenSpec(
        requests=args.requests, seed=args.seed,
        channels=tuple(args.channels),
        mean_interarrival_ticks=args.mean_interarrival,
        execution_min=args.execution_min,
        execution_max=args.execution_max,
        deadline_ticks=args.deadline_ticks,
        release_fraction=args.release_fraction)
    try:
        report = asyncio.run(run_loadgen(
            args.host, args.port, spec, concurrency=args.concurrency,
            connections=args.connections))
    except (ConnectionError, OSError) as error:
        print(f"repro loadgen: cannot reach {args.host}:{args.port}: "
              f"{error}", file=sys.stderr)
        return 1
    row = report.to_row()
    _emit([row], args.json)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(row, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if report.dropped:
        print(f"repro loadgen: {report.dropped} requests never got a "
              f"reply", file=sys.stderr)
        return 1
    return 0


def _cmd_web(args) -> int:
    import asyncio

    from repro.results import serve_web

    obs, events = _make_observability(args)
    try:
        asyncio.run(serve_web(args.store, host=args.host, port=args.port,
                              obs=obs))
    except (FileNotFoundError, ValueError) as error:
        print(f"repro web: {error}", file=sys.stderr)
        return 1
    _finish_observability(args, obs, events, command="web",
                          store=args.store)
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import lint_paths

    report = lint_paths(args.paths)
    if args.json:
        print(json.dumps([d.to_row() for d in report], indent=2))
    else:
        print(report.format())
    return 1 if report.has_errors else 0


def _cmd_check(args) -> int:
    from pathlib import Path

    from repro.check import check_round, check_sources, check_workload
    from repro.verify.diagnostics import Diagnostic, Report, Severity

    combined = Report()
    store = _open_store(args, NULL_OBS)
    counterexample_dir = Path(args.counterexample_dir)

    def record(report, target):
        combined.merge(report)
        if store is not None:
            report_id = store.record_verify_report(report, target=target)
            print(f"repro check: stored report {report_id[:12]} for "
                  f"{target} in {args.store}", file=sys.stderr)

    if args.round_json:
        try:
            with open(args.round_json, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"repro check: cannot read {args.round_json}: {error}",
                  file=sys.stderr)
            return 2
        record(check_round(payload, counterexample_dir=counterexample_dir),
               "check:round-json")
    else:
        record(check_sources(), "check:sources")
        workloads = () if args.workload == "none" else (
            _VERIFY_WORKLOADS if args.workload == "all"
            else (args.workload,))
        for workload in workloads:
            try:
                target = _verify_target(workload, args)
            except ValueError as error:
                print(f"{workload}: setup error: {error}", file=sys.stderr)
                setup = Report()
                setup.add(Diagnostic(
                    rule_id="MDL401", severity=Severity.ERROR,
                    location=workload,
                    message=f"setup error: {error}",
                    fix_hint="check the workload/minislot pairing"))
                record(setup, f"check:{workload}")
                continue
            record(check_workload(
                target["params"], target["periodic"], target["aperiodic"],
                ber=args.ber, reliability_goal=args.rho,
                counterexample_dir=counterexample_dir, label=workload),
                f"check:{workload}")

    if store is not None:
        store.close()
    rows = [d.to_row() for d in combined]
    if args.format == "json":
        document = {
            "diagnostics": rows,
            "summary": {
                "errors": len(combined.errors),
                "warnings": len(combined.warnings),
                "total": len(combined),
                "rules": combined.rule_ids(),
            },
        }
        text = json.dumps(document, indent=2)
        print(text)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
    else:
        print(combined.format())
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump({"diagnostics": rows}, handle, indent=2)
                handle.write("\n")
    return 1 if combined.has_errors else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CoEfficient FlexRay scheduling reproduction "
                    "(ICDCS 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--workload", choices=_WORKLOADS,
                       default="synthetic",
                       help="periodic workload (default: synthetic)")
        p.add_argument("--count", type=int, default=20,
                       help="synthetic message count (default: 20)")
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--ber", type=float, default=1e-7,
                       help="bit error rate (default: 1e-7)")
        p.add_argument("--rho", type=float, default=1 - 1e-4,
                       help="reliability goal (default: 1-1e-4)")
        p.add_argument("--json", action="store_true",
                       help="emit JSON instead of a table")

    def observability(p):
        p.add_argument("--profile", action="store_true",
                       help="print a wall-clock profile to stderr")
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write observability counters/gauges/events "
                            "as JSONL to PATH")

    def store_option(p, what):
        p.add_argument("--store", default=None, metavar="DB",
                       help=f"persist {what} into the SQLite result "
                            f"store at DB (browse with `repro web`)")

    def backend_option(p):
        p.add_argument("--backend", choices=available_backends(),
                       default="flexray",
                       help="protocol backend the cluster geometry "
                            "comes from (default: flexray)")

    run_parser = sub.add_parser("run", help="run one experiment")
    common(run_parser)
    observability(run_parser)
    backend_option(run_parser)
    run_parser.add_argument("--scheduler", nargs="+", choices=SCHEDULERS,
                            default=["coefficient", "fspec"])
    run_parser.add_argument("--minislots", type=int, default=100)
    run_parser.add_argument("--aperiodic", type=int, default=30,
                            help="SAE aperiodic message count (0 = none)")
    run_parser.add_argument("--duration-ms", type=float, default=500.0)
    run_parser.add_argument("--engine-mode",
                            choices=("stepper", "interpreter", "vectorized"),
                            default="stepper",
                            help="timeline stepper fast path (default), "
                                 "the pure event-list interpreter oracle, "
                                 "or the cycle-batch vectorized engine")
    store_option(run_parser, "the run results")
    run_parser.set_defaults(handler=_cmd_run)

    campaign_parser = sub.add_parser(
        "campaign",
        help="multi-seed Monte-Carlo campaign with confidence intervals")
    common(campaign_parser)
    observability(campaign_parser)
    backend_option(campaign_parser)
    campaign_parser.add_argument("--scheduler", nargs="+",
                                 choices=SCHEDULERS,
                                 default=["coefficient", "fspec"])
    campaign_parser.add_argument("--minislots", type=int, default=100)
    campaign_parser.add_argument("--aperiodic", type=int, default=30,
                                 help="SAE aperiodic message count "
                                      "(0 = none)")
    campaign_parser.add_argument("--duration-ms", type=float, default=200.0)
    campaign_parser.add_argument("--seeds", type=int, default=8,
                                 help="number of seeds, counted up from "
                                      "--seed (default: 8)")
    campaign_parser.add_argument("--workers", type=int, default=None,
                                 help="worker processes to fan seeds "
                                      "over (default: serial)")
    campaign_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                                 help="content-addressed on-disk cache; "
                                      "completed seeds are skipped on "
                                      "re-runs")
    campaign_parser.add_argument("--metric", nargs="+", default=None,
                                 choices=list(CAMPAIGN_METRICS),
                                 help="metrics to summarize "
                                      "(default: all)")
    campaign_parser.add_argument("--validate", action="store_true",
                                 help="statically verify the "
                                      "configuration before running "
                                      "any seed")
    campaign_parser.add_argument("--engine-mode",
                                 choices=("stepper", "interpreter",
                                          "vectorized"),
                                 default="stepper",
                                 help="engine every seed runs under "
                                      "(all modes are trace-equivalent)")
    campaign_parser.add_argument(
        "--coordinate", default=None, metavar="DIR",
        help="coordinate this campaign with other worker processes "
             "through a shared directory (lease-claimed seed ranges, "
             "shared cache and result store)")
    campaign_parser.add_argument(
        "--join", action="store_true",
        help="join DIR as an extra worker: contribute seed ranges but "
             "leave the final reduce to the coordinating process")
    campaign_parser.add_argument(
        "--chunk", type=int, default=2,
        help="seeds per lease-claimed range (default 2)")
    campaign_parser.add_argument(
        "--worker-id", default=None,
        help="stable lease identity (default: host-pid)")
    campaign_parser.add_argument(
        "--heartbeat-s", type=float, default=1.0,
        help="lease heartbeat interval in seconds (default 1.0)")
    campaign_parser.add_argument(
        "--stale-after-s", type=float, default=6.0,
        help="age after which an untouched lease may be taken over "
             "(default 6.0; must be >= 3x the heartbeat)")
    campaign_parser.add_argument(
        "--coordinate-timeout-s", type=float, default=None,
        help="give up after this many seconds without claimable work "
             "(default: wait forever)")
    store_option(campaign_parser, "the campaign and its per-seed runs")
    campaign_parser.set_defaults(handler=_cmd_campaign)

    figure_parser = sub.add_parser("figures",
                                   help="regenerate a paper figure")
    figure_parser.add_argument("figure", choices=_FIGURES)
    figure_parser.add_argument("--duration-ms", type=float, default=500.0)
    figure_parser.add_argument("--json", action="store_true")
    observability(figure_parser)
    figure_parser.set_defaults(handler=_cmd_figures)

    table_parser = sub.add_parser("tables",
                                  help="print a case-study table")
    table_parser.add_argument("table", choices=("2", "3"))
    table_parser.add_argument("--json", action="store_true")
    table_parser.set_defaults(handler=_cmd_tables)

    plan_parser = sub.add_parser(
        "plan", help="show the differentiated retransmission plan")
    common(plan_parser)
    plan_parser.add_argument("--time-unit-ms", type=float, default=1000.0)
    plan_parser.set_defaults(handler=_cmd_plan)

    report_parser = sub.add_parser(
        "report", help="regenerate the whole evaluation as markdown")
    report_parser.add_argument("--output", default=None,
                               help="write to a file instead of stdout")
    report_parser.add_argument("--duration-ms", type=float, default=500.0)
    report_parser.add_argument("--skip-running-time", action="store_true",
                               help="omit the slower Figures 1-2")
    report_parser.set_defaults(handler=_cmd_report)

    breakdown_parser = sub.add_parser(
        "breakdown", help="breakdown-load search per scheduler")
    common(breakdown_parser)
    breakdown_parser.add_argument("--scheduler", nargs="+",
                                  choices=SCHEDULERS,
                                  default=["coefficient", "fspec"])
    breakdown_parser.add_argument("--minislots", type=int, default=50)
    breakdown_parser.add_argument("--duration-ms", type=float,
                                  default=400.0)
    breakdown_parser.set_defaults(handler=_cmd_breakdown)

    verify_parser = sub.add_parser(
        "verify-config",
        help="statically verify configuration + schedule + plan "
             "invariants without simulating")
    verify_parser.add_argument("--workload",
                               choices=_VERIFY_WORKLOADS + ("all",),
                               default="all",
                               help="workload to verify (default: all)")
    verify_parser.add_argument("--count", type=int, default=20,
                               help="synthetic message count (default: 20)")
    verify_parser.add_argument("--seed", type=int, default=42)
    verify_parser.add_argument("--ber", type=float, default=1e-7,
                               help="bit error rate (default: 1e-7)")
    verify_parser.add_argument("--rho", type=float, default=1 - 1e-4,
                               help="reliability goal (default: 1-1e-4)")
    verify_parser.add_argument("--minislots", type=int, default=None,
                               help="minislot count (default: 50 for the "
                                    "case studies, 100 otherwise)")
    verify_parser.add_argument("--aperiodic", type=int, default=0,
                               help="SAE aperiodic message count to mix "
                                    "into periodic workloads (0 = none; "
                                    "the sae workload itself defaults "
                                    "to 30)")
    verify_parser.add_argument("--json", action="store_true",
                               help="emit JSON instead of a table")
    backend_option(verify_parser)
    store_option(verify_parser, "each verification report")
    verify_parser.set_defaults(handler=_cmd_verify_config)

    serve_parser = sub.add_parser(
        "serve",
        help="run the online admission-control service "
             "(JSON lines over TCP)")
    serve_parser.add_argument("--workload",
                              choices=("bbw", "acc", "synthetic", "sae"),
                              default="synthetic",
                              help="configuration to hold live "
                                   "(default: synthetic)")
    serve_parser.add_argument("--count", type=int, default=20,
                              help="synthetic message count (default: 20)")
    serve_parser.add_argument("--seed", type=int, default=42)
    serve_parser.add_argument("--ber", type=float, default=1e-7)
    serve_parser.add_argument("--rho", type=float, default=1 - 1e-4)
    serve_parser.add_argument("--minislots", type=int, default=None,
                              help="minislot count (default: 50 for the "
                                   "case studies, 100 otherwise)")
    backend_option(serve_parser)
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8471,
                              help="TCP port (0 = ephemeral; the bound "
                                   "port is printed to stderr)")
    serve_parser.add_argument("--tick-us", type=int, default=100,
                              help="service tick in microseconds "
                                   "(default: 100)")
    serve_parser.add_argument("--queue-limit", type=int, default=1024,
                              help="bounded request queue; full = "
                                   "overload replies (default: 1024)")
    serve_parser.add_argument("--batch-limit", type=int, default=256,
                              help="max requests per batch pass "
                                   "(default: 256)")
    serve_parser.add_argument("--timeout-ms", type=float, default=5000.0,
                              help="per-request queue timeout "
                                   "(default: 5000)")
    serve_parser.add_argument("--reconcile-every", type=int, default=64,
                              help="full slack reconciliation every N "
                                   "batches (default: 64; 0 = off)")
    serve_parser.add_argument("--audit-every", type=int, default=0,
                              help="trial-run audit every Nth admission "
                                   "(default: 0 = off)")
    serve_parser.add_argument("--engine-mode",
                              choices=("stepper", "interpreter",
                                       "vectorized"),
                              default="stepper",
                              help="engine offline replays of the served "
                                   "configuration use; advertised in the "
                                   "status payload (default: stepper)")
    serve_parser.add_argument("--shards", type=int, default=1,
                              help="shard the service across N worker "
                                   "processes behind a routing "
                                   "front-end (default 1: run "
                                   "in-process, no router)")
    serve_parser.add_argument("--inflight-limit", type=int, default=1024,
                              help="per-shard in-flight request cap "
                                   "before the router sheds load "
                                   "(default 1024)")
    serve_parser.add_argument("--max-restarts", type=int, default=3,
                              help="restarts per shard before the "
                                   "router abandons it (default 3)")
    serve_parser.add_argument("--health-interval", type=float,
                              default=1.0,
                              help="seconds between shard health "
                                   "probes (default 1.0)")
    serve_parser.add_argument("--no-verify", action="store_true",
                              help="skip the static verification gate "
                                   "(tests only)")
    serve_parser.add_argument("--json", action="store_true",
                              help="emit final counters as JSON")
    store_option(serve_parser, "audit samples and the drain summary")
    observability(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    web_parser = sub.add_parser(
        "web",
        help="serve a result store over read-only HTTP "
             "(canonical JSON + ETags)")
    web_parser.add_argument("--store", required=True, metavar="DB",
                            help="SQLite result store to serve")
    web_parser.add_argument("--host", default="127.0.0.1")
    web_parser.add_argument("--port", type=int, default=8478,
                            help="TCP port (0 = ephemeral; the bound "
                                 "port is printed to stderr)")
    observability(web_parser)
    web_parser.set_defaults(handler=_cmd_web)

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="fire a deterministic Poisson request stream at a running "
             "service")
    loadgen_parser.add_argument("--host", default="127.0.0.1")
    loadgen_parser.add_argument("--port", type=int, default=8471)
    loadgen_parser.add_argument("--requests", type=int, default=1000)
    loadgen_parser.add_argument("--seed", type=int, default=7)
    loadgen_parser.add_argument("--channels", nargs="+",
                                default=["A", "B"])
    loadgen_parser.add_argument("--mean-interarrival", type=float,
                                default=8.0,
                                help="Poisson mean inter-arrival in "
                                     "ticks (default: 8)")
    loadgen_parser.add_argument("--execution-min", type=int, default=1)
    loadgen_parser.add_argument("--execution-max", type=int, default=4)
    loadgen_parser.add_argument("--deadline-ticks", type=int, default=500,
                                help="relative deadline in ticks "
                                     "(default: 500 = SAE 50 ms)")
    loadgen_parser.add_argument("--release-fraction", type=float,
                                default=0.0,
                                help="fraction of accepted requests "
                                     "followed by a release")
    loadgen_parser.add_argument("--concurrency", type=int, default=64,
                                help="max requests in flight")
    loadgen_parser.add_argument("--connections", type=int, default=4,
                                help="TCP connections to spread over")
    loadgen_parser.add_argument("--out", default=None, metavar="PATH",
                                help="also write the report row as JSON "
                                     "to PATH")
    loadgen_parser.add_argument("--json", action="store_true",
                                help="emit JSON instead of a table")
    loadgen_parser.set_defaults(handler=_cmd_loadgen)

    lint_parser = sub.add_parser(
        "lint", help="determinism lint (DET* rules) over source paths")
    lint_parser.add_argument("paths", nargs="*", default=["src/repro"],
                             help="files or directories "
                                  "(default: src/repro)")
    lint_parser.add_argument("--json", action="store_true",
                             help="emit JSON instead of text")
    lint_parser.set_defaults(handler=_cmd_lint)

    check_parser = sub.add_parser(
        "check",
        help="prove the engine-equivalence contract: policy "
             "outcome-free promises (EFF* rules) + hyperperiod model "
             "check of compiled rounds (MDL* rules)")
    check_parser.add_argument("--workload",
                              choices=_VERIFY_WORKLOADS + ("all", "none"),
                              default="all",
                              help="workload rounds to model-check "
                                   "(default: all; none = source "
                                   "proofs only)")
    check_parser.add_argument("--count", type=int, default=20,
                              help="synthetic message count (default: 20)")
    check_parser.add_argument("--seed", type=int, default=42)
    check_parser.add_argument("--ber", type=float, default=1e-7,
                              help="bit error rate (default: 1e-7)")
    check_parser.add_argument("--rho", type=float, default=1 - 1e-4,
                              help="reliability goal (default: 1-1e-4)")
    check_parser.add_argument("--minislots", type=int, default=None,
                              help="minislot count (default: 50 for the "
                                   "case studies, 100 otherwise)")
    check_parser.add_argument("--aperiodic", type=int, default=0,
                              help="SAE aperiodic message count to mix "
                                   "into periodic workloads")
    check_parser.add_argument("--round-json", default=None, metavar="PATH",
                              help="model-check a serialized "
                                   "counterexample round instead of the "
                                   "bundled workloads")
    check_parser.add_argument("--format", choices=("text", "json"),
                              default="text",
                              help="diagnostics output format "
                                   "(default: text)")
    check_parser.add_argument("--out", default=None, metavar="PATH",
                              help="also write the diagnostics JSON "
                                   "to PATH (the CI artifact)")
    backend_option(check_parser)
    check_parser.add_argument("--counterexample-dir",
                              default="check-artifacts", metavar="DIR",
                              help="where violation counterexamples are "
                                   "written (default: check-artifacts; "
                                   "created only on violation)")
    store_option(check_parser, "each check report")
    check_parser.set_defaults(handler=_cmd_check)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
