"""Incremental slack accounting for online admission control.

The offline :class:`~repro.core.acceptance.AcceptanceTest` answers one
admission question with a trial run of the exact slack-stealing
schedule -- O(horizon) per request.  A service answering thousands of
requests needs the paper's "fast and accurate slack computation"
instead: precompute the guaranteed aperiodic capacity once, then keep
the committed demand *incrementally* as requests are admitted, released
and expired.

The capacity function comes straight from the slack stealer's
aperiodic-free tables:

    F(t) = min_i A_i(t)

the processing guaranteed to be available for top-priority aperiodic
service in ``[0, t]`` no matter how the periodic jobs interleave (idle
at every level is necessary for top-priority aperiodic service).  F is
nondecreasing, so an admitted set served earliest-deadline-first over
this capacity is feasible **iff** the processor-demand criterion holds
on the variable-capacity resource:

    for every arrival a and deadline d with a < d:
        demand(a, d) <= F(d) - F(a)

where ``demand(a, d)`` sums the execution of admitted tasks whose
window ``[arrival, absolute deadline]`` is contained in ``[a, d]``.
Admitting a candidate only creates pairs that *contain* the candidate's
window, so the incremental check is restricted to arrivals <= the
candidate's arrival and deadlines >= the candidate's deadline -- the
state invariant ("the live set satisfies the criterion") carries the
rest.

The ledger maintains three incremental aggregates next to the
authoritative live-set map -- total committed demand, per-deadline
demand, per-arrival demand -- and :meth:`reconcile` rebuilds all of
them from scratch, asserting agreement (and self-healing plus counting
any divergence, which tests and the service's periodic reconciliation
pass require to be zero).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.slack_stealing import CapacityProfile, SlackStealer
from repro.core.tasks import TaskSet
from repro.obs import NULL_OBS, ObsLike

__all__ = ["AdmitOutcome", "LedgerStats", "ReconcileResult", "SlackLedger"]


@dataclass(frozen=True)
class AdmitOutcome:
    """Result of one ledger admission attempt."""

    admitted: bool
    reason: str
    #: Effective (clamped-to-now) arrival the test used.
    arrival: int = 0
    #: Absolute deadline the test used.
    deadline: int = 0
    #: F(deadline) - F(arrival) - demand in the window after the
    #: decision: the guaranteed slack still unclaimed in the window.
    window_slack: int = 0


@dataclass(frozen=True)
class LedgerStats:
    """Point-in-time summary of one channel's ledger."""

    live: int
    committed: int
    admitted_total: int
    rejected_total: int
    released_total: int
    expired_total: int
    now: int
    horizon: int
    capacity_total: int
    capacity_remaining: int


@dataclass(frozen=True)
class ReconcileResult:
    """Outcome of one full-recompute reconciliation pass."""

    divergences: Tuple[str, ...]
    live: int
    committed: int

    @property
    def clean(self) -> bool:
        """Whether incremental and recomputed state agreed exactly."""
        return not self.divergences


@dataclass(frozen=True)
class _Admitted:
    """One live (admitted, not yet released/expired) task."""

    name: str
    arrival: int
    deadline: int  # absolute
    execution: int


@dataclass
class _Aggregates:
    """The incrementally maintained bookkeeping (reconciliation target)."""

    committed: int = 0
    demand_by_deadline: Dict[int, int] = field(default_factory=dict)
    demand_by_arrival: Dict[int, int] = field(default_factory=dict)

    def add(self, task: _Admitted) -> None:
        self.committed += task.execution
        self.demand_by_deadline[task.deadline] = (
            self.demand_by_deadline.get(task.deadline, 0) + task.execution)
        self.demand_by_arrival[task.arrival] = (
            self.demand_by_arrival.get(task.arrival, 0) + task.execution)

    def remove(self, task: _Admitted) -> None:
        self.committed -= task.execution
        for table, key in ((self.demand_by_deadline, task.deadline),
                           (self.demand_by_arrival, task.arrival)):
            remaining = table[key] - task.execution
            if remaining:
                table[key] = remaining
            else:
                del table[key]


class SlackLedger:
    """Per-channel incremental slack accountant.

    Args:
        tasks: The channel's hard periodic task set (priority order).
            May be empty, in which case every tick is capacity and
            ``horizon`` is required.
        horizon: Analysis horizon in ticks; defaults to the task set's.
        obs: Observability context for admission counters.
        channel: Label used in counters (``service.<channel>...``).
    """

    def __init__(self, tasks: TaskSet, horizon: Optional[int] = None,
                 obs: ObsLike = NULL_OBS, channel: str = "A") -> None:
        self._obs = obs
        self._channel = channel
        if len(tasks) == 0:
            if horizon is None or horizon <= 0:
                raise ValueError(
                    "an empty task set needs an explicit positive horizon")
            # No periodics: every tick everywhere is capacity.
            self._profile = CapacityProfile.unconstrained(horizon)
        else:
            # The stealer compiles F once; the ledger only reads the
            # profile (the default horizon max_offset + 2H always
            # contains one steady-state pattern, so the profile
            # extrapolates; a custom horizon that does not saturates
            # and far-future admissions are rejected).
            self._profile = SlackStealer(
                tasks, horizon=horizon).capacity_profile()
        self._horizon = self._profile.horizon
        self._now = 0
        self._live: Dict[str, _Admitted] = {}
        # (deadline, arrival, name) kept sorted for window scans.
        self._order: List[Tuple[int, int, str]] = []
        self._agg = _Aggregates()
        self._admitted_total = 0
        self._rejected_total = 0
        self._released_total = 0
        self._expired_total = 0

    # -- properties ----------------------------------------------------

    @property
    def horizon(self) -> int:
        """Last tick the capacity table covers."""
        return self._horizon

    @property
    def now(self) -> int:
        """Current logical time (ticks)."""
        return self._now

    @property
    def live_names(self) -> List[str]:
        """Names of currently guaranteed tasks (sorted)."""
        return sorted(self._live)

    def live_tasks(self) -> List[Tuple[str, int, int, int]]:
        """Live tasks as ``(name, arrival, absolute_deadline, execution)``.

        Sorted by (deadline, arrival, name): the order the capacity is
        consumed under EDF service.
        """
        return [(name, self._live[name].arrival, deadline,
                 self._live[name].execution)
                for deadline, __, name in self._order]

    @property
    def profile(self) -> CapacityProfile:
        """The compiled capacity function the ledger accounts against."""
        return self._profile

    @property
    def extrapolates(self) -> bool:
        """Whether capacity extends past the table (steady-state slope)."""
        return self._profile.extrapolates

    def capacity(self, t: int) -> int:
        """F(t): guaranteed aperiodic capacity in ``[0, t]``.

        Inside the analysis horizon this is the precomputed table; past
        it, the steady-state pattern repeats every hyperperiod, so the
        table's last full pattern is tiled with its per-pattern gain
        (exact for the cyclic aperiodic-free schedule).
        """
        return self._profile.capacity(t)

    # -- clock ---------------------------------------------------------

    def advance(self, now: int) -> List[str]:
        """Advance the logical clock (monotone) and expire the past.

        A task whose absolute deadline is ``<= now`` is over -- either
        it was served in time (its slot consumption is behind us) or it
        is unsalvageable; either way its window no longer constrains
        new admissions, so its demand is reclaimed.  Exact-boundary
        semantics match :meth:`AcceptanceTest.expire`: ``deadline ==
        now`` expires.

        Returns:
            Names of expired tasks (deadline order).
        """
        if now > self._now:
            self._now = now
        expired: List[str] = []
        while self._order and self._order[0][0] <= self._now:
            deadline, arrival, name = self._order.pop(0)
            task = self._live.pop(name)
            self._agg.remove(task)
            expired.append(name)
        if expired:
            self._expired_total += len(expired)
            if self._obs.enabled:
                self._obs.inc(f"service.{self._channel}.expired",
                              len(expired))
        return expired

    # -- admission -----------------------------------------------------

    def admit(self, name: str, arrival: int, execution: int,
              deadline: int) -> AdmitOutcome:
        """Admission-test one hard aperiodic request.

        Args:
            name: Unique name among live tasks.
            arrival: Requested arrival tick (clamped up to ``now``).
            execution: Processing demand in ticks (>= 1).
            deadline: *Relative* hard deadline in ticks.

        Returns:
            An :class:`AdmitOutcome`; on admission the task joins the
            live set and its demand the incremental aggregates.
        """
        if execution < 1:
            return self._reject("execution must be >= 1", 0, 0)
        if deadline < execution:
            return self._reject("deadline below execution", 0, 0)
        effective = max(arrival, self._now)
        absolute = arrival + deadline
        if absolute <= effective:
            return self._reject("deadline already passed", effective,
                                absolute)
        if name in self._live:
            return self._reject(f"name {name!r} already guaranteed",
                                effective, absolute)
        if absolute > self._horizon and not self.extrapolates:
            return self._reject("deadline beyond analysis horizon",
                                effective, absolute)

        window = self.capacity(absolute) - self.capacity(effective)
        if window < execution:
            # The paper's quick-reject: even an empty system lacks the
            # structural slack.
            if self._obs.enabled:
                self._obs.inc(f"service.{self._channel}.quick_rejects")
            return self._reject("insufficient structural slack in window",
                                effective, absolute,
                                window - self._window_demand(
                                    effective, absolute))

        margin = self._demand_criterion_margin(effective, absolute,
                                               execution)
        if margin < 0:
            return self._reject("committed demand exceeds window slack",
                                effective, absolute, margin)

        task = _Admitted(name=name, arrival=effective, deadline=absolute,
                         execution=execution)
        self._live[name] = task
        bisect.insort(self._order, (absolute, effective, name))
        self._agg.add(task)
        self._admitted_total += 1
        if self._obs.enabled:
            self._obs.inc(f"service.{self._channel}.admitted")
        return AdmitOutcome(
            admitted=True, reason="window demand within guaranteed slack",
            arrival=effective, deadline=absolute,
            window_slack=window - self._window_demand(effective, absolute))

    def _reject(self, reason: str, arrival: int, deadline: int,
                window_slack: int = 0) -> AdmitOutcome:
        self._rejected_total += 1
        if self._obs.enabled:
            self._obs.inc(f"service.{self._channel}.rejected")
        return AdmitOutcome(admitted=False, reason=reason, arrival=arrival,
                            deadline=deadline, window_slack=window_slack)

    def _window_demand(self, start: int, end: int) -> int:
        """Committed demand of live tasks contained in ``[start, end]``."""
        return sum(t.execution for t in self._live.values()
                   if t.arrival >= start and t.deadline <= end)

    def _demand_criterion_margin(self, arrival: int, deadline: int,
                                 execution: int) -> int:
        """Min slack margin over every pair the candidate participates in.

        Only pairs ``(a, d)`` with ``a <= arrival`` and ``d >= deadline``
        gain the candidate's demand; all other pairs held before and are
        untouched.  Returns ``min (F(d) - F(a) - demand'(a, d))`` over
        those pairs, where ``demand'`` includes the candidate -- the
        admission is safe iff the margin is >= 0.
        """
        starts = sorted({t.arrival for t in self._live.values()
                         if t.arrival <= arrival} | {arrival})
        ends = sorted({t.deadline for t in self._live.values()
                       if t.deadline >= deadline} | {deadline})
        # Tasks sorted by deadline once; each start then accumulates
        # demand in one sweep over the relevant ends.
        by_deadline = sorted(self._live.values(),
                             key=lambda t: (t.deadline, t.arrival, t.name))
        margin: Optional[int] = None
        for a in starts:
            cumulative = execution  # the candidate sits in every pair
            index = 0
            for d in ends:
                while (index < len(by_deadline)
                       and by_deadline[index].deadline <= d):
                    task = by_deadline[index]
                    if task.arrival >= a:
                        cumulative += task.execution
                    index += 1
                slack = self.capacity(d) - self.capacity(a) - cumulative
                if margin is None or slack < margin:
                    margin = slack
        return margin if margin is not None else 0

    # -- releases ------------------------------------------------------

    def release(self, name: str) -> bool:
        """Reclaim a live task's demand (e.g. it completed early).

        Returns:
            ``True`` if the task was live and is now released.
        """
        task = self._live.pop(name, None)
        if task is None:
            return False
        self._order.remove((task.deadline, task.arrival, name))
        self._agg.remove(task)
        self._released_total += 1
        if self._obs.enabled:
            self._obs.inc(f"service.{self._channel}.released")
        return True

    # -- reconciliation ------------------------------------------------

    def reconcile(self) -> ReconcileResult:
        """Recompute every incremental aggregate and assert agreement.

        Rebuilds the committed total, the per-deadline and per-arrival
        demand tables and the deadline-sorted order from the live-set
        map, compares field by field with the incrementally maintained
        copies, and -- if anything diverged -- adopts the recomputed
        truth (self-heal) so one bug cannot silently poison every later
        admission.
        """
        recomputed = _Aggregates()
        for task in sorted(self._live.values(), key=lambda t: t.name):
            recomputed.add(task)
        order = sorted((t.deadline, t.arrival, t.name)
                       for t in self._live.values())

        divergences: List[str] = []
        if recomputed.committed != self._agg.committed:
            divergences.append(
                f"committed: incremental {self._agg.committed} "
                f"!= recomputed {recomputed.committed}")
        if recomputed.demand_by_deadline != self._agg.demand_by_deadline:
            divergences.append("demand_by_deadline tables differ")
        if recomputed.demand_by_arrival != self._agg.demand_by_arrival:
            divergences.append("demand_by_arrival tables differ")
        if order != self._order:
            divergences.append("deadline order index differs")
        if divergences:
            self._agg = recomputed
            self._order = order
        return ReconcileResult(divergences=tuple(divergences),
                               live=len(self._live),
                               committed=recomputed.committed)

    # -- stats ---------------------------------------------------------

    def stats(self) -> LedgerStats:
        """Current counters and capacity position.

        ``capacity_remaining`` is the guaranteed capacity of the next
        lookahead window (one steady-state pattern, or the table tail
        when not extrapolating) minus the committed demand -- the slack
        still on offer right now.
        """
        if self.extrapolates:
            window = self._profile.pattern_length
        else:
            window = self._horizon - min(self._now, self._horizon)
        upcoming = (self.capacity(self._now + window)
                    - self.capacity(self._now))
        return LedgerStats(
            live=len(self._live),
            committed=self._agg.committed,
            admitted_total=self._admitted_total,
            rejected_total=self._rejected_total,
            released_total=self._released_total,
            expired_total=self._expired_total,
            now=self._now,
            horizon=self._horizon,
            capacity_total=self.capacity(self._horizon),
            capacity_remaining=upcoming - self._agg.committed,
        )
