"""Pipelining asyncio client for the admission service.

One TCP connection, many requests in flight: the client assigns each
request a unique ``id``, a background reader task matches response
lines back to their futures, and callers simply ``await`` their reply.
Responses the server emits without an id (replies to raw/malformed
lines sent via :meth:`ServiceClient.send_raw`) land in
:attr:`ServiceClient.unmatched`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional

from repro.service.protocol import encode_response

__all__ = ["ServiceClient"]


class ServiceClient:
    """JSON-lines client; create via :meth:`connect`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[str, asyncio.Future] = {}
        self._sequence = 0
        #: Responses that carried no (matchable) id, in arrival order.
        self.unmatched: List[Dict[str, object]] = []
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        """Open a connection to a running service."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(response, dict):
                    continue
                request_id = response.get("id")
                future = self._pending.pop(request_id, None) \
                    if isinstance(request_id, str) else None
                if future is not None and not future.done():
                    future.set_result(response)
                elif future is None:
                    self.unmatched.append(response)
        finally:
            # Connection gone: fail whatever is still waiting.
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError(
                        "service connection closed"))
            self._pending.clear()

    async def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one request and await its response.

        An ``id`` is assigned automatically when absent.
        """
        payload = dict(payload)
        if "id" not in payload:
            self._sequence += 1
            payload["id"] = f"c{self._sequence}"
        request_id = str(payload["id"])
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        # A dead reader already failed (and cleared) every pending
        # future; one registered after that point would hang forever.
        if self._reader_task.done() and not future.done():
            self._pending.pop(request_id, None)
            raise ConnectionError("service connection closed")
        try:
            self._writer.write(encode_response(payload))  # line framing
            await self._writer.drain()
        except (ConnectionError, OSError):
            self._pending.pop(request_id, None)
            raise
        return await future

    async def send_raw(self, line: bytes) -> None:
        """Send raw bytes (tests: malformed-line isolation)."""
        self._writer.write(line)
        await self._writer.drain()

    async def admit(self, channel: str, arrival: int, execution: int,
                    deadline: int,
                    name: Optional[str] = None) -> Dict[str, object]:
        """Admission-test one hard aperiodic request."""
        payload: Dict[str, object] = {
            "op": "admit", "channel": channel, "arrival": arrival,
            "execution": execution, "deadline": deadline,
        }
        if name is not None:
            payload["name"] = name
        return await self.request(payload)

    async def admit_batch(
            self,
            requests: List[Dict[str, object]]) -> Dict[str, object]:
        """Admission-test many requests in one line (positional replies)."""
        return await self.request(
            {"op": "admit_batch", "requests": list(requests)})

    async def release(self, channel: str, name: str) -> Dict[str, object]:
        """Release a previously admitted task."""
        return await self.request(
            {"op": "release", "channel": channel, "name": name})

    async def stats(self) -> Dict[str, object]:
        """Fetch service stats."""
        return await self.request({"op": "stats"})

    async def ping(self) -> Dict[str, object]:
        """Liveness probe."""
        return await self.request({"op": "ping"})

    async def plan_retransmission(self, messages: Dict[str, Dict[str, float]],
                                  rho: float) -> Dict[str, object]:
        """Run the Theorem-1 planner server-side."""
        return await self.request(
            {"op": "plan_retransmission", "messages": messages,
             "rho": rho})

    async def close(self) -> None:
        """Close the connection and stop the reader task."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, ConnectionError, OSError):
            # A torn connection's read error is already reflected in
            # the failed pending futures; close() itself stays quiet.
            pass
