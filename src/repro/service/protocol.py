"""JSON-lines wire protocol of the admission service.

One request per line, one JSON object per request; one response line
per request.  Requests carry an ``op`` and an optional client-chosen
``id`` that the response echoes (pipelining clients correlate on it).

Operations:

``admit``
    Admission-test one hard aperiodic task:
    ``{"op": "admit", "id": "r1", "channel": "A", "arrival": 120,
    "execution": 3, "deadline": 500}`` (``deadline`` is relative,
    ticks; ``name`` defaults to the id).  Reply ``status`` is
    ``accepted`` / ``rejected`` / ``overload``.
``admit_batch``
    Admission-test many tasks in one line (the shard router's
    aggregation op): ``{"op": "admit_batch", "id": "b1", "requests":
    [{"channel": "A", "name": "r1", "arrival": 120, "execution": 3,
    "deadline": 500}, ...]}``.  The reply is ``{"status": "ok",
    "responses": [...]}`` where ``responses[i]`` is exactly the reply
    request ``i`` would have received as an individual ``admit``
    coalesced into the same batch pass.  Entries are error-isolated
    like request lines: an invalid entry gets a positional
    ``{"status": "error", ...}`` reply without poisoning its
    neighbours.  Each entry must carry an explicit ``name``; at most
    :data:`MAX_BATCH_REQUESTS` entries.
``release``
    Reclaim a previously admitted task's slack:
    ``{"op": "release", "channel": "A", "name": "r1"}`` ->
    ``released`` / ``not_found``.
``plan_retransmission``
    Run the Theorem-1 differentiated retransmission planner:
    ``{"op": "plan_retransmission", "rho": 0.9999, "messages":
    {"m1": {"failure_probability": 1e-3, "instances": 20.0}}}``.
``stats``
    Service and per-channel ledger counters.
``ping``
    Liveness probe.

Malformed lines never kill the connection: the server answers
``{"status": "error", "reason": ...}`` and keeps reading (malformed-
request isolation).  :exc:`ProtocolError` is the single parse-failure
type; its message becomes the ``reason``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["MAX_BATCH_REQUESTS", "MAX_LINE_BYTES", "OPS", "ProtocolError",
           "Request", "encode_response", "parse_request"]

#: Upper bound on one request line; longer lines are a protocol error.
MAX_LINE_BYTES = 64 * 1024

#: Upper bound on entries in one ``admit_batch`` request.
MAX_BATCH_REQUESTS = 512

#: Every operation the server understands.
OPS = ("admit", "admit_batch", "release", "plan_retransmission", "stats",
       "ping")


class ProtocolError(ValueError):
    """A request line that cannot be turned into a valid request."""


@dataclass(frozen=True)
class Request:
    """One parsed request."""

    op: str
    id: Optional[str]
    fields: Dict[str, object] = field(default_factory=dict)


def _require_int(payload: Mapping[str, object], key: str,
                 minimum: int) -> int:
    value = payload.get(key)
    # bool is an int subclass; reject it explicitly.
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"{key!r} must be an integer")
    if value < minimum:
        raise ProtocolError(f"{key!r} must be >= {minimum}, got {value}")
    return value


def _require_str(payload: Mapping[str, object], key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{key!r} must be a non-empty string")
    return value


def _number(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{what} must be a number")
    return float(value)


def parse_request(line: str) -> Request:
    """Parse one request line into a validated :class:`Request`.

    Raises:
        ProtocolError: On any malformed input -- not JSON, not an
            object, unknown/missing op, bad field types or ranges.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON: {error.msg}") from error
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")

    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError("missing 'op'")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}")

    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, str):
        raise ProtocolError("'id' must be a string when present")

    fields: Dict[str, object] = {}
    if op == "admit":
        fields["channel"] = _require_str(payload, "channel")
        fields["arrival"] = _require_int(payload, "arrival", 0)
        fields["execution"] = _require_int(payload, "execution", 1)
        fields["deadline"] = _require_int(payload, "deadline", 1)
        name = payload.get("name", request_id)
        if not isinstance(name, str) or not name:
            raise ProtocolError(
                "'name' (or a string 'id' to default from) is required")
        fields["name"] = name
    elif op == "admit_batch":
        entries = payload.get("requests")
        if not isinstance(entries, list) or not entries:
            raise ProtocolError("'requests' must be a non-empty array")
        if len(entries) > MAX_BATCH_REQUESTS:
            raise ProtocolError(
                f"'requests' exceeds {MAX_BATCH_REQUESTS} entries")
        parsed_entries = []
        for entry in entries:
            # Entries are error-isolated, not batch-fatal: a bad entry
            # becomes a positional error reply (the sharding router
            # coalesces many clients' admits into one batch; one
            # client's malformed request must not poison the others).
            if not isinstance(entry, dict):
                parsed_entries.append(
                    {"invalid": "entry must be an object"})
                continue
            try:
                parsed_entries.append({
                    "channel": _require_str(entry, "channel"),
                    "arrival": _require_int(entry, "arrival", 0),
                    "execution": _require_int(entry, "execution", 1),
                    "deadline": _require_int(entry, "deadline", 1),
                    "name": _require_str(entry, "name"),
                })
            except ProtocolError as error:
                parsed_entries.append({"invalid": str(error)})
        fields["requests"] = parsed_entries
    elif op == "release":
        fields["channel"] = _require_str(payload, "channel")
        fields["name"] = _require_str(payload, "name")
    elif op == "plan_retransmission":
        rho = _number(payload.get("rho"), "'rho'")
        if not 0.0 < rho <= 1.0:
            raise ProtocolError(f"'rho' must be in (0, 1], got {rho}")
        messages = payload.get("messages")
        if not isinstance(messages, dict) or not messages:
            raise ProtocolError("'messages' must be a non-empty object")
        parsed: Dict[str, Dict[str, float]] = {}
        for name, spec in messages.items():
            if not isinstance(spec, dict):
                raise ProtocolError(f"message {name!r} spec must be "
                                    f"an object")
            probability = _number(spec.get("failure_probability"),
                                  f"{name!r} failure_probability")
            if not 0.0 <= probability < 1.0:
                raise ProtocolError(
                    f"{name!r} failure_probability must be in [0, 1)")
            instances = _number(spec.get("instances"),
                                f"{name!r} instances")
            if instances <= 0:
                raise ProtocolError(f"{name!r} instances must be positive")
            entry = {"failure_probability": probability,
                     "instances": instances}
            if "cost" in spec:
                entry["cost"] = _number(spec["cost"], f"{name!r} cost")
            parsed[str(name)] = entry
        fields["rho"] = rho
        fields["messages"] = parsed
    # stats / ping carry no fields.
    return Request(op=op, id=request_id, fields=fields)


def encode_response(response: Mapping[str, object]) -> bytes:
    """Serialize one response as a newline-terminated JSON line."""
    return (json.dumps(response, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")
