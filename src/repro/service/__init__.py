"""Online admission-control service (``repro serve``).

The paper's online mechanism -- acceptance testing of hard aperiodic
retransmissions against the static schedule's precomputed slack
(Section III-C) -- packaged as a long-running, observable network
service instead of an offline library call:

- :mod:`repro.service.config` -- load and statically verify a cluster
  configuration, derive per-channel periodic task sets;
- :mod:`repro.service.ledger` -- the incremental slack accountant: a
  guaranteed-capacity table from the slack stealer plus demand-criterion
  admission, updated on admit/release/expire instead of recomputed,
  with full-recompute reconciliation;
- :mod:`repro.service.protocol` -- the JSON-lines request/response
  wire format;
- :mod:`repro.service.server` -- the asyncio TCP server: per-tick
  request batching, bounded queue with explicit overload replies,
  per-request timeouts, graceful drain on SIGTERM;
- :mod:`repro.service.client` -- a pipelining asyncio client;
- :mod:`repro.service.loadgen` -- deterministic seeded Poisson load
  generator with latency/throughput/acceptance-ratio reports.

Everything is stdlib + the repro core; see ``docs/service.md`` for the
protocol reference.
"""

from repro.service.client import ServiceClient
from repro.service.config import (
    SERVICE_WORKLOADS,
    ServiceSetup,
    build_channel_task_sets,
    load_service_setup,
    signal_to_task,
)
from repro.service.ledger import (
    AdmitOutcome,
    LedgerStats,
    ReconcileResult,
    SlackLedger,
)
from repro.service.loadgen import (
    AdmitRequestSpec,
    LoadgenReport,
    LoadgenSpec,
    generate_requests,
    percentile,
    run_loadgen,
)
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    encode_response,
    parse_request,
)
from repro.service.server import AdmissionService, serve_forever

__all__ = [
    "SERVICE_WORKLOADS",
    "ServiceSetup",
    "build_channel_task_sets",
    "load_service_setup",
    "signal_to_task",
    "AdmitOutcome",
    "LedgerStats",
    "ReconcileResult",
    "SlackLedger",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "Request",
    "encode_response",
    "parse_request",
    "AdmissionService",
    "serve_forever",
    "ServiceClient",
    "AdmitRequestSpec",
    "LoadgenReport",
    "LoadgenSpec",
    "generate_requests",
    "percentile",
    "run_loadgen",
]
