"""Deterministic load generator for the admission service.

``repro loadgen`` produces a seeded Poisson stream of SAE-style
admission requests (50 ms relative deadlines by default, sizes drawn
from the SAE Class C range), fires them at a running ``repro serve``
with bounded concurrency, and reports latency percentiles, throughput
and the acceptance ratio.

Determinism: the request *stream* is a pure function of the spec (all
draws go through :class:`repro.sim.rng.RngStream`), so two loadgen runs
against identical servers offer identical work.  The measured latencies
are wall clock, of course -- only the offered load is reproducible.

The report's invariant check is the service's no-drop guarantee: every
request must come back with an ``accepted`` / ``rejected`` /
``overload`` / ``error`` reply -- ``dropped`` must be zero.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.client import ServiceClient
from repro.sim.rng import RngStream

__all__ = ["AdmitRequestSpec", "LoadgenReport", "LoadgenSpec",
           "generate_requests", "percentile", "run_loadgen"]


@dataclass(frozen=True)
class LoadgenSpec:
    """Parameters of one deterministic request stream.

    Attributes:
        requests: Number of admit requests.
        seed: Root seed of every draw.
        channels: Channel labels to spread requests over.
        mean_interarrival_ticks: Poisson process mean inter-arrival
            time (ticks of *logical* service time).
        execution_min/execution_max: Uniform execution demand range.
        deadline_ticks: Relative hard deadline of every request
            (default 500 ticks = the SAE 50 ms at 0.1 ms ticks).
        release_fraction: Probability an accepted request is followed
            by a release (models retransmissions that turned out to be
            unneeded, reclaiming their slack).
        start_tick: Logical arrival time of the stream's start.
    """

    requests: int
    seed: int = 7
    channels: Tuple[str, ...] = ("A", "B")
    mean_interarrival_ticks: float = 8.0
    execution_min: int = 1
    execution_max: int = 4
    deadline_ticks: int = 500
    release_fraction: float = 0.0
    start_tick: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not self.channels:
            raise ValueError("need at least one channel")
        if self.mean_interarrival_ticks <= 0:
            raise ValueError("mean_interarrival_ticks must be positive")
        if not 1 <= self.execution_min <= self.execution_max:
            raise ValueError("invalid execution range")
        if self.deadline_ticks < self.execution_max:
            raise ValueError("deadline below maximum execution")
        if not 0.0 <= self.release_fraction <= 1.0:
            raise ValueError("release_fraction must be in [0, 1]")


@dataclass(frozen=True)
class AdmitRequestSpec:
    """One generated admission request (plus its follow-up release)."""

    name: str
    channel: str
    arrival: int
    execution: int
    deadline: int
    release_after: bool


def generate_requests(spec: LoadgenSpec) -> List[AdmitRequestSpec]:
    """Expand a spec into its deterministic request stream."""
    rng = RngStream(spec.seed, scope=f"loadgen/{spec.requests}")
    arrivals = rng.split("arrivals")
    sizes = rng.split("sizes")
    lanes = rng.split("channels")
    releases = rng.split("releases")
    clock = float(spec.start_tick)
    stream: List[AdmitRequestSpec] = []
    for index in range(spec.requests):
        clock += arrivals.exponential(spec.mean_interarrival_ticks)
        execution = sizes.randint(spec.execution_min, spec.execution_max)
        channel = str(lanes.choice(list(spec.channels)))
        release_after = (spec.release_fraction > 0.0
                         and releases.bernoulli(spec.release_fraction))
        stream.append(AdmitRequestSpec(
            name=f"lg-{index + 1:06d}",
            channel=channel,
            arrival=int(clock),
            execution=execution,
            deadline=spec.deadline_ticks,
            release_after=release_after,
        ))
    return stream


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LoadgenReport:
    """Aggregate outcome of one loadgen run."""

    requests: int
    replies: Dict[str, int]  # status -> count
    dropped: int             # requests that never got any reply
    wall_s: float
    latency_ms: Dict[str, float]  # p50/p90/p99/max/mean
    releases_sent: int
    releases_confirmed: int

    @property
    def accepted(self) -> int:
        return self.replies.get("accepted", 0)

    @property
    def rejected(self) -> int:
        return self.replies.get("rejected", 0)

    @property
    def overloaded(self) -> int:
        return self.replies.get("overload", 0)

    @property
    def errors(self) -> int:
        return self.replies.get("error", 0)

    @property
    def acceptance_ratio(self) -> float:
        """accepted / (accepted + rejected); NaN-free (0 on no decisions)."""
        decided = self.accepted + self.rejected
        return self.accepted / decided if decided else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def to_row(self) -> Dict[str, object]:
        """Flat summary row for tables / JSON export."""
        return {
            "requests": self.requests,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "overload": self.overloaded,
            "errors": self.errors,
            "dropped": self.dropped,
            "acceptance_ratio": round(self.acceptance_ratio, 4),
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.latency_ms.get("p50", 0.0), 3),
            "p90_ms": round(self.latency_ms.get("p90", 0.0), 3),
            "p99_ms": round(self.latency_ms.get("p99", 0.0), 3),
            "max_ms": round(self.latency_ms.get("max", 0.0), 3),
            "wall_s": round(self.wall_s, 3),
        }


async def run_loadgen(host: str, port: int, spec: LoadgenSpec,
                      concurrency: int = 64,
                      connections: int = 4) -> LoadgenReport:
    """Fire a spec's request stream at a running service.

    Args:
        host/port: The service endpoint.
        spec: The deterministic stream to offer.
        concurrency: Max requests in flight across all connections.
        connections: TCP connections to spread the stream over
            (round-robin), exercising the server's cross-connection
            batching.

    Returns:
        The aggregated :class:`LoadgenReport`.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if connections < 1:
        raise ValueError("connections must be >= 1")
    stream = generate_requests(spec)
    clients = [await ServiceClient.connect(host, port)
               for __ in range(min(connections, len(stream)))]
    semaphore = asyncio.Semaphore(concurrency)
    latencies: List[float] = []
    replies: Dict[str, int] = {}
    dropped = 0
    releases_sent = 0
    releases_confirmed = 0

    async def fire(index: int, item: AdmitRequestSpec) -> None:
        nonlocal dropped, releases_sent, releases_confirmed
        client = clients[index % len(clients)]
        async with semaphore:
            begin = time.perf_counter()
            try:
                response = await client.admit(
                    item.channel, item.arrival, item.execution,
                    item.deadline, name=item.name)
            except (ConnectionError, OSError):
                dropped += 1
                return
            latencies.append((time.perf_counter() - begin) * 1000.0)
            status = str(response.get("status", "error"))
            replies[status] = replies.get(status, 0) + 1
            if status == "accepted" and item.release_after:
                releases_sent += 1
                try:
                    released = await client.release(item.channel,
                                                    item.name)
                except (ConnectionError, OSError):
                    return
                if released.get("status") == "released":
                    releases_confirmed += 1

    begin = time.perf_counter()
    await asyncio.gather(*(fire(index, item)
                           for index, item in enumerate(stream)))
    wall = time.perf_counter() - begin
    for client in clients:
        await client.close()

    latency_summary: Dict[str, float] = {}
    if latencies:
        latency_summary = {
            "p50": percentile(latencies, 50),
            "p90": percentile(latencies, 90),
            "p99": percentile(latencies, 99),
            "max": max(latencies),
            "mean": sum(latencies) / len(latencies),
        }
    return LoadgenReport(
        requests=len(stream), replies=dict(sorted(replies.items())),
        dropped=dropped, wall_s=wall, latency_ms=latency_summary,
        releases_sent=releases_sent,
        releases_confirmed=releases_confirmed)
