"""The asyncio admission-control server.

Request lifecycle::

    socket -> parse -> bounded queue -> batcher -> ledger -> response

- **Batching**: the batcher coroutine wakes on the first queued request,
  yields once to the event loop so every request that arrived in the
  same tick can enqueue, then drains the queue (up to ``batch_limit``)
  and runs ONE slack-accounting pass over the whole batch inside a
  profiler span.  Within a batch, releases run first (they free slack),
  then admits in deterministic ``(arrival, deadline, name)`` order.
- **Backpressure**: the queue is bounded; when it is full the request
  is answered immediately with ``status: overload`` -- nothing blocks,
  nothing is silently dropped.  A request that waits in the queue past
  its timeout is answered ``overload`` too (the batcher skips futures
  the connection side already resolved).
- **Reconciliation**: every ``reconcile_every`` batches the server runs
  each channel ledger's full recompute and counts divergences
  (``service.reconcile.divergence`` must stay 0).
- **Drain**: SIGTERM/SIGINT (or :meth:`AdmissionService.stop`) stops
  accepting new work -- late requests get ``overload`` with reason
  ``draining`` -- finishes every queued request, then closes.
- **Isolation**: malformed lines get ``status: error`` replies and the
  connection stays open; one broken client cannot take the service
  down.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Dict, List, Optional, Tuple

from repro.core.acceptance import AcceptanceTest
from repro.core.retransmission import plan_retransmissions
from repro.obs import NULL_OBS, ObsLike
from repro.service.config import ServiceSetup
from repro.service.ledger import SlackLedger
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    encode_response,
    parse_request,
)

__all__ = ["AdmissionService", "CHANNEL_STATUS_FIELDS", "STATUS_FIELDS",
           "serve_forever"]

#: Exact top-level key set of the ``stats`` reply, in reply order.
#: docs/service.md documents these one-for-one, and the round-trip test
#: (tests/service/test_status_contract.py) pins payload, this tuple and
#: the docs together so they cannot drift apart again.
STATUS_FIELDS = ("status", "workload", "tick_us", "engine_mode",
                 "channels", "counters", "batches", "mean_batch_size",
                 "queue_depth", "queue_limit", "draining")

#: Exact key set of each per-channel entry under ``channels``.
CHANNEL_STATUS_FIELDS = ("live", "committed", "admitted_total",
                         "rejected_total", "released_total",
                         "expired_total", "now", "horizon",
                         "capacity_total", "capacity_remaining")


class AdmissionService:
    """One live admission-control service over a verified setup.

    Args:
        setup: The verified configuration (see
            :func:`repro.service.config.load_service_setup`).
        obs: Observability context; counters and profiler spans are
            mirrored into it when enabled.
        queue_limit: Bounded request-queue size (backpressure point).
        batch_limit: Max requests coalesced into one batch pass.
        request_timeout_s: Per-request wall-clock budget from enqueue
            to response; exceeded -> ``overload`` reply.
        reconcile_every: Run the incremental-vs-recomputed slack
            reconciliation every N batches (0 disables).
        audit_every: Additionally trial-run every Nth *admitted*
            request through a fresh offline
            :class:`~repro.core.acceptance.AcceptanceTest` and count
            agreement (0 disables; expensive, meant for tests and
            canary deployments).
        store: A :class:`repro.results.ResultStore` audit samples and
            the final drain summary are persisted into (optional; the
            samples become queryable under ``repro web`` /audits).
    """

    def __init__(self, setup: ServiceSetup, obs: ObsLike = NULL_OBS,
                 queue_limit: int = 1024, batch_limit: int = 256,
                 request_timeout_s: float = 5.0,
                 reconcile_every: int = 64,
                 audit_every: int = 0,
                 store=None) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if batch_limit < 1:
            raise ValueError("batch_limit must be >= 1")
        self.setup = setup
        self._obs = obs
        self._queue_limit = queue_limit
        self._batch_limit = batch_limit
        self._timeout = request_timeout_s
        self._reconcile_every = reconcile_every
        self._audit_every = audit_every
        self._store = store
        self.ledgers: Dict[str, SlackLedger] = {
            channel: SlackLedger(tasks, obs=obs, channel=channel)
            for channel, tasks in sorted(setup.channel_tasks.items())
        }
        # The offline reference admission test, held live per channel
        # for sampled audits of the incremental fast path.
        self.acceptance: Dict[str, AcceptanceTest] = {
            channel: AcceptanceTest(tasks)
            for channel, tasks in sorted(setup.channel_tasks.items())
            if len(tasks)
        }
        self.counters: Dict[str, int] = {}
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self._server: Optional[asyncio.base_events.Server] = None
        self._batcher: Optional[asyncio.Task] = None
        self._draining = False
        self._drained = asyncio.Event()
        self._batches = 0
        self._batched_requests = 0

    # -- counters ------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount
        if self._obs.enabled:
            self._obs.inc(name, amount)

    # -- lifecycle -----------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port,
            limit=MAX_LINE_BYTES + 2)
        self._batcher = asyncio.create_task(self._batch_loop())
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    def install_signal_handlers(self) -> None:
        """Drain gracefully on SIGTERM/SIGINT (POSIX event loops)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.stop()))
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    async def stop(self) -> None:
        """Graceful drain: refuse new work, answer the backlog, close."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Wake the batcher so it can observe the drain flag even with
        # an empty queue.
        await self._queue.put(None)
        await self._drained.wait()
        if self._store is not None:
            self._store.record_service_audit(
                self.setup.workload, self.setup.engine_mode, "drain",
                ordinal=self._batches,
                payload={"counters": dict(sorted(self.counters.items())),
                         "batches": self._batches,
                         "batched_requests": self._batched_requests})

    async def wait_closed(self) -> None:
        """Block until a drain completes."""
        await self._drained.wait()

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._count("service.connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._count("service.protocol_errors")
                    writer.write(encode_response(
                        {"status": "error",
                         "reason": "request line too long"}))
                    await writer.drain()
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                response = await self._dispatch(text)
                writer.write(encode_response(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, text: str) -> Dict[str, object]:
        try:
            request = parse_request(text)
        except ProtocolError as error:
            self._count("service.protocol_errors")
            return {"status": "error", "reason": str(error)}
        self._count("service.requests")

        if request.op == "ping":
            return self._reply(request, {"status": "ok"})
        if request.op == "stats":
            return self._reply(request, self._stats_response())
        if request.op == "plan_retransmission":
            return self._reply(request, self._plan_response(request))

        # admit / admit_batch / release are serialized through the
        # batcher.
        if self._draining:
            self._count("service.overload")
            return self._reply(request,
                               {"status": "overload", "reason": "draining"})
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((request, future))
        except asyncio.QueueFull:
            self._count("service.overload")
            self._count("service.queue.rejected")
            return self._reply(request,
                               {"status": "overload",
                                "reason": "queue full"})
        if self._obs.enabled:
            self._obs.set_gauge("service.queue.depth",
                                self._queue.qsize())
        try:
            response = await asyncio.wait_for(future, self._timeout)
        except asyncio.TimeoutError:
            self._count("service.overload")
            self._count("service.timeouts")
            return self._reply(request,
                               {"status": "overload",
                                "reason": "timed out in queue"})
        return self._reply(request, response)

    @staticmethod
    def _reply(request: Request,
               response: Dict[str, object]) -> Dict[str, object]:
        if request.id is not None:
            response = dict(response)
            response["id"] = request.id
        return response

    # -- the batch pass ------------------------------------------------

    async def _batch_loop(self) -> None:
        while True:
            item = await self._queue.get()
            # Yield once: requests arriving in the same event-loop tick
            # get to enqueue and share this batch's slack pass.
            await asyncio.sleep(0)
            batch: List[Tuple[Request, asyncio.Future]] = []
            if item is not None:
                batch.append(item)
            while (len(batch) < self._batch_limit
                   and not self._queue.empty()):
                extra = self._queue.get_nowait()
                if extra is not None:
                    batch.append(extra)
            if batch:
                self._process_batch(batch)
            if self._draining and self._queue.empty():
                self._finish_drain()
                return

    def _finish_drain(self) -> None:
        if self._batcher is not None:
            # Batcher exits right after this call; nothing to cancel.
            self._batcher = None
        if self._reconcile_every:
            # Final incremental-vs-recomputed agreement check: a drain
            # must leave provably consistent books behind.
            self.reconcile()
        self._drained.set()

    def _process_batch(self,
                       batch: List[Tuple[Request, asyncio.Future]]) -> None:
        """One slack-accounting pass over a coalesced batch (no awaits)."""
        self._batches += 1
        self._batched_requests += len(batch)
        self._count("service.batches")
        self._count("service.batch.requests", len(batch))
        if self._obs.enabled:
            self._obs.set_gauge("service.batch.size", len(batch))
        with self._obs.section("service.batch"):
            releases = []
            admits = []  # (Request, response sink)
            for request, future in batch:
                if request.op == "release":
                    releases.append((request, self._future_sink(future)))
                elif request.op == "admit":
                    admits.append((request, self._future_sink(future)))
                else:  # admit_batch: entries join this pass as admits.
                    entries = request.fields["requests"]
                    assert isinstance(entries, list)
                    self._count("service.batch_admit.entries",
                                len(entries))
                    slots: List[Optional[Dict[str, object]]] = (
                        [None] * len(entries))
                    remaining = [len(entries)]
                    for position, entry in enumerate(entries):
                        sink = self._batch_sink(future, slots,
                                                remaining, position)
                        if "invalid" in entry:
                            self._count("service.protocol_errors")
                            sink({"status": "error",
                                  "reason": str(entry["invalid"])})
                            continue
                        sub = Request(op="admit", id=None,
                                      fields=dict(entry))
                        admits.append((sub, sink))
            for request, sink in releases:
                sink(self._release(request))
            admits.sort(key=lambda item: (
                item[0].fields["arrival"], item[0].fields["deadline"],
                str(item[0].fields["name"])))
            # Advance each channel clock once per batch, to the
            # earliest arrival in the batch: expiry reclaims slack
            # before any admission is tested.
            arrivals: Dict[str, int] = {}
            for request, __ in admits:
                channel = str(request.fields["channel"])
                arrival = int(request.fields["arrival"])  # type: ignore[arg-type]
                if channel in self.ledgers:
                    arrivals[channel] = min(
                        arrivals.get(channel, arrival), arrival)
            for channel in sorted(arrivals):
                self.ledgers[channel].advance(arrivals[channel])
            for request, sink in admits:
                sink(self._admit(request))
        if (self._reconcile_every
                and self._batches % self._reconcile_every == 0):
            self.reconcile()

    @staticmethod
    def _resolve(future: asyncio.Future,
                 response: Dict[str, object]) -> None:
        # The connection side may have timed out (and answered
        # overload) while this request waited; never double-resolve.
        if not future.done():
            future.set_result(response)

    @classmethod
    def _future_sink(cls, future: asyncio.Future):
        """Response sink for a single-request queue item."""
        def sink(response: Dict[str, object]) -> None:
            cls._resolve(future, response)
        return sink

    @classmethod
    def _batch_sink(cls, future: asyncio.Future,
                    slots: List[Optional[Dict[str, object]]],
                    remaining: List[int], position: int):
        """Response sink for one ``admit_batch`` entry.

        Entries are processed in the pass's deterministic sorted order
        but answered positionally: ``responses[i]`` is entry ``i``'s
        reply, byte-identical to what it would have received as an
        individual ``admit`` in the same batch.
        """
        def sink(response: Dict[str, object]) -> None:
            slots[position] = response
            remaining[0] -= 1
            if not remaining[0]:
                cls._resolve(future,
                             {"status": "ok", "responses": list(slots)})
        return sink

    def _admit(self, request: Request) -> Dict[str, object]:
        channel = str(request.fields["channel"])
        ledger = self.ledgers.get(channel)
        if ledger is None:
            return {"status": "rejected",
                    "reason": f"unknown channel {channel!r}",
                    "channel": channel}
        name = str(request.fields["name"])
        arrival = int(request.fields["arrival"])  # type: ignore[arg-type]
        execution = int(request.fields["execution"])  # type: ignore[arg-type]
        deadline = int(request.fields["deadline"])  # type: ignore[arg-type]
        ledger.advance(arrival)
        outcome = ledger.admit(name, arrival, execution, deadline)
        if outcome.admitted:
            self._count("service.admits")
            self._maybe_audit(channel, ledger)
        else:
            self._count("service.rejects")
        return {
            "status": "accepted" if outcome.admitted else "rejected",
            "reason": outcome.reason,
            "channel": channel,
            "name": name,
            "arrival": outcome.arrival,
            "deadline": outcome.deadline,
            "window_slack": outcome.window_slack,
        }

    def _release(self, request: Request) -> Dict[str, object]:
        channel = str(request.fields["channel"])
        ledger = self.ledgers.get(channel)
        if ledger is None:
            return {"status": "not_found",
                    "reason": f"unknown channel {channel!r}",
                    "channel": channel}
        name = str(request.fields["name"])
        released = ledger.release(name)
        if released:
            self._count("service.releases")
        return {"status": "released" if released else "not_found",
                "channel": channel, "name": name}

    def _maybe_audit(self, channel: str, ledger: SlackLedger) -> None:
        """Sampled cross-check against the offline acceptance test.

        Every ``audit_every``-th admission replays the channel's whole
        live set through a fresh trial-run
        :class:`~repro.core.acceptance.AcceptanceTest`.  The two tests
        share the capacity model but not the service discipline (the
        ledger serves EDF over guaranteed capacity, the trial runs
        FIFO with exact online slack), so disagreement is *recorded*,
        not asserted -- the counters make the fast path's fidelity
        observable.
        """
        if not self._audit_every:
            return
        admitted = self.counters.get("service.admits", 0)
        if admitted % self._audit_every:
            return
        tasks = self.setup.channel_tasks.get(channel)
        if tasks is None or not len(tasks):
            return
        self._count("service.audit.runs")
        with self._obs.section("service.audit"):
            from repro.core.tasks import AperiodicTask

            reference = AcceptanceTest(tasks)
            agreed = True
            live = 0
            for name, arrival, deadline, execution in ledger.live_tasks():
                # Rebuild the live set as offline aperiodic tasks.
                live += 1
                result = reference.admit(AperiodicTask(
                    name=name, arrival=arrival, execution=execution,
                    deadline=deadline - arrival))
                if not result.admitted:
                    agreed = False
        self._count("service.audit.agreements" if agreed
                    else "service.audit.disagreements")
        if self._store is not None:
            self._store.record_service_audit(
                self.setup.workload, self.setup.engine_mode, "audit",
                ordinal=self.counters.get("service.audit.runs", 0),
                payload={"channel": channel, "agreed": agreed,
                         "live": live, "admitted_total": admitted})

    # -- reconciliation ------------------------------------------------

    def reconcile(self) -> int:
        """Full-recompute reconciliation over every channel ledger.

        Returns:
            Total divergence count (0 on a healthy service).
        """
        divergences = 0
        with self._obs.section("service.reconcile"):
            for channel in sorted(self.ledgers):
                result = self.ledgers[channel].reconcile()
                divergences += len(result.divergences)
                for detail in result.divergences:
                    print(f"repro serve: reconcile divergence on "
                          f"channel {channel}: {detail}", file=sys.stderr)
        self._count("service.reconcile.runs")
        if divergences:
            self._count("service.reconcile.divergence", divergences)
        return divergences

    # -- read-only ops -------------------------------------------------

    def _stats_response(self) -> Dict[str, object]:
        # Built off the documented field tuples so the payload cannot
        # grow a key the contract (and docs/service.md) doesn't list.
        channels = {}
        for channel in sorted(self.ledgers):
            stats = self.ledgers[channel].stats()
            channels[channel] = {field: getattr(stats, field)
                                 for field in CHANNEL_STATUS_FIELDS}
        mean_batch = (self._batched_requests / self._batches
                      if self._batches else 0.0)
        values = {
            "status": "ok",
            "workload": self.setup.workload,
            "tick_us": self.setup.tick_us,
            "engine_mode": self.setup.engine_mode,
            "channels": channels,
            "counters": dict(sorted(self.counters.items())),
            "batches": self._batches,
            "mean_batch_size": round(mean_batch, 3),
            "queue_depth": self._queue.qsize(),
            "queue_limit": self._queue_limit,
            "draining": self._draining,
        }
        return {field: values[field] for field in STATUS_FIELDS}

    def _plan_response(self, request: Request) -> Dict[str, object]:
        messages = request.fields["messages"]
        assert isinstance(messages, dict)
        failure = {name: spec["failure_probability"]
                   for name, spec in messages.items()}
        instances = {name: spec["instances"]
                     for name, spec in messages.items()}
        costs = {name: spec["cost"] for name, spec in messages.items()
                 if "cost" in spec}
        with self._obs.section("service.plan"):
            plan = plan_retransmissions(
                failure, instances, float(request.fields["rho"]),  # type: ignore[arg-type]
                bandwidth_cost=costs or None)
        self._count("service.plans")
        return {
            "status": "ok",
            "feasible": plan.feasible,
            "achieved_probability": plan.achieved_probability,
            "budgets": dict(sorted(plan.budgets.items())),
        }


async def serve_forever(setup: ServiceSetup, host: str = "127.0.0.1",
                        port: int = 8471, obs: ObsLike = NULL_OBS,
                        queue_limit: int = 1024, batch_limit: int = 256,
                        request_timeout_s: float = 5.0,
                        reconcile_every: int = 64,
                        audit_every: int = 0,
                        store=None) -> AdmissionService:
    """Run an admission service until SIGTERM/SIGINT drains it.

    Returns:
        The drained service (its counters are still readable).
    """
    service = AdmissionService(
        setup, obs=obs, queue_limit=queue_limit, batch_limit=batch_limit,
        request_timeout_s=request_timeout_s,
        reconcile_every=reconcile_every, audit_every=audit_every,
        store=store)
    bound_host, bound_port = await service.start(host=host, port=port)
    service.install_signal_handlers()
    print(f"repro serve: listening on {bound_host}:{bound_port} "
          f"(workload {setup.workload}, channels "
          f"{','.join(setup.channels)}, "
          f"horizons {[service.ledgers[c].horizon for c in sorted(service.ledgers)]} ticks)",
          file=sys.stderr, flush=True)
    await service.wait_closed()
    return service
