"""Service configuration: verified cluster -> per-channel task sets.

``repro serve`` does not simulate; it answers admission questions
against the *analysis* view of a cluster: each channel's hard periodic
frames become a deadline-monotonic :class:`~repro.core.tasks.TaskSet`
in integer service ticks, and a :class:`~repro.service.ledger.SlackLedger`
precomputes the guaranteed aperiodic capacity from it.

Loading is gated through :mod:`repro.verify`: the same simulation-free
checks the campaign gate runs (``FRC*`` geometry, ``ANA*`` analysis
rules) must pass before the service will hold the configuration live --
a service should fail at startup, not on request 40,000.

Quantization: one service tick is ``tick_us`` microseconds (default
100 us = 0.1 ms).  A signal's execution demand is its wire size (payload
plus frame overhead) over the channel bit rate, rounded up to whole
ticks; periods, offsets and deadlines round to nearest.  The mapping is
deliberately conservative -- rounding execution up can only under-claim
slack, never over-promise it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.tasks import PeriodicTask, TaskSet
from repro.protocol.backend import get_backend
from repro.protocol.channel import Channel
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.signal import Signal, SignalSet
from repro.timeline.compiler import CompiledRound
from repro.verify import ConfigurationError, verify_experiment
from repro.workloads.acc import acc_signals
from repro.workloads.bbw import bbw_signals
from repro.workloads.sae import sae_aperiodic_signals
from repro.workloads.synthetic import synthetic_signals

__all__ = ["SERVICE_WORKLOADS", "ServiceSetup", "build_channel_task_sets",
           "load_service_setup", "round_task_sets", "signal_to_task"]

#: Workloads ``repro serve`` can hold live.  ``sae`` is the paper's
#: aperiodic study: the synthetic periodic backdrop with SAE-style
#: admission traffic expected from the load generator.
SERVICE_WORKLOADS = ("bbw", "acc", "synthetic", "sae")

#: Default frame overhead in bits (FlexRay header + trailer), matching
#: the ``repro plan`` wire-size convention; other backends pass their
#: geometry's ``frame_overhead_bits`` explicitly.
FRAME_OVERHEAD_BITS = 64

#: Default channel bit rate (FlexRay's 10 Mbit/s); other backends pass
#: their geometry's rate explicitly.
BIT_RATE_BPS = 10_000_000


@dataclass(frozen=True)
class ServiceSetup:
    """Everything a running admission service holds per configuration.

    Attributes:
        workload: Workload name the setup was built from.
        params: The verified cluster configuration.
        tick_us: Service tick length in microseconds.
        channel_tasks: Per-channel hard periodic task sets (ticks).
        verified: Whether the configuration passed the static gate
            (``False`` only when loading with ``verify=False``).
        engine_mode: Simulation engine (``"stepper"``, ``"interpreter"``
            or ``"vectorized"``) any offline replay or spot-check of
            this configuration runs under; advertised in the service's
            status payload so audits reproduce the served setup exactly.
    """

    workload: str
    params: SegmentGeometry
    tick_us: int
    channel_tasks: Dict[str, TaskSet]
    verified: bool
    engine_mode: str = "stepper"

    @property
    def channels(self) -> Tuple[str, ...]:
        """Channel labels, sorted."""
        return tuple(sorted(self.channel_tasks))

    def ticks_per_ms(self) -> float:
        """Service ticks per millisecond."""
        return 1000.0 / self.tick_us


def signal_to_task(signal: Signal, tick_us: int = 100,
                   bit_rate_bps: int = BIT_RATE_BPS,
                   overhead_bits: int = FRAME_OVERHEAD_BITS) -> PeriodicTask:
    """Quantize one periodic signal into a processor-model task.

    Args:
        signal: A periodic (non-aperiodic) signal.
        tick_us: Tick length in microseconds.
        bit_rate_bps: Channel bit rate.
        overhead_bits: Per-frame wire overhead of the protocol.

    Returns:
        A :class:`PeriodicTask` in ticks; execution is the wire time
        rounded *up*, deadline/period/offset rounded to nearest (with
        the task-model constraints re-imposed).
    """
    if signal.aperiodic:
        raise ValueError(f"{signal.name}: aperiodic signals do not map "
                         f"to periodic tasks")
    ticks_per_ms = 1000.0 / tick_us
    wire_bits = signal.size_bits + overhead_bits
    wire_ms = wire_bits * 1000.0 / bit_rate_bps
    execution = max(1, math.ceil(wire_ms * ticks_per_ms))
    period = max(1, round(signal.period_ms * ticks_per_ms))
    deadline = max(execution,
                   min(period, round(signal.deadline_ms * ticks_per_ms)))
    offset = min(period, round(signal.offset_ms * ticks_per_ms))
    return PeriodicTask(name=signal.name, execution=execution,
                        period=period, deadline=deadline, offset=offset)


def build_channel_task_sets(signals: SignalSet, tick_us: int = 100,
                            bit_rate_bps: int = BIT_RATE_BPS,
                            channels: Tuple[str, ...] = ("A", "B"),
                            overhead_bits: int = FRAME_OVERHEAD_BITS,
                            ) -> Dict[str, TaskSet]:
    """Partition periodic signals over channels, balanced by load.

    The cooperative dual-channel idea at analysis altitude: greedy
    longest-processing-time assignment of each signal to the currently
    least-utilized channel, then deadline-monotonic priority order per
    channel.  Deterministic: signals are considered in (utilization,
    name) order, ties broken toward the alphabetically first channel.
    """
    if not channels:
        raise ValueError("need at least one channel")
    tasks = [signal_to_task(s, tick_us, bit_rate_bps, overhead_bits)
             for s in signals if not s.aperiodic]
    ordered = sorted(tasks, key=lambda t: (-t.utilization, t.name))
    load: Dict[str, float] = {c: 0.0 for c in channels}
    assigned: Dict[str, list] = {c: [] for c in channels}
    for task in ordered:
        target = min(sorted(load), key=lambda c: load[c])
        assigned[target].append(task)
        load[target] += task.utilization
    return {
        channel: TaskSet.deadline_monotonic(assigned[channel])
        for channel in sorted(channels)
    }


def round_task_sets(compiled: CompiledRound, tick_us: int = 100,
                    bit_rate_bps: Optional[int] = None) -> Dict[str, TaskSet]:
    """Per-channel task sets read directly from a compiled round.

    The admission service's analysis view and the simulator's execution
    view used to derive the signal->slot mapping independently; both now
    read one :class:`~repro.timeline.compiler.CompiledRound`.  Every
    distinct (channel, slot, frame) assignment of the round becomes one
    periodic task: its period is the frame's repetition in cycles, its
    offset the first transmission window's start, its execution the wire
    time (rounded up -- under-claiming slack is safe, over-promising is
    not), and its deadline implicit (= period; frames must drain before
    their next firing).
    """
    params = compiled.params
    if bit_rate_bps is None:
        bit_rate_bps = int(params.bit_rate_mbps * 1_000_000)
    ticks_per_ms = 1000.0 / tick_us
    mt_per_ms = 1000.0 / params.gd_macrotick_us
    sets: Dict[str, TaskSet] = {}
    for channel in compiled.channels:
        tasks = []
        for cycle in range(compiled.pattern_length):
            for slot_id in compiled.owned_slots(channel, cycle):
                frame = compiled.owner(channel, cycle, slot_id)
                if frame is None or not frame.sends_in_cycle(cycle):
                    continue
                if cycle != frame.base_cycle:
                    continue  # one task per assignment, not per firing
                wire_ms = frame.total_bits * 1000.0 / bit_rate_bps
                execution = max(1, math.ceil(wire_ms * ticks_per_ms))
                period_ms = (frame.cycle_repetition
                             * params.gd_cycle_mt / mt_per_ms)
                period = max(1, round(period_ms * ticks_per_ms))
                offset_mt = (frame.base_cycle * params.gd_cycle_mt
                             + (slot_id - 1) * params.gd_static_slot_mt)
                offset = min(period, round(offset_mt / mt_per_ms
                                           * ticks_per_ms))
                tasks.append(PeriodicTask(
                    name=f"{frame.message_id}@{channel.value}:{slot_id}",
                    execution=execution, period=period,
                    deadline=max(execution, period), offset=offset,
                ))
        sets[channel.value] = TaskSet.deadline_monotonic(tasks)
    return sets


def _workload_signals(workload: str, count: int, seed: int) -> SignalSet:
    if workload == "bbw":
        return bbw_signals()
    if workload == "acc":
        return acc_signals()
    if workload in ("synthetic", "sae"):
        return synthetic_signals(count, seed=seed, max_size_bits=216)
    raise ValueError(f"unknown service workload {workload!r}; "
                     f"expected one of {SERVICE_WORKLOADS}")


def load_service_setup(workload: str = "synthetic", count: int = 20,
                       seed: int = 42, minislots: Optional[int] = None,
                       ber: float = 1e-7,
                       reliability_goal: float = 1 - 1e-4,
                       tick_us: int = 100,
                       verify: bool = True,
                       mapping: str = "signals",
                       engine_mode: str = "stepper",
                       backend: str = "flexray") -> ServiceSetup:
    """Build and statically verify one service configuration.

    Args:
        workload: One of :data:`SERVICE_WORKLOADS`.
        count: Synthetic signal count (synthetic/sae only).
        seed: Synthetic workload seed.
        minislots: Dynamic-segment minislots (default: 50 for the case
            studies, 100 otherwise).
        ber: Bit error rate for the verification gate.
        reliability_goal: rho for the verification gate.
        tick_us: Service tick length in microseconds.
        verify: Run the :func:`repro.verify.verify_experiment` gate
            (raises :class:`~repro.verify.ConfigurationError` on
            errors).  Disable only in tests.
        mapping: ``"signals"`` (default) balances the raw signals over
            channels by load; ``"round"`` packs and schedules the
            signals exactly as the simulator does and reads the task
            sets from the resulting compiled round
            (:func:`round_task_sets`), so the service accounts against
            the *placed* schedule rather than an idealized partition.
        engine_mode: Engine any offline replay of this configuration
            runs under (``"stepper"``, ``"interpreter"`` or
            ``"vectorized"``); validated here so a typo fails at
            startup, and advertised via the status payload.
        backend: Protocol backend name (``repro.protocol.get_backend``);
            selects the geometry the workload is packed against.

    Returns:
        A :class:`ServiceSetup` ready to hand to the server.
    """
    from repro.sim.engine import EngineMode

    if mapping not in ("signals", "round"):
        raise ValueError(f"unknown task mapping {mapping!r}; "
                         f"expected 'signals' or 'round'")
    engine_mode = EngineMode.parse(engine_mode).value
    protocol = get_backend(backend)
    periodic = _workload_signals(workload, count, seed)
    if minislots is None:
        minislots = 50 if workload in ("bbw", "acc") else 100
    if workload in ("bbw", "acc"):
        params = protocol.case_study_params(workload, minislots=minislots)
    else:
        params = protocol.dynamic_preset(minislots)

    if verify:
        aperiodic = sae_aperiodic_signals() if workload == "sae" else None
        report = verify_experiment(params=params, periodic=periodic,
                                   aperiodic=aperiodic, ber=ber,
                                   reliability_goal=reliability_goal)
        if report.has_errors:
            raise ConfigurationError(report)

    if mapping == "round":
        from repro.packing.frame_packing import pack_signals
        from repro.timeline.compiler import compile_round

        packing = pack_signals(periodic, params)
        table = params.build_schedule(packing.static_frames())
        channels = [Channel.A] + ([Channel.B]
                                  if params.channel_count == 2 else [])
        compiled = compile_round(table, params, channels)
        channel_tasks = round_task_sets(compiled, tick_us=tick_us)
    else:
        channel_tasks = build_channel_task_sets(
            periodic, tick_us=tick_us,
            bit_rate_bps=int(params.bit_rate_mbps * 1_000_000),
            overhead_bits=params.frame_overhead_bits,
        )
    return ServiceSetup(workload=workload, params=params, tick_us=tick_us,
                        channel_tasks=channel_tasks, verified=verify,
                        engine_mode=engine_mode)
