"""Compiled communication-round timeline.

The static segment of a FlexRay cluster is strictly periodic: the
64-cycle communication matrix repeats exactly.  This package compiles a
verified schedule into one immutable :class:`~repro.timeline.compiler.CompiledRound`
-- flat integer-macrotick arrays over the full matrix plus derived
idle/slack interval tables -- and provides the
:class:`~repro.timeline.stepper.TimelineStepper` fast path that advances
the simulation cycle-by-cycle over those arrays, falling back to the
per-slot event interpreter only when aperiodic work (retransmissions,
slack stealing, dynamic backlog) might change the outcome.
"""

from repro.timeline.compiler import (
    SEGMENT_DYNAMIC,
    SEGMENT_NIT,
    SEGMENT_STATIC,
    SEGMENT_SYMBOL,
    CompiledRound,
    StaticStep,
    compile_round,
)
from repro.timeline.stepper import TimelineStepper
from repro.timeline.vectorized import VectorizedStepper

__all__ = [
    "CompiledRound",
    "StaticStep",
    "TimelineStepper",
    "VectorizedStepper",
    "compile_round",
    "SEGMENT_STATIC",
    "SEGMENT_DYNAMIC",
    "SEGMENT_SYMBOL",
    "SEGMENT_NIT",
]
