"""Whole-cycle vectorized engine over the compiled round.

The stepper (:mod:`repro.timeline.stepper`) already skips provably-idle
queries, but it still executes each owned step through the interpreter's
slot body -- one fault draw, one trace append, one outcome callback per
transmission -- and it abandons the fast path entirely the moment the
idle proof fails (e.g. CoEfficient's open-loop redundancy copies keep
the retransmission heap non-empty for most of a faulty run).

:class:`VectorizedStepper` batches instead.  Each segment of each cycle
is evaluated in two phases:

- **Phase A (decide):** every policy query of the segment runs in the
  interpreter's exact order -- slot ascending, channels in pair order
  within a slot (static), full per-channel arbitration (dynamic) -- and
  the planned transmissions are collected with their precomputed
  ``[start, end)`` windows.  Physical validation (slot fit, generation
  time) happens here, raising the interpreter's exact errors.
- **Phase B (settle):** fault verdicts are drawn for the whole plan at
  once (one vectorized Bernoulli batch per channel when the oracle
  supports it), the trace records are built and appended with a single
  :meth:`~repro.sim.trace.TraceRecorder.record_batch`, and the outcomes
  are replayed to the policy in interpreter order.

Splitting the phases is sound only when the policy promises, via
:meth:`~repro.protocol.policy.SchedulerPolicy.decisions_are_outcome_free`,
that no phase-A answer reads state phase B mutates.  Open-loop policies
(the paper's Theorem-1 regime) qualify; feedback ARQ does not and runs
on the inherited stepper/interpreter path unchanged.

Batch boundaries
----------------

A batch is one segment of one cycle, and it is cut short -- the engine
delegates to the inherited stepper, and through it the interpreter --
whenever a phase-split precondition fails:

- the policy does not promise outcome-free decisions (feedback mode);
- the dynamic segment with ``gNumberOfMinislots == 0`` (interpreter
  no-op, delegated verbatim).

Host arrivals landing *inside* the static segment window do **not**
force a fallback: they *split* the segment into sub-batches instead.
Each sub-batch covers the slots between two delivery points; its
outcomes are settled (phase B) **before** the next arrival batch is
delivered, so the arrival path observes every prior outcome exactly as
it would under the interpreter -- CoEfficient's promise admission
(``try_promise``) reads the slack ledger that ``on_outcome`` consumes,
and that read now sees the same ledger state on every engine.  Within a
sub-batch no arrival interleaves, so deferring outcomes across it is
covered by the outcome-free promise alone.

The batch geometry itself -- which (channel, slot) pairs are owned, the
action-point offsets, the slot ordering -- comes from the
:class:`~repro.timeline.compiler.CompiledRound` static-step view, whose
agreement with the flat schedule arrays is independently checked by the
FRS113 verification rule (:mod:`repro.verify.round_checks`).

Fault-draw order
----------------

The interpreter consults the fault oracle in slot-major order,
interleaving channels.  The per-channel batches here are draw-order
compatible because every provided injector keeps an independent RNG
stream (and burst state) per channel, so splitting the interleaved
sequence into per-channel subsequences consumes each stream identically
(see :meth:`~repro.faults.injector.TransientFaultInjector.batch`).  An
oracle without a ``batch`` method is consulted scalar-wise in the
interpreter's exact interleaved order, which is correct for *any*
stateful oracle.

The differential-fuzz suite (``tests/sim/test_engine_fuzz.py``) holds
this engine byte-identical, via :func:`~repro.sim.trace.trace_digest`,
to the interpreter oracle across generated scenarios; the equivalence
scenarios in ``tests/sim/test_trace_equivalence.py`` pin the named
corner cases.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.protocol.channel import Channel, ChannelSet
from repro.protocol.cycle import CycleLayout
from repro.protocol.dynamic_segment import DynamicSegmentEngine, DynamicSlotResult
from repro.protocol.frame import PendingFrame, frame_duration_mt
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.policy import SchedulerPolicy
from repro.protocol.static_segment import StaticSegmentEngine
from repro.obs import NULL_OBS, ObsLike
from repro.sim.trace import FrameRecord, TraceRecorder, TransmissionOutcome
from repro.timeline.compiler import CompiledRound
from repro.timeline.stepper import TimelineStepper

__all__ = ["VectorizedStepper"]

Deliver = Callable[[int], None]

#: One planned transmission: (channel, slot_id, start_mt, end_mt, pending).
_Planned = Tuple[Channel, int, int, int, PendingFrame]


class VectorizedStepper(TimelineStepper):
    """Advances cycles with phase-split, batched segment evaluation.

    Args:
        compiled: The policy's compiled round.
        params: Cluster parameters.
        layout: Cycle time geometry.
        channels: The cluster's live channel set.
        policy: The scheduling policy under test.
        static_engine: Interpreter static engine (delegation target).
        dynamic_engine: Interpreter dynamic engine (delegation target).
        next_release_mt: Peek at the earliest undelivered host release.
        corrupts: The cluster's fault oracle; batched per channel when it
            exposes a ``batch`` method, consulted scalar-wise in
            interpreter order otherwise.
        trace: The cluster's trace recorder (batch flush target).
        obs: Observability context for the batch/fallback counters.
    """

    def __init__(
        self,
        compiled: CompiledRound,
        params: SegmentGeometry,
        layout: CycleLayout,
        channels: ChannelSet,
        policy: SchedulerPolicy,
        static_engine: StaticSegmentEngine,
        dynamic_engine: DynamicSegmentEngine,
        next_release_mt: Callable[[], Optional[int]],
        corrupts: Callable[[Channel, int, int], bool],
        trace: TraceRecorder,
        obs: ObsLike = NULL_OBS,
    ) -> None:
        super().__init__(compiled, params, layout, channels, policy,
                         static_engine, dynamic_engine, next_release_mt, obs)
        self._corrupts = corrupts
        self._trace = trace
        self._batch_faults = getattr(corrupts, "batch", None)
        self._duration_memo: Dict[int, int] = {}
        self._pairs = list(channels.pairs())
        #: Segment batches settled through the phase-split path.
        self.vectorized_batches = 0
        #: Cycles with at least one segment delegated to the stepper or
        #: interpreter (feedback mode).
        self.scalar_fallback_cycles = 0
        self._last_fallback_cycle = -1

    # ------------------------------------------------------------------
    # Static segment
    # ------------------------------------------------------------------

    def run_static_segment(self, cycle: int, deliver: Deliver) -> bool:
        """Execute the static segment of ``cycle`` as one batch.

        Returns:
            ``True`` if the segment settled through the phase-split
            batch, otherwise the inherited stepper's verdict.
        """
        policy = self._policy
        if not policy.decisions_are_outcome_free():
            self._note_fallback(cycle)
            return super().run_static_segment(cycle, deliver)
        cycle_start = self._layout.cycle_start(cycle)
        first_action = cycle_start + self._action_offset
        last_action = first_action + (self._n_slots - 1) * self._slot_mt
        release = self._next_release_mt()
        if release is not None and release <= first_action:
            # The interpreter delivers these before slot 1's query, i.e.
            # before any decision of the segment -- safe to flush now.
            deliver(first_action)
            release = self._next_release_mt()
        self._channels.reset_counters()
        if (policy.static_idle_is_noop()
                and (release is None or release > last_action)):
            # No mid-segment arrival can add slack work, so the idle
            # proof holds for the whole segment and only owned steps
            # need queries.
            plan, final_clock = self._plan_static_owned(cycle, cycle_start)
            self._flush(cycle, plan, "static")
        else:
            final_clock = self._run_static_chunked(cycle, cycle_start,
                                                   deliver)
        policy.note_time(final_clock)
        for __, counter in self._pairs:
            counter.jump_to(self._n_slots + 1)
        self.vectorized_batches += 1
        if self._obs.enabled:
            self._obs.inc("engine.vectorized_batches")
        return True

    def _plan_static_owned(self, cycle: int,
                           cycle_start: int) -> Tuple[List[_Planned], int]:
        """Phase A over owned steps only (idle-noop proof in force).

        The idle proof cannot be revoked mid-segment here: only arrivals
        (excluded by the caller) and feedback failures (excluded by the
        outcome-free promise) ever add slack-stealable work, and queries
        only drain it.
        """
        policy = self._policy
        steps = self._round.static_steps(cycle)
        plan: List[_Planned] = []
        last_action = (cycle_start + (self._n_slots - 1) * self._slot_mt
                       + self._action_offset)
        final_clock = last_action
        for step in steps:
            action_point = cycle_start + step.action_offset_mt
            for channel, __ in step.entries:
                pending = policy.static_frame_for(
                    channel, cycle, step.slot_id, action_point)
                if pending is None:
                    final_clock = action_point
                    continue
                end = self._validate_static(pending, step.slot_id,
                                            action_point)
                plan.append((channel, step.slot_id, action_point, end,
                             pending))
                final_clock = end
        if (not steps or steps[-1].slot_id != self._n_slots
                or len(steps[-1].entries) < len(self._pairs)):
            # Mirror the stepper's trailing stamp: the interpreter's last
            # static action would be slot N's idle query.
            final_clock = last_action
        return plan, final_clock

    def _run_static_chunked(self, cycle: int, cycle_start: int,
                            deliver: Deliver) -> int:
        """Dense phase A over every (slot, channel) pair, in sub-batches.

        This is the batch the stepper cannot offer: when retransmission
        or slack-stealing work exists, *every* static query is
        meaningful, so all of them run.  Host arrivals split the segment
        into sub-batches: each pending sub-batch is settled (phase B)
        before the arrivals are delivered at the action point of the
        first slot covering their release -- the interpreter's exact
        interleaving of outcomes and arrivals -- and a new sub-batch
        starts.  Returns the interpreter's end-of-segment policy clock.
        """
        policy = self._policy
        pairs = self._pairs
        plan: List[_Planned] = []
        final_clock = cycle_start + self._action_offset
        action_point = final_clock
        release = self._next_release_mt()
        for slot_id in range(1, self._n_slots + 1):
            if release is not None and release <= action_point:
                # Settle the sub-batch so the arrival path (promise
                # admission, redundancy copies) observes its outcomes.
                self._flush(cycle, plan, "static")
                plan = []
                deliver(action_point)
                release = self._next_release_mt()
            for channel, __ in pairs:
                pending = policy.static_frame_for(
                    channel, cycle, slot_id, action_point)
                if pending is None:
                    final_clock = action_point
                    continue
                end = self._validate_static(pending, slot_id, action_point)
                plan.append((channel, slot_id, action_point, end, pending))
                final_clock = end
            action_point += self._slot_mt
        self._flush(cycle, plan, "static")
        return final_clock

    def _validate_static(self, pending: PendingFrame, slot_id: int,
                         action_point: int) -> int:
        """The interpreter's physical checks, raising its exact errors."""
        duration = self._duration(pending.payload_bits)
        slot_end = action_point - self._action_offset + self._slot_mt
        if action_point + duration > slot_end:
            raise ValueError(
                f"policy bug: frame {pending.message_id} "
                f"({pending.total_bits} bits, {duration} MT) does not fit "
                f"static slot {slot_id} "
                f"({self._params.gd_static_slot_mt} MT)"
            )
        if pending.generation_time_mt > action_point:
            raise ValueError(
                f"policy bug: frame {pending.message_id}#{pending.instance} "
                f"transmitted at t={action_point} before its generation "
                f"at t={pending.generation_time_mt}"
            )
        return action_point + duration

    # ------------------------------------------------------------------
    # Dynamic segment
    # ------------------------------------------------------------------

    def run_dynamic_segment(self, cycle: int, deliver: Deliver) -> bool:
        """Execute the dynamic segment of ``cycle`` as one batch.

        Returns:
            ``True`` unless the segment was delegated to the interpreter
            arbitration loop (feedback mode).
        """
        params = self._params
        dynamic = self._dynamic_engine
        policy = self._policy
        if params.g_number_of_minislots == 0:
            dynamic.execute_cycle(cycle, deliver)
            return True
        segment_start, __ = self._layout.dynamic_segment_window(cycle)
        deliver(segment_start)
        if policy.dynamic_idle_is_noop():
            dynamic.last_cycle_results = []
            queried = min(params.g_number_of_minislots,
                          params.effective_latest_tx)
            policy.note_time(
                self._layout.minislot_start(cycle, queried - 1))
            return True
        if not policy.decisions_are_outcome_free():
            self._note_fallback(cycle)
            dynamic.execute_cycle(cycle, deliver)
            if self._obs.enabled:
                self._obs.inc("engine.heap_events",
                              len(dynamic.last_cycle_results))
            return False
        plan, results, final_clock = self._plan_dynamic(cycle, segment_start)
        dynamic.last_cycle_results = results
        self._flush(cycle, plan, "dynamic")
        if final_clock is not None:
            policy.note_time(final_clock)
        self.vectorized_batches += 1
        if self._obs.enabled:
            self._obs.inc("engine.vectorized_batches")
        return True

    def _plan_dynamic(
        self, cycle: int, segment_start: int,
    ) -> Tuple[List[_Planned], List[DynamicSlotResult], Optional[int]]:
        """Phase A of the minislot-counting arbitration, per channel.

        Mirrors ``DynamicSegmentEngine._arbitrate_channel`` step for
        step -- query gating on pLatestTx, the one-minislot idle charge,
        the hold path -- but collects transmissions instead of settling
        them.  Channel A's queries still precede channel B's (they share
        the policy's pools); only the *outcomes* are deferred, which the
        outcome-free promise makes invisible.
        """
        params = self._params
        policy = self._policy
        latest_tx = params.effective_latest_tx
        first_slot = params.first_dynamic_slot_id
        last_slot = params.last_dynamic_slot_id
        total = params.g_number_of_minislots
        minislot_mt = params.gd_minislot_mt
        action_offset = params.gd_minislot_action_point_offset_mt
        plan: List[_Planned] = []
        results: List[DynamicSlotResult] = []
        final_clock: Optional[int] = None
        for channel, slot_counter in self._pairs:
            slot_counter.jump_to(first_slot)
            elapsed = 0
            slot_id = first_slot
            while elapsed < total and slot_id <= last_slot:
                start_mt = segment_start + elapsed * minislot_mt
                pending: Optional[PendingFrame] = None
                if elapsed < latest_tx:
                    pending = policy.dynamic_frame_for(
                        channel, slot_id, start_mt, total - elapsed)
                    final_clock = start_mt
                if pending is None:
                    elapsed += 1
                    results.append(DynamicSlotResult(
                        channel=channel, slot_id=slot_id, transmitted=False,
                        minislots_consumed=1,
                    ))
                    slot_id += 1
                    continue
                needed = params.minislots_for_bits(pending.payload_bits)
                if needed > total - elapsed:
                    policy.on_dynamic_hold(pending, channel)
                    elapsed += 1
                    results.append(DynamicSlotResult(
                        channel=channel, slot_id=slot_id, transmitted=False,
                        minislots_consumed=1,
                    ))
                    slot_id += 1
                    continue
                action_start = start_mt + action_offset
                end = action_start + self._duration(pending.payload_bits)
                plan.append((channel, slot_id, action_start, end, pending))
                final_clock = end
                elapsed += min(needed, total - elapsed)
                results.append(DynamicSlotResult(
                    channel=channel, slot_id=slot_id, transmitted=True,
                    minislots_consumed=needed, message_id=pending.message_id,
                ))
                slot_id += 1
        return plan, results, final_clock

    # ------------------------------------------------------------------
    # Phase B
    # ------------------------------------------------------------------

    def _flush(self, cycle: int, plan: List[_Planned],
               segment: str) -> None:
        """Settle a segment plan: fault draws, trace batch, outcomes."""
        if not plan:
            return
        verdicts = self._fault_verdicts(plan)
        records = []
        outcomes = []
        for (channel, slot_id, start, end, pending), corrupted \
                in zip(plan, verdicts):
            outcome = (TransmissionOutcome.CORRUPTED if corrupted
                       else TransmissionOutcome.DELIVERED)
            outcomes.append(outcome)
            records.append(FrameRecord(
                message_id=pending.message_id,
                instance=pending.instance,
                channel=channel.value,
                slot_id=slot_id,
                cycle=cycle,
                start=start,
                end=end,
                bits=pending.total_bits,
                payload_bits=pending.payload_bits,
                segment=segment,
                outcome=outcome,
                is_retransmission=pending.is_retransmission,
                generation_time=pending.generation_time_mt,
                deadline=pending.deadline_mt,
                chunk=pending.frame.chunk,
            ))
        self._trace.record_batch(records)
        policy = self._policy
        for (channel, __, ___, end, pending), outcome in zip(plan, outcomes):
            policy.on_outcome(pending, channel, segment, outcome, end)

    def _fault_verdicts(self, plan: List[_Planned]) -> List[bool]:
        """Corruption verdicts for a plan, draw-order exact.

        With a batching injector, the plan is split into per-channel
        subsequences (each channel owns an independent RNG stream, so
        the split consumes every stream exactly as the interpreter's
        interleaved consults would).  Without one, the oracle is called
        scalar-wise in the interpreter's exact order, which is correct
        for arbitrary stateful oracles.
        """
        batch = self._batch_faults
        if batch is None:
            corrupts = self._corrupts
            return [corrupts(channel, pending.total_bits, start)
                    for channel, __, start, ___, pending in plan]
        by_channel: Dict[str, Tuple[Channel, List[int]]] = {}
        for channel, __, ___, ____, pending in plan:
            bucket = by_channel.get(channel.value)
            if bucket is None:
                bucket = by_channel[channel.value] = (channel, [])
            bucket[1].append(pending.total_bits)
        cursors = {
            name: iter(batch(channel, bits_list))
            for name, (channel, bits_list) in by_channel.items()
        }
        return [next(cursors[entry[0].value]) for entry in plan]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _duration(self, payload_bits: int) -> int:
        duration = self._duration_memo.get(payload_bits)
        if duration is None:
            duration = frame_duration_mt(payload_bits, self._params)
            self._duration_memo[payload_bits] = duration
        return duration

    def _note_fallback(self, cycle: int) -> None:
        if cycle != self._last_fallback_cycle:
            self._last_fallback_cycle = cycle
            self.scalar_fallback_cycles += 1
            if self._obs.enabled:
                self._obs.inc("engine.scalar_fallback_cycles")
