"""Round compiler: schedule table -> flat integer timeline arrays.

The 64-cycle FlexRay communication matrix is strictly periodic, so it can
be compiled once instead of re-derived slot by slot at runtime (the
hypercycle-level-reservation idea applied to our simulator).  The
compiler walks one full matrix of a :class:`~repro.protocol.schedule.ScheduleTable`
and emits a :class:`CompiledRound`: parallel tuples of

    (start, end, action, slot id, channel, owner node, frame id, kind)

in integer macroticks -- one entry per *owned* (channel, cycle, slot)
static transmission window plus one entry per cycle for the dynamic
segment, symbol window and NIT -- together with the derived per-cycle
tables the rest of the system reads:

- per-cycle static steps in execution order (the stepper's walk list);
- O(1) slot-owner lookup (replaces repeated ``ScheduleTable.lookup``);
- per-(channel, cycle) structural idle slots with prefix sums (the
  slack supply the selective-slack planner and the admission service
  measure demand against).

The arrays are the authoritative representation: every derived view is
computed from them, so the verifier's round checks
(:mod:`repro.verify.round_checks`) can corrupt the arrays and watch the
inconsistency surface.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.protocol.channel import Channel
from repro.protocol.frame import Frame
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.schedule import ScheduleTable
from repro.obs import NULL_OBS, ObsLike

__all__ = ["CompiledRound", "StaticStep", "RoundEntry", "compile_round",
           "SEGMENT_STATIC", "SEGMENT_DYNAMIC", "SEGMENT_SYMBOL",
           "SEGMENT_NIT", "CYCLES_PER_MATRIX"]

#: Segment-kind codes used in the flat arrays.
SEGMENT_STATIC = 0
SEGMENT_DYNAMIC = 1
SEGMENT_SYMBOL = 2
SEGMENT_NIT = 3

#: The FlexRay communication matrix spans 64 cycles.
CYCLES_PER_MATRIX = 64

#: Channel <-> integer code mapping used in the flat arrays.
CHANNEL_CODES: Dict[Channel, int] = {Channel.A: 0, Channel.B: 1}
_CHANNEL_BY_CODE: Dict[int, Channel] = {
    code: channel for channel, code in CHANNEL_CODES.items()
}


class StaticStep(NamedTuple):
    """One executable static-slot step of a compiled cycle.

    ``entries`` lists the owned ``(channel, frame)`` pairs of the slot in
    channel order (A before B) -- the order the interpreter queries them.
    """

    slot_id: int
    action_offset_mt: int  # within-cycle offset of the action point
    entries: Tuple[Tuple[Channel, Optional[Frame]], ...]


class RoundEntry(NamedTuple):
    """One decoded row of the flat arrays (verification view)."""

    start_mt: int
    end_mt: int
    action_mt: int
    slot_id: int
    channel_code: int
    owner_node: int
    frame_id: int
    segment_kind: int
    frame: Optional[Frame]


class CompiledRound:
    """Immutable compiled form of one full communication matrix.

    All array arguments are parallel sequences with one element per
    timeline entry; they are copied into tuples so the round cannot be
    mutated after construction.  Static entries carry the slot window in
    ``start/end`` and the transmission start in ``action``; the dynamic
    segment, symbol window and NIT appear once per cycle with
    ``slot_id = 0``, ``channel_code = -1`` and ``frame_id = -1``.

    Args:
        params: Cluster configuration the matrix was compiled against.
        channels: Channels included (defines slack-table scope).
        cycle_count: Matrix length in cycles (``lcm(pattern, 64)``).
        pattern_length: Cycles after which the static pattern repeats.
        starts, ends, actions, slot_ids, channel_codes, owner_nodes,
            frame_ids, segment_kinds: The flat arrays.
        frames: Per-entry :class:`Frame` references (``None`` for
            non-static entries, or entirely when verifying a round built
            from raw arrays).
        idle_slots_override: Pre-computed per-channel idle tables,
            ``{channel: [tuple_of_slot_ids, ...]}`` indexed by cycle in
            pattern.  Normally ``None`` (idle tables are derived from
            the owner arrays); the verifier's FRS112 check exists to
            catch an externally supplied table that disagrees.
    """

    def __init__(
        self,
        params: SegmentGeometry,
        channels: Sequence[Channel],
        cycle_count: int,
        pattern_length: int,
        starts: Sequence[int],
        ends: Sequence[int],
        actions: Sequence[int],
        slot_ids: Sequence[int],
        channel_codes: Sequence[int],
        owner_nodes: Sequence[int],
        frame_ids: Sequence[int],
        segment_kinds: Sequence[int],
        frames: Optional[Sequence[Optional[Frame]]] = None,
        idle_slots_override: Optional[
            Dict[Channel, List[Tuple[int, ...]]]] = None,
    ) -> None:
        if cycle_count <= 0:
            raise ValueError(f"cycle_count must be > 0, got {cycle_count}")
        if pattern_length <= 0 or cycle_count % pattern_length != 0:
            raise ValueError(
                f"pattern_length {pattern_length} must divide "
                f"cycle_count {cycle_count}"
            )
        lengths = {len(starts), len(ends), len(actions), len(slot_ids),
                   len(channel_codes), len(owner_nodes), len(frame_ids),
                   len(segment_kinds)}
        if len(lengths) != 1:
            raise ValueError(f"parallel arrays disagree in length: {lengths}")
        self.params = params
        self._channels = tuple(channels)
        self._cycle_count = cycle_count
        self._pattern_length = pattern_length
        self.starts = tuple(int(v) for v in starts)
        self.ends = tuple(int(v) for v in ends)
        self.actions = tuple(int(v) for v in actions)
        self.slot_ids = tuple(int(v) for v in slot_ids)
        self.channel_codes = tuple(int(v) for v in channel_codes)
        self.owner_nodes = tuple(int(v) for v in owner_nodes)
        self.frame_ids = tuple(int(v) for v in frame_ids)
        self.segment_kinds = tuple(int(v) for v in segment_kinds)
        if frames is None:
            self.frames: Tuple[Optional[Frame], ...] = (None,) * len(self.starts)
        else:
            if len(frames) != len(self.starts):
                raise ValueError("frames length disagrees with the arrays")
            self.frames = tuple(frames)
        self._build_owner_maps()
        self._build_static_steps()
        self._build_idle_tables(idle_slots_override)

    # ------------------------------------------------------------------
    # Derived views (computed once from the flat arrays)
    # ------------------------------------------------------------------

    def _build_owner_maps(self) -> None:
        cycle_mt = self.params.gd_cycle_mt
        # owner[channel_code][cycle] -> {slot_id: (frame, owner_node)}
        owners: List[List[Dict[int, Tuple[Optional[Frame], int]]]] = [
            [dict() for __ in range(self._cycle_count)] for __ in range(2)
        ]
        for i, kind in enumerate(self.segment_kinds):
            if kind != SEGMENT_STATIC:
                continue
            code = self.channel_codes[i]
            if code not in (0, 1):
                continue
            cycle = self.starts[i] // cycle_mt
            if not 0 <= cycle < self._cycle_count:
                continue
            owners[code][cycle][self.slot_ids[i]] = (
                self.frames[i], self.owner_nodes[i]
            )
        self._owners = owners

    def _build_static_steps(self) -> None:
        steps: List[Tuple[StaticStep, ...]] = []
        for cycle in range(self._cycle_count):
            per_slot: Dict[int, List[Tuple[Channel, Optional[Frame]]]] = {}
            for code in (0, 1):
                for slot_id, (frame, __) in self._owners[code][cycle].items():
                    per_slot.setdefault(slot_id, []).append(
                        (_CHANNEL_BY_CODE[code], frame)
                    )
            cycle_steps: List[StaticStep] = []
            for slot_id in sorted(per_slot):
                entries = tuple(sorted(
                    per_slot[slot_id], key=lambda pair: pair[0].value
                ))
                action = ((slot_id - 1) * self.params.gd_static_slot_mt
                          + self.params.gd_action_point_offset_mt)
                cycle_steps.append(StaticStep(
                    slot_id=slot_id, action_offset_mt=action,
                    entries=entries,
                ))
            steps.append(tuple(cycle_steps))
        self._static_steps = tuple(steps)

    def _build_idle_tables(
        self,
        override: Optional[Dict[Channel, List[Tuple[int, ...]]]],
    ) -> None:
        total_slots = self.params.g_number_of_static_slots
        slot_mt = self.params.gd_static_slot_mt
        idle: Dict[Channel, List[Tuple[int, ...]]] = {}
        for channel in self._channels:
            code = CHANNEL_CODES.get(channel)
            per_cycle: List[Tuple[int, ...]] = []
            for cycle in range(self._pattern_length):
                if override is not None and channel in override:
                    per_cycle.append(tuple(override[channel][cycle]))
                    continue
                owned = (self._owners[code][cycle]
                         if code is not None else {})
                per_cycle.append(tuple(
                    slot_id for slot_id in range(1, total_slots + 1)
                    if slot_id not in owned
                ))
            idle[channel] = per_cycle
        self._idle = idle
        self._idle_per_cycle_total = [
            sum(len(idle[channel][cycle]) for channel in self._channels)
            for cycle in range(self._pattern_length)
        ]
        # Prefix sums over the pattern: _idle_prefix[k] = idle slots in
        # pattern cycles [0, k), so any cycle window is O(1).
        prefix = [0]
        for cycle_total in self._idle_per_cycle_total:
            prefix.append(prefix[-1] + cycle_total)
        self._idle_prefix = tuple(prefix)
        self._idle_windows: Dict[Channel, List[Tuple[Tuple[int, int], ...]]] = {
            channel: [
                tuple(((slot_id - 1) * slot_mt, slot_id * slot_mt)
                      for slot_id in idle[channel][cycle])
                for cycle in range(self._pattern_length)
            ]
            for channel in self._channels
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.starts)

    @property
    def channels(self) -> Tuple[Channel, ...]:
        """Channels the round was compiled for."""
        return self._channels

    @property
    def cycle_count(self) -> int:
        """Matrix length in cycles."""
        return self._cycle_count

    @property
    def pattern_length(self) -> int:
        """Cycles after which the static pattern repeats."""
        return self._pattern_length

    def entries(self) -> Iterator[RoundEntry]:
        """Decode the flat arrays row by row (verification view)."""
        for i in range(len(self.starts)):
            yield RoundEntry(
                start_mt=self.starts[i], end_mt=self.ends[i],
                action_mt=self.actions[i], slot_id=self.slot_ids[i],
                channel_code=self.channel_codes[i],
                owner_node=self.owner_nodes[i],
                frame_id=self.frame_ids[i],
                segment_kind=self.segment_kinds[i],
                frame=self.frames[i],
            )

    # ------------------------------------------------------------------
    # Static-segment queries (the interpreter/stepper contract)
    # ------------------------------------------------------------------

    def static_steps(self, cycle: int) -> Tuple[StaticStep, ...]:
        """Owned static-slot steps of ``cycle``, in execution order."""
        return self._static_steps[cycle % self._cycle_count]

    def owner(self, channel: Channel, cycle: int,
              slot_id: int) -> Optional[Frame]:
        """Frame owning (channel, cycle, slot), or ``None`` (idle).

        Semantically identical to ``ScheduleTable.lookup`` on the source
        schedule: the repetition patterns divide the matrix length, so
        reducing the cycle modulo the matrix preserves every
        ``fires_in`` decision.
        """
        code = CHANNEL_CODES.get(channel)
        if code is None:
            return None
        entry = self._owners[code][cycle % self._cycle_count].get(slot_id)
        return entry[0] if entry is not None else None

    def owner_node(self, channel: Channel, cycle: int, slot_id: int) -> int:
        """Producer ECU of the owning frame, or ``-1`` (idle)."""
        code = CHANNEL_CODES.get(channel)
        if code is None:
            return -1
        entry = self._owners[code][cycle % self._cycle_count].get(slot_id)
        return entry[1] if entry is not None else -1

    def owned_slots(self, channel: Channel, cycle: int) -> Tuple[int, ...]:
        """Slot IDs with an owner in (channel, cycle), ascending."""
        code = CHANNEL_CODES.get(channel)
        if code is None:
            return ()
        return tuple(sorted(self._owners[code][cycle % self._cycle_count]))

    # ------------------------------------------------------------------
    # Slack-interval queries (the analysis contract)
    # ------------------------------------------------------------------

    def idle_slots(self, channel: Channel, cycle: int) -> Tuple[int, ...]:
        """Structurally idle slot IDs of (channel, cycle)."""
        per_cycle = self._idle.get(channel)
        if per_cycle is None:
            return ()
        return per_cycle[cycle % self._pattern_length]

    def idle_count(self, channel: Channel, cycle: int) -> int:
        """Number of structurally idle slots of (channel, cycle)."""
        return len(self.idle_slots(channel, cycle))

    def idle_slot_windows(self, channel: Channel,
                          cycle: int) -> Tuple[Tuple[int, int], ...]:
        """Within-cycle ``(start, end)`` windows of the idle slots."""
        per_cycle = self._idle_windows.get(channel)
        if per_cycle is None:
            return ()
        return per_cycle[cycle % self._pattern_length]

    def idle_slots_between(self, start_cycle: int, end_cycle: int) -> int:
        """Total idle slots over cycles ``[start, end)``, all channels."""
        if end_cycle < start_cycle:
            raise ValueError(
                f"empty cycle range [{start_cycle}, {end_cycle})"
            )
        pattern = self._pattern_length
        full_patterns, remainder = divmod(end_cycle - start_cycle, pattern)
        total = full_patterns * self._idle_prefix[pattern]
        base = start_cycle % pattern
        if base + remainder <= pattern:
            total += self._idle_prefix[base + remainder] - self._idle_prefix[base]
        else:
            total += self._idle_prefix[pattern] - self._idle_prefix[base]
            total += self._idle_prefix[base + remainder - pattern]
        return total

    def structural_utilization(self) -> float:
        """Fraction of static (slot, cycle, channel) capacity in use."""
        capacity = (self.params.g_number_of_static_slots
                    * self._pattern_length * len(self._channels))
        idle = self._idle_prefix[self._pattern_length]
        return 1.0 - idle / capacity if capacity else 0.0


def _pattern_length_of(table: ScheduleTable) -> int:
    """LCM of all repetitions = the schedule's cycle pattern length."""
    length = 1
    for channel in (Channel.A, Channel.B):
        for assignment in table.assignments(channel):
            repetition = assignment.frame.cycle_repetition
            length = length * repetition // math.gcd(length, repetition)
    return length


def compile_round(table: ScheduleTable, params: SegmentGeometry,
                  channels: Sequence[Channel],
                  obs: ObsLike = NULL_OBS) -> CompiledRound:
    """Compile one full communication matrix of a schedule table.

    Args:
        table: The static schedule (must belong to ``params``).
        params: Cluster configuration.
        channels: Channels to include in the slack tables (the flat
            arrays always carry every assignment of both channels).
        obs: Observability context; compilation is timed under the
            ``timeline.compile`` profiler span.

    Returns:
        An immutable :class:`CompiledRound`.
    """
    with obs.section("timeline.compile"):
        pattern = _pattern_length_of(table)
        cycle_count = (pattern * CYCLES_PER_MATRIX
                       // math.gcd(pattern, CYCLES_PER_MATRIX))
        cycle_mt = params.gd_cycle_mt
        slot_mt = params.gd_static_slot_mt
        action_offset = params.gd_action_point_offset_mt

        starts: List[int] = []
        ends: List[int] = []
        actions: List[int] = []
        slot_ids: List[int] = []
        channel_codes: List[int] = []
        owner_nodes: List[int] = []
        frame_ids: List[int] = []
        segment_kinds: List[int] = []
        frames: List[Optional[Frame]] = []

        def _emit(start: int, end: int, action: int, slot_id: int,
                  code: int, node: int, frame_id: int, kind: int,
                  frame: Optional[Frame]) -> None:
            starts.append(start)
            ends.append(end)
            actions.append(action)
            slot_ids.append(slot_id)
            channel_codes.append(code)
            owner_nodes.append(node)
            frame_ids.append(frame_id)
            segment_kinds.append(kind)
            frames.append(frame)

        assignments = {
            channel: table.assignments(channel)
            for channel in (Channel.A, Channel.B)
        }
        for cycle in range(cycle_count):
            cycle_start = cycle * cycle_mt
            for channel in (Channel.A, Channel.B):
                code = CHANNEL_CODES[channel]
                for assignment in assignments[channel]:
                    frame = assignment.frame
                    if not frame.sends_in_cycle(cycle):
                        continue
                    slot_start = (cycle_start
                                  + (assignment.slot_id - 1) * slot_mt)
                    _emit(
                        start=slot_start,
                        end=slot_start + slot_mt,
                        action=slot_start + action_offset,
                        slot_id=assignment.slot_id,
                        code=code,
                        node=frame.producer_ecu,
                        frame_id=frame.frame_id,
                        kind=SEGMENT_STATIC,
                        frame=frame,
                    )
            dynamic_start = cycle_start + params.static_segment_mt
            dynamic_end = dynamic_start + params.dynamic_segment_mt
            if params.dynamic_segment_mt > 0:
                _emit(dynamic_start, dynamic_end, dynamic_start, 0, -1, -1,
                      -1, SEGMENT_DYNAMIC, None)
            symbol_end = dynamic_end + params.gd_symbol_window_mt
            if params.gd_symbol_window_mt > 0:
                _emit(dynamic_end, symbol_end, dynamic_end, 0, -1, -1, -1,
                      SEGMENT_SYMBOL, None)
            nit_end = cycle_start + cycle_mt
            if nit_end > symbol_end:
                _emit(symbol_end, nit_end, symbol_end, 0, -1, -1, -1,
                      SEGMENT_NIT, None)

        compiled = CompiledRound(
            params=params, channels=channels, cycle_count=cycle_count,
            pattern_length=pattern, starts=starts, ends=ends,
            actions=actions, slot_ids=slot_ids, channel_codes=channel_codes,
            owner_nodes=owner_nodes, frame_ids=frame_ids,
            segment_kinds=segment_kinds, frames=frames,
        )
    if obs.enabled:
        obs.inc("timeline.rounds_compiled")
        obs.set_gauge("timeline.entries", len(compiled))
    return compiled
