"""Compiled-timeline fast path over a :class:`CompiledRound`.

The event interpreter asks the policy one question per (channel, slot)
pair of every cycle -- ~2 x gNumberOfStaticSlots heap-ordered queries per
cycle even when the answer is a foregone conclusion.  The stepper walks
the *compiled* round instead: it executes exactly the owned static steps
and skips the idle (channel, slot) queries whenever the policy proves,
via :meth:`~repro.protocol.policy.SchedulerPolicy.static_idle_is_noop`
and :meth:`~repro.protocol.policy.SchedulerPolicy.dynamic_idle_is_noop`,
that those queries would be side-effect-free ``None``\\ s.

The moment a proof obligation fails -- a retransmission is planned, a
slack-stealable backlog appears, an arrival lands mid-segment and
changes the policy's state -- the stepper falls back to the interpreter
*for the remainder of the segment*, resuming at exactly the slot the
interpreter would next have queried.  Fallback is therefore not an
error path but the correctness anchor: the differential trace tests
(`tests/sim/test_trace_equivalence.py`) prove the two modes
byte-identical, with the interpreter kept as the oracle.

Exactness argument (the invariant each skip preserves):

- The delivery callback's time argument is only a pop threshold; the
  policy never observes it.  Equivalence therefore requires exactly
  that the *set of arrivals delivered before each effective policy
  query* matches the interpreter, which delivers before slot ``s`` all
  arrivals released at or before ``s``'s action point.
- The stepper delivers each arrival batch at the action point of the
  first slot the interpreter would have delivered it at, then re-checks
  the idle-noop proof; if delivery invalidated it, the interpreter
  resumes from that same slot -- the skipped earlier slots were queried
  by the interpreter *before* the delivery, under a proof that they
  answered ``None`` without side effects.
- Within an owned step, every channel that owns the slot runs through
  the interpreter's own slot body
  (:meth:`~repro.protocol.static_segment.StaticSegmentEngine.execute_slot`),
  so records and outcome feedback are produced by the same code in both
  modes; the co-channel's idle query is skipped only while the proof
  still holds (outcome feedback, e.g. a planned retransmission, revokes
  it mid-step).
"""

from __future__ import annotations

from typing import Callable

from repro.protocol.channel import ChannelSet
from repro.protocol.cycle import CycleLayout
from repro.protocol.dynamic_segment import DynamicSegmentEngine
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.policy import SchedulerPolicy
from repro.protocol.static_segment import StaticSegmentEngine
from repro.obs import NULL_OBS, ObsLike
from repro.timeline.compiler import CompiledRound, StaticStep

__all__ = ["TimelineStepper"]

Deliver = Callable[[int], None]


class TimelineStepper:
    """Advances communication cycles over compiled timeline arrays.

    Args:
        compiled: The policy's compiled round.
        params: Cluster parameters.
        layout: Cycle time geometry.
        channels: The cluster's live channel set (slot counters are kept
            consistent with interpreter state across fallbacks).
        policy: The scheduling policy under test.
        static_engine: Interpreter static engine (fallback + slot body).
        dynamic_engine: Interpreter dynamic engine (fallback).
        next_release_mt: Peek at the earliest undelivered host release,
            ``None`` when the sources are exhausted (the cluster's
            arrival multiplexer).
        obs: Observability context for the fast-path/heap split counters.
    """

    def __init__(
        self,
        compiled: CompiledRound,
        params: SegmentGeometry,
        layout: CycleLayout,
        channels: ChannelSet,
        policy: SchedulerPolicy,
        static_engine: StaticSegmentEngine,
        dynamic_engine: DynamicSegmentEngine,
        next_release_mt: Callable[[], int | None],
        obs: ObsLike = NULL_OBS,
    ) -> None:
        self._round = compiled
        self._params = params
        self._layout = layout
        self._channels = channels
        self._policy = policy
        self._static_engine = static_engine
        self._dynamic_engine = dynamic_engine
        self._next_release_mt = next_release_mt
        self._obs = obs
        self._slot_mt = params.gd_static_slot_mt
        self._action_offset = params.gd_action_point_offset_mt
        self._n_slots = params.g_number_of_static_slots

    # ------------------------------------------------------------------
    # Static segment
    # ------------------------------------------------------------------

    def run_static_segment(self, cycle: int, deliver: Deliver) -> bool:
        """Execute the static segment of ``cycle``.

        Returns:
            ``True`` if the whole segment ran on the fast path, ``False``
            if any part fell back to the event interpreter.
        """
        policy = self._policy
        if not policy.static_idle_is_noop():
            self._fallback_static(cycle, deliver, first_slot=1)
            return False

        self._channels.reset_counters()
        cycle_start = self._layout.cycle_start(cycle)
        pos = 1  # first slot whose interpreter query has not yet happened
        for step in self._round.static_steps(cycle):
            action_point = cycle_start + step.action_offset_mt
            resumed = self._deliver_for_window(
                cycle, cycle_start, pos, action_point, deliver)
            if resumed is not None:
                self._fallback_static(cycle, deliver, first_slot=resumed)
                return False
            self._execute_step(cycle, step, action_point)
            pos = step.slot_id + 1
            if not policy.static_idle_is_noop():
                if pos <= self._n_slots:
                    self._fallback_static(cycle, deliver, first_slot=pos)
                    return False
                break
        else:
            # Trailing idle slots: the interpreter still delivers there.
            last_action = (cycle_start + (self._n_slots - 1) * self._slot_mt
                           + self._action_offset)
            resumed = self._deliver_for_window(
                cycle, cycle_start, pos, last_action, deliver)
            if resumed is not None:
                self._fallback_static(cycle, deliver, first_slot=resumed)
                return False
        if any(self._round.owner(channel, cycle, self._n_slots) is None
               for channel, __ in self._channels.pairs()):
            # The interpreter's last static action is the idle query of
            # slot N on the later channel, which stamps the policy clock
            # with that slot's action point; replicate the stamp.
            policy.note_time(cycle_start + (self._n_slots - 1) * self._slot_mt
                             + self._action_offset)
        for __, counter in self._channels.pairs():
            counter.jump_to(self._n_slots + 1)
        return True

    def _deliver_for_window(self, cycle: int, cycle_start: int, pos: int,
                            until_action_mt: int,
                            deliver: Deliver) -> int | None:
        """Deliver arrivals due up to ``until_action_mt``, batch by batch.

        Each batch lands at the action point of the first slot the
        interpreter would have delivered it at; if a batch revokes the
        idle-noop proof, returns the slot the interpreter must resume
        from (``None`` while the fast path may continue).
        """
        policy = self._policy
        while True:
            release = self._next_release_mt()
            if release is None or release > until_action_mt:
                return None
            slot = max(pos, self._first_slot_at_or_after(release - cycle_start))
            slot = min(slot, self._n_slots)
            deliver(cycle_start + (slot - 1) * self._slot_mt
                    + self._action_offset)
            if not policy.static_idle_is_noop():
                return slot

    def _first_slot_at_or_after(self, phase_mt: int) -> int:
        """First slot whose action point is at or after an in-cycle phase."""
        if phase_mt <= self._action_offset:
            return 1
        return (phase_mt - self._action_offset
                + self._slot_mt - 1) // self._slot_mt + 1

    def _execute_step(self, cycle: int, step: StaticStep,
                      action_point: int) -> None:
        """Run one owned static step through the interpreter's slot body."""
        engine = self._static_engine
        policy = self._policy
        compiled = self._round
        for __, counter in self._channels.pairs():
            counter.jump_to(step.slot_id)
        for channel, __ in self._channels.pairs():
            if compiled.owner(channel, cycle, step.slot_id) is not None:
                engine.execute_slot(channel, cycle, step.slot_id, action_point)
            elif not policy.static_idle_is_noop():
                # Outcome feedback on the co-channel revoked the proof
                # (e.g. a retransmission was planned): this idle query is
                # now meaningful, so ask the interpreter's slot body.
                engine.execute_slot(channel, cycle, step.slot_id, action_point)

    def _fallback_static(self, cycle: int, deliver: Deliver,
                         first_slot: int) -> None:
        """Run slots ``first_slot..N`` through the event interpreter."""
        if self._obs.enabled:
            remaining = self._n_slots - first_slot + 1
            self._obs.inc("engine.heap_events",
                          remaining * len(self._channels))
        self._static_engine.execute_cycle(cycle, deliver,
                                          first_slot=first_slot)

    # ------------------------------------------------------------------
    # Dynamic segment
    # ------------------------------------------------------------------

    def run_dynamic_segment(self, cycle: int, deliver: Deliver) -> bool:
        """Execute the dynamic segment of ``cycle``.

        Returns:
            ``True`` if arbitration was provably idle and skipped,
            ``False`` if the interpreter's minislot loop ran.
        """
        dynamic = self._dynamic_engine
        if self._params.g_number_of_minislots == 0:
            dynamic.execute_cycle(cycle, deliver)
            return True
        segment_start, __ = self._layout.dynamic_segment_window(cycle)
        deliver(segment_start)
        if self._policy.dynamic_idle_is_noop():
            dynamic.last_cycle_results = []
            # An idle interpreter walk still queries one dynamic slot per
            # minislot up to the pLatestTx gate; its last query stamps
            # the policy clock with that minislot's start.
            queried = min(self._params.g_number_of_minislots,
                          self._params.effective_latest_tx)
            self._policy.note_time(
                self._layout.minislot_start(cycle, queried - 1))
            return True
        dynamic.execute_cycle(cycle, deliver)
        if self._obs.enabled:
            self._obs.inc("engine.heap_events",
                          len(dynamic.last_cycle_results))
        return False
