"""The shared campaign plan: one JSON file every worker agrees on.

A coordinated campaign is parameterized by a *spec* -- the same scalar
knobs the ``repro campaign`` CLI takes -- rather than by live Python
objects, so any process (or host) sharing the coordination directory
can rebuild the exact experiment configuration from
``<dir>/plan.json`` alone.  The starter writes the plan atomically
(``O_EXCL``); joiners load it and, if they were launched with their own
spec, verify it matches byte-for-byte -- two plans in one directory is
a configuration error, not a race to resolve.

Claim identity is **engine-independent**: ranges are named from the
per-seed :func:`repro.experiments.cache.run_key` (which strips
``engine_mode``), so a joiner running a trace-equivalent engine can
never double-claim a seed range the stepper worker already owns.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from repro.experiments.cache import run_key

__all__ = ["CampaignPlan", "PLAN_FILENAME", "build_experiment_kwargs"]

PLAN_FILENAME = "plan.json"

#: Plan file format version.
PLAN_VERSION = 1


def build_experiment_kwargs(workload: str, count: int, seed: int,
                            aperiodic: int, minislots: int, ber: float,
                            reliability_goal: float, duration_ms: float,
                            engine_mode: str,
                            backend: str = "flexray") -> Dict[str, object]:
    """Rebuild ``run_experiment`` kwargs from scalar spec values.

    Mirrors the ``repro campaign`` CLI's construction exactly -- the
    coordinated equivalence guarantee (reduced result == serial
    ``run_campaign``) depends on both paths building identical
    configurations from identical scalars.
    """
    from repro.protocol.backend import get_backend
    from repro.workloads.acc import acc_signals
    from repro.workloads.bbw import bbw_signals
    from repro.workloads.sae import sae_aperiodic_signals
    from repro.workloads.synthetic import synthetic_signals

    if workload == "bbw":
        periodic = bbw_signals()
    elif workload == "acc":
        periodic = acc_signals()
    elif workload == "synthetic":
        periodic = synthetic_signals(count, seed=seed, max_size_bits=216)
    else:
        raise ValueError(f"unknown workload {workload!r}")
    protocol = get_backend(backend)
    if workload in ("bbw", "acc"):
        params = protocol.case_study_params(workload,
                                            minislots=minislots)
    else:
        params = protocol.dynamic_preset(minislots)
    return dict(
        params=params,
        periodic=periodic,
        aperiodic=(sae_aperiodic_signals(count=aperiodic)
                   if aperiodic > 0 else None),
        ber=ber,
        duration_ms=duration_ms,
        reliability_goal=reliability_goal,
        engine_mode=engine_mode,
    )


@dataclasses.dataclass(frozen=True)
class CampaignPlan:
    """Everything a worker needs to join one coordinated campaign.

    Attributes:
        scheduler: Scheduler registry name.
        workload: ``bbw`` / ``acc`` / ``synthetic``.
        backend: Protocol backend the cluster geometry comes from.
            Part of claim identity (via the params fingerprint): two
            plans differing only in backend never share claims.
        count: Synthetic signal count.
        seed: Workload seed *and* first campaign seed (the CLI's
            ``--seed`` semantics).
        seeds: The explicit seed list, in campaign order.
        aperiodic: SAE aperiodic message count (0 = none).
        minislots: Dynamic-segment minislots.
        ber: Bit error rate.
        reliability_goal: Theorem-1 rho.
        duration_ms: Per-seed simulated duration.
        engine_mode: Engine this worker simulates under.  Excluded
            from claim identity -- see :meth:`range_claims`.
        chunk: Seeds per lease range.
    """

    scheduler: str
    workload: str
    count: int
    seed: int
    seeds: Tuple[int, ...]
    aperiodic: int
    minislots: int
    ber: float
    reliability_goal: float
    duration_ms: float
    engine_mode: str = "stepper"
    chunk: int = 2
    backend: str = "flexray"

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("plan needs at least one seed")
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")

    # -- configuration -------------------------------------------------

    def experiment_kwargs(self) -> Dict[str, object]:
        """The rebuilt ``run_experiment`` kwargs of this plan."""
        return build_experiment_kwargs(
            workload=self.workload, count=self.count, seed=self.seed,
            aperiodic=self.aperiodic, minislots=self.minislots,
            ber=self.ber, reliability_goal=self.reliability_goal,
            duration_ms=self.duration_ms, engine_mode=self.engine_mode,
            backend=self.backend)

    # -- work ranges ---------------------------------------------------

    def ranges(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """Seed ranges of ``chunk`` seeds: ``[(index, seeds), ...]``."""
        grouped = []
        for offset in range(0, len(self.seeds), self.chunk):
            grouped.append((offset // self.chunk,
                            tuple(self.seeds[offset:offset + self.chunk])))
        return grouped

    def range_claims(self) -> List[Tuple[str, int, Tuple[int, ...]]]:
        """Claim names of every range: ``[(claim, index, seeds), ...]``.

        The claim name hashes each seed's engine-independent
        :func:`~repro.experiments.cache.run_key`: two workers whose
        plans differ *only* in ``engine_mode`` (legal -- the engines
        are trace-equivalent by contract) compute identical claims and
        therefore never double-claim a range.
        """
        kwargs = self.experiment_kwargs()
        claims = []
        for index, seeds in self.ranges():
            keys = "|".join(run_key(self.scheduler, seed, kwargs)
                            for seed in seeds)
            digest = hashlib.sha256(keys.encode("ascii")).hexdigest()
            claims.append((f"range-{index:04d}-{digest[:16]}", index,
                           seeds))
        return claims

    # -- JSON round trip -----------------------------------------------

    def to_json(self) -> str:
        payload = dataclasses.asdict(self)
        payload["seeds"] = list(self.seeds)
        payload["version"] = PLAN_VERSION
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("plan file must hold a JSON object")
        version = payload.pop("version", None)
        if version != PLAN_VERSION:
            raise ValueError(f"unsupported plan version {version!r} "
                             f"(expected {PLAN_VERSION})")
        payload["seeds"] = tuple(payload.get("seeds", ()))
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown plan fields {unknown}")
        return cls(**payload)

    def matches(self, other: "CampaignPlan") -> bool:
        """Spec equality *ignoring* engine mode (trace-equivalent)."""
        return (dataclasses.replace(self, engine_mode="stepper")
                == dataclasses.replace(other, engine_mode="stepper"))

    # -- directory protocol --------------------------------------------

    @staticmethod
    def path_in(directory: str) -> str:
        return os.path.join(directory, PLAN_FILENAME)

    def publish(self, directory: str) -> "CampaignPlan":
        """Write this plan into ``directory`` (or adopt the one there).

        The first worker's ``O_EXCL`` write wins; everybody else must
        match it (modulo ``engine_mode``) or the campaign directory is
        misconfigured.  Returns the plan to coordinate under -- the
        published one, with *this* worker's engine mode kept.
        """
        os.makedirs(directory, exist_ok=True)
        path = self.path_in(directory)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            published = self.load(directory)
            if not self.matches(published):
                raise ValueError(
                    f"{path} holds a different campaign plan; refusing "
                    f"to mix configurations in one directory")
            return dataclasses.replace(published,
                                       engine_mode=self.engine_mode)
        with os.fdopen(fd, "w") as handle:
            handle.write(self.to_json())
        return self

    @classmethod
    def load(cls, directory: str) -> "CampaignPlan":
        with open(cls.path_in(directory), "r") as handle:
            return cls.from_json(handle.read())
