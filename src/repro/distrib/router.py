"""The sharded admission front: one router, N shard processes.

Topology::

    clients --JSON lines--> router --admit_batch/forward--> shard 0..N-1

The router owns no ledger.  It rendezvous-hashes every request's
channel (:mod:`repro.distrib.hashing`), coalesces the admits that
arrived in the same event-loop tick into ONE ``admit_batch`` line per
target shard (so a shard pays one parse/future/encode per *batch*, not
per request), splits client-sent ``admit_batch`` requests entry-wise
across owning shards and reassembles the positional replies, forwards
everything else individually, and answers ``ping`` locally.  ``stats``
fans out to every live shard and the pinned ``STATUS_FIELDS`` payload
is re-aggregated key-for-key (:func:`aggregate_stats`), so a sharded
service is drop-in observable.

Lifecycle: shards are spawned before the router accepts connections; a
health loop pings each shard and restarts dead ones with bounded
retries and exponential backoff.  While a shard is down (or its
in-flight window is full) its requests get immediate
``status: overload`` replies -- per-shard backpressure, nothing blocks,
nothing is silently dropped.  SIGTERM drains: stop accepting, wait for
every in-flight dispatch chunk to be answered (the shard connections
stay open until then), SIGTERM every shard, exit.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.distrib.hashing import shard_channels, shard_for
from repro.distrib.shard import ShardProcess, ShardSpec
from repro.obs import NULL_OBS, ObsLike
from repro.service.client import ServiceClient
from repro.service.config import ServiceSetup, load_service_setup
from repro.service.protocol import (
    MAX_BATCH_REQUESTS,
    MAX_LINE_BYTES,
    ProtocolError,
    encode_response,
    parse_request,
)
from repro.service.server import CHANNEL_STATUS_FIELDS, STATUS_FIELDS

__all__ = ["ShardRouter", "aggregate_stats", "serve_sharded"]

#: Upper bound on entries the router packs into one admit_batch line
#: (stays well under MAX_LINE_BYTES for worst-case field widths).
ROUTER_BATCH_LIMIT = 128

#: Max request lines one connection contributes to a single dispatch
#: chunk before the router flushes responses.
CHUNK_LIMIT = 256


def aggregate_stats(setup: ServiceSetup,
                    shard_payloads: Sequence[Dict[str, object]],
                    router_counters: Dict[str, int],
                    queue_limit_fallback: int = 0,
                    draining: bool = False) -> Dict[str, object]:
    """Merge per-shard ``stats`` payloads into one service payload.

    The result carries exactly :data:`~repro.service.server.STATUS_FIELDS`
    -- the same pinned contract the single-process service answers --
    so clients cannot tell (from shape) that they hit a router:

    - ``channels``: union of the shards' channel entries (disjoint by
      construction -- each channel has one owner shard).
    - ``counters``: key-wise sum across shards, plus the router's own
      ``router.*`` counters.
    - ``batches`` / ``queue_depth`` / ``queue_limit``: sums.
    - ``mean_batch_size``: batch-weighted mean across shards.
    - ``draining``: true if the router or any shard is draining.
    """
    channels: Dict[str, Dict[str, object]] = {}
    counters: Dict[str, int] = {}
    batches = 0
    weighted_batch_requests = 0.0
    queue_depth = 0
    queue_limit = 0
    any_draining = draining
    for payload in shard_payloads:
        for channel, entry in sorted(payload.get("channels", {}).items()):  # type: ignore[union-attr]
            channels[channel] = {field: entry[field]
                                 for field in CHANNEL_STATUS_FIELDS}
        for key, value in payload.get("counters", {}).items():  # type: ignore[union-attr]
            counters[key] = counters.get(key, 0) + int(value)
        shard_batches = int(payload.get("batches", 0))  # type: ignore[arg-type]
        batches += shard_batches
        weighted_batch_requests += (
            float(payload.get("mean_batch_size", 0.0)) * shard_batches)  # type: ignore[arg-type]
        queue_depth += int(payload.get("queue_depth", 0))  # type: ignore[arg-type]
        queue_limit += int(payload.get("queue_limit", 0))  # type: ignore[arg-type]
        any_draining = any_draining or bool(payload.get("draining"))
    for key, value in router_counters.items():
        counters[key] = counters.get(key, 0) + value
    values = {
        "status": "ok",
        "workload": setup.workload,
        "tick_us": setup.tick_us,
        "engine_mode": setup.engine_mode,
        "channels": {channel: channels[channel]
                     for channel in sorted(channels)},
        "counters": dict(sorted(counters.items())),
        "batches": batches,
        "mean_batch_size": (round(weighted_batch_requests / batches, 3)
                            if batches else 0.0),
        "queue_depth": queue_depth,
        "queue_limit": queue_limit or queue_limit_fallback,
        "draining": any_draining,
    }
    return {field: values[field] for field in STATUS_FIELDS}


class _ShardLink:
    """The router's live view of one shard: process + connection."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.process = ShardProcess(spec)
        self.client: Optional[ServiceClient] = None
        self.inflight = 0
        self.restarts_left = 0  # set by the router
        self.lock = asyncio.Lock()

    @property
    def index(self) -> int:
        return self.spec.index

    @property
    def available(self) -> bool:
        return self.client is not None


class ShardRouter:
    """Front process of a sharded admission deployment.

    Args:
        setup: The verified configuration (loaded once, in the router,
            from ``setup_kwargs``; shards rebuild it themselves).
        setup_kwargs: Picklable kwargs for
            :func:`~repro.service.config.load_service_setup`, shipped
            to every shard.
        shards: Shard process count (>= 1).
        obs: Observability context for router counters.
        inflight_limit: Per-shard in-flight request window; beyond it
            the router answers ``overload`` immediately (backpressure).
        max_restarts: Restart budget per shard; exhausted -> the shard
            stays down and its requests get ``overload`` replies.
        restart_backoff_s: First restart delay; doubles per retry.
        health_interval_s: Seconds between health-check sweeps.
        request_timeout_s: Router-side budget for one shard round trip.
        queue_limit/batch_limit/reconcile_every: Forwarded to each
            shard's ``AdmissionService``.
    """

    def __init__(self, setup: ServiceSetup,
                 setup_kwargs: Dict[str, object],
                 shards: int,
                 obs: ObsLike = NULL_OBS,
                 inflight_limit: int = 1024,
                 max_restarts: int = 3,
                 restart_backoff_s: float = 0.25,
                 health_interval_s: float = 1.0,
                 request_timeout_s: float = 5.0,
                 queue_limit: int = 1024,
                 batch_limit: int = 256,
                 reconcile_every: int = 64) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if inflight_limit < 1:
            raise ValueError("inflight_limit must be >= 1")
        self.setup = setup
        self._obs = obs
        self._inflight_limit = inflight_limit
        self._max_restarts = max_restarts
        self._restart_backoff_s = restart_backoff_s
        self._health_interval_s = health_interval_s
        self._timeout = request_timeout_s
        self.shard_count = shards
        owned = shard_channels(setup.channels, shards)
        self.links: List[_ShardLink] = []
        for index in range(shards):
            spec = ShardSpec(
                index=index, channels=tuple(owned[index]),
                setup_kwargs=dict(setup_kwargs),
                queue_limit=queue_limit, batch_limit=batch_limit,
                request_timeout_s=request_timeout_s,
                reconcile_every=reconcile_every)
            link = _ShardLink(spec)
            link.restarts_left = max_restarts
            self.links.append(link)
        self._queue_limit = queue_limit
        self.counters: Dict[str, int] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._health_task: Optional[asyncio.Task] = None
        self._draining = False
        self._drained = asyncio.Event()
        self._active_chunks = 0
        self._chunks_done = asyncio.Event()
        self._chunks_done.set()

    # -- counters ------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount
        if self._obs.enabled:
            self._obs.inc(name, amount)

    # -- lifecycle -----------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Spawn every shard, connect, bind the front socket."""
        if self._server is not None:
            raise RuntimeError("router already started")
        loop = asyncio.get_running_loop()
        for link in self.links:
            await loop.run_in_executor(None, link.process.spawn)
        for link in self.links:
            assert link.process.port is not None
            link.client = await ServiceClient.connect(
                "127.0.0.1", link.process.port)
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port,
            limit=MAX_LINE_BYTES + 2)
        self._health_task = asyncio.create_task(self._health_loop())
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    def install_signal_handlers(self) -> None:
        """Drain gracefully on SIGTERM/SIGINT (POSIX event loops)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.stop()))
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    async def stop(self) -> None:
        """Graceful drain: refuse new work, stop shards, close."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        # server.wait_closed() does not wait for active connection
        # handlers on Python < 3.12; in-flight chunks must be answered
        # before the shard links go away.  New requests already get
        # "draining" replies, so this converges.
        try:
            await asyncio.wait_for(self._chunks_done.wait(), self._timeout)
        except asyncio.TimeoutError:  # pragma: no cover - stuck shard
            pass
        loop = asyncio.get_running_loop()
        for link in self.links:
            if link.client is not None:
                await link.client.close()
                link.client = None
            await loop.run_in_executor(None, link.process.terminate)
        self._drained.set()

    async def wait_closed(self) -> None:
        """Block until a drain completes."""
        await self._drained.wait()

    # -- health / restart ----------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self._health_interval_s)
            for link in self.links:
                if self._draining:
                    return
                if await self._healthy(link):
                    continue
                await self._restart(link)

    async def _healthy(self, link: _ShardLink) -> bool:
        if not link.process.is_alive() or link.client is None:
            return False
        try:
            reply = await asyncio.wait_for(
                link.client.ping(), self._health_interval_s)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            return False
        return reply.get("status") == "ok"

    async def _restart(self, link: _ShardLink) -> None:
        """Restart one dead shard (bounded retries, exponential backoff)."""
        async with link.lock:
            if self._draining or await self._healthy(link):
                return
            if link.client is not None:
                await link.client.close()
                link.client = None
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, link.process.terminate)
            while link.restarts_left > 0:
                used = self._max_restarts - link.restarts_left
                link.restarts_left -= 1
                await asyncio.sleep(self._restart_backoff_s * (2 ** used))
                if self._draining:
                    return
                self._count("router.shard_restarts")
                try:
                    link.process = ShardProcess(link.spec)
                    port = await loop.run_in_executor(
                        None, link.process.spawn)
                    link.client = await ServiceClient.connect(
                        "127.0.0.1", port)
                except (RuntimeError, ConnectionError, OSError) as error:
                    print(f"repro serve: shard {link.index} restart "
                          f"failed: {error}", file=sys.stderr, flush=True)
                    await loop.run_in_executor(
                        None, link.process.terminate)
                    continue
                print(f"repro serve: shard {link.index} restarted "
                      f"on port {port}", file=sys.stderr, flush=True)
                return
            self._count("router.shard_abandoned")
            print(f"repro serve: shard {link.index} abandoned after "
                  f"{self._max_restarts} restarts", file=sys.stderr,
                  flush=True)

    # -- shard round trips ---------------------------------------------

    async def _shard_request(self, link: _ShardLink,
                             payload: Dict[str, object]
                             ) -> Dict[str, object]:
        """One forwarded round trip, with backpressure and liveness."""
        if not link.available:
            self._count("router.overload")
            return {"status": "overload",
                    "reason": f"shard {link.index} unavailable"}
        if link.inflight >= self._inflight_limit:
            self._count("router.overload")
            self._count("router.backpressure")
            return {"status": "overload",
                    "reason": f"shard {link.index} backpressure"}
        client = link.client
        assert client is not None
        payload = dict(payload)
        payload.pop("id", None)  # the link client correlates on its own ids
        link.inflight += 1
        try:
            response = await asyncio.wait_for(
                client.request(payload), self._timeout)
        except asyncio.TimeoutError:
            self._count("router.overload")
            self._count("router.shard_timeouts")
            return {"status": "overload",
                    "reason": f"shard {link.index} timed out"}
        except (ConnectionError, OSError):
            self._count("router.overload")
            self._count("router.shard_errors")
            if link.client is client:
                link.client = None  # health loop restarts it
            return {"status": "overload",
                    "reason": f"shard {link.index} unavailable"}
        finally:
            link.inflight -= 1
        response.pop("id", None)
        return response

    # -- client connections --------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._count("router.connections")
        lines: deque = deque()
        arrived = asyncio.Event()
        closed = False

        async def read_loop() -> None:
            nonlocal closed
            try:
                while True:
                    try:
                        line = await reader.readline()
                    except (asyncio.LimitOverrunError, ValueError):
                        lines.append(None)  # line-too-long marker
                        arrived.set()
                        continue
                    if not line:
                        break
                    lines.append(line)
                    arrived.set()
            except (ConnectionResetError, BrokenPipeError):
                pass
            finally:
                closed = True
                arrived.set()

        reader_task = asyncio.create_task(read_loop())
        try:
            while True:
                await arrived.wait()
                arrived.clear()
                # Yield once so every line of the same event-loop tick
                # joins this chunk (mirrors the service batcher).
                await asyncio.sleep(0)
                chunk: List[Optional[bytes]] = []
                while lines and len(chunk) < CHUNK_LIMIT:
                    chunk.append(lines.popleft())
                if chunk:
                    responses = await self._dispatch_chunk(chunk)
                    if responses:
                        writer.writelines(responses)
                        await writer.drain()
                if closed and not lines:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except asyncio.CancelledError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch_chunk(self, chunk: List[Optional[bytes]]
                              ) -> List[bytes]:
        """Route one chunk of request lines; returns ordered replies."""
        self._active_chunks += 1
        self._chunks_done.clear()
        try:
            return await self._route_chunk(chunk)
        finally:
            self._active_chunks -= 1
            if self._active_chunks == 0:
                self._chunks_done.set()

    async def _route_chunk(self, chunk: List[Optional[bytes]]
                           ) -> List[bytes]:
        results: List[Optional[bytes]] = [None] * len(chunk)
        # shard index -> [(chunk position, original id, raw entry)]
        groups: Dict[int, List[Tuple[int, Optional[str], Dict[str, object]]]] = {}
        forwards: List[Tuple[int, Optional[str], int, Dict[str, object]]] = []
        stats_positions: List[Tuple[int, Optional[str]]] = []
        client_batches: List[Tuple[int, Optional[str], List[object]]] = []

        for position, line in enumerate(chunk):
            if line is None:
                self._count("router.protocol_errors")
                results[position] = encode_response(
                    {"status": "error", "reason": "request line too long"})
                continue
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue  # blank lines get no reply, like the service
            self._count("router.requests")
            payload: Optional[Dict[str, object]] = None
            try:
                decoded = json.loads(text)
                if isinstance(decoded, dict):
                    payload = decoded
            except json.JSONDecodeError:
                payload = None
            if payload is None or not isinstance(payload.get("op"), str) \
                    or payload["op"] not in (
                        "admit", "admit_batch", "release",
                        "plan_retransmission", "stats", "ping"):
                # Let the canonical parser produce the canonical error.
                try:
                    parse_request(text)
                    reason = "unroutable request"  # pragma: no cover
                except ProtocolError as error:
                    reason = str(error)
                self._count("router.protocol_errors")
                results[position] = encode_response(
                    {"status": "error", "reason": reason})
                continue
            request_id = payload.get("id")
            if request_id is not None and not isinstance(request_id, str):
                self._count("router.protocol_errors")
                results[position] = encode_response(
                    {"status": "error",
                     "reason": "'id' must be a string when present"})
                continue
            op = payload["op"]
            if op == "ping":
                results[position] = encode_response(
                    self._with_id({"status": "ok"}, request_id))
                continue
            if self._draining:
                self._count("router.overload")
                results[position] = encode_response(self._with_id(
                    {"status": "overload", "reason": "draining"},
                    request_id))
                continue
            if op == "stats":
                stats_positions.append((position, request_id))
                continue
            if op == "admit_batch":
                entries = payload.get("requests")
                if (not isinstance(entries, list) or not entries
                        or len(entries) > MAX_BATCH_REQUESTS):
                    # Let the canonical parser word the canonical error
                    # (no id, exactly like the single-process service).
                    try:
                        parse_request(text)
                        reason = "unroutable request"  # pragma: no cover
                    except ProtocolError as error:
                        reason = str(error)
                    self._count("router.protocol_errors")
                    results[position] = encode_response(
                        {"status": "error", "reason": reason})
                    continue
                client_batches.append((position, request_id, entries))
                continue
            if op == "admit":
                channel = payload.get("channel")
                name = payload.get("name", request_id)
                entry = {
                    "channel": channel,
                    "arrival": payload.get("arrival"),
                    "execution": payload.get("execution"),
                    "deadline": payload.get("deadline"),
                }
                if name is not None:
                    entry["name"] = name
                shard = (shard_for(channel, self.shard_count)
                         if isinstance(channel, str) else 0)
                groups.setdefault(shard, []).append(
                    (position, request_id, entry))
                continue
            if op == "release":
                channel = payload.get("channel")
                shard = (shard_for(channel, self.shard_count)
                         if isinstance(channel, str) else 0)
            else:  # plan_retransmission: stateless, any shard works
                shard = 0
            forwards.append((position, request_id, shard, payload))

        waiters = []
        for shard, items in sorted(groups.items()):
            link = self.links[shard]
            for offset in range(0, len(items), ROUTER_BATCH_LIMIT):
                waiters.append(self._run_group(
                    link, items[offset:offset + ROUTER_BATCH_LIMIT],
                    results))
        for position, request_id, shard, payload in forwards:
            waiters.append(self._run_forward(
                self.links[shard], position, request_id, payload,
                results))
        for position, request_id, entries in client_batches:
            waiters.append(self._run_client_batch(
                position, request_id, entries, results))
        for position, request_id in stats_positions:
            waiters.append(self._run_stats(position, request_id, results))
        if waiters:
            await asyncio.gather(*waiters)
        return [response for response in results if response is not None]

    @staticmethod
    def _with_id(response: Dict[str, object],
                 request_id: Optional[str]) -> Dict[str, object]:
        if request_id is not None:
            response = dict(response)
            response["id"] = request_id
        return response

    async def _run_group(self, link: _ShardLink,
                         items: List[Tuple[int, Optional[str],
                                           Dict[str, object]]],
                         results: List[Optional[bytes]]) -> None:
        """One admit_batch round trip; distribute positional replies."""
        self._count("router.batches")
        self._count("router.batched_admits", len(items))
        entries = [entry for __, __, entry in items]
        reply = await self._shard_request(
            link, {"op": "admit_batch", "requests": entries})
        responses = reply.get("responses")
        if (reply.get("status") == "ok" and isinstance(responses, list)
                and len(responses) == len(items)):
            for (position, request_id, __), response in zip(items,
                                                            responses):
                results[position] = encode_response(
                    self._with_id(response, request_id))
        else:
            # Shard-level failure (overload/timeout/down): every entry
            # gets the same verdict.
            for position, request_id, __ in items:
                results[position] = encode_response(
                    self._with_id(dict(reply), request_id))

    async def _run_client_batch(self, position: int,
                                request_id: Optional[str],
                                entries: List[object],
                                results: List[Optional[bytes]]) -> None:
        """Split one client admit_batch across owning shards.

        Each entry is routed to its channel's rendezvous shard (entries
        the shard will reject as malformed go anywhere -- shard 0 words
        the canonical positional error), the sub-batches run
        concurrently, and the replies are reassembled in entry order so
        the client sees exactly the single-process contract:
        ``{"status": "ok", "responses": [...]}`` with ``responses[i]``
        answering entry ``i``.  A sub-batch whose shard is down/
        overloaded yields that shard's verdict for each of its entries
        without poisoning the entries owned by healthy shards.
        """
        self._count("router.client_batches")
        groups: Dict[int, List[Tuple[int, object]]] = {}
        for index, entry in enumerate(entries):
            channel = (entry.get("channel")
                       if isinstance(entry, dict) else None)
            shard = (shard_for(channel, self.shard_count)
                     if isinstance(channel, str) else 0)
            groups.setdefault(shard, []).append((index, entry))
        responses: List[Optional[Dict[str, object]]] = [None] * len(entries)

        async def run_sub(link: _ShardLink,
                          items: List[Tuple[int, object]]) -> None:
            reply = await self._shard_request(
                link, {"op": "admit_batch",
                       "requests": [entry for __, entry in items]})
            sub = reply.get("responses")
            if (reply.get("status") == "ok" and isinstance(sub, list)
                    and len(sub) == len(items)):
                for (index, __), response in zip(items, sub):
                    responses[index] = response
            else:
                for index, __ in items:
                    responses[index] = dict(reply)

        waiters = []
        for shard, items in sorted(groups.items()):
            link = self.links[shard]
            for offset in range(0, len(items), ROUTER_BATCH_LIMIT):
                waiters.append(run_sub(
                    link, items[offset:offset + ROUTER_BATCH_LIMIT]))
        await asyncio.gather(*waiters)
        results[position] = encode_response(self._with_id(
            {"status": "ok", "responses": responses}, request_id))

    async def _run_forward(self, link: _ShardLink, position: int,
                           request_id: Optional[str],
                           payload: Dict[str, object],
                           results: List[Optional[bytes]]) -> None:
        self._count("router.forwards")
        reply = await self._shard_request(link, payload)
        results[position] = encode_response(
            self._with_id(reply, request_id))

    async def _run_stats(self, position: int, request_id: Optional[str],
                         results: List[Optional[bytes]]) -> None:
        self._count("router.stats")
        payloads = []
        for link in self.links:
            reply = (await self._shard_request(link, {"op": "stats"})
                     if link.available else None)
            if reply is not None and reply.get("status") == "ok":
                payloads.append(reply)
            else:
                # Missing channels in the merge are attributable.
                self._count("router.stats_shards_down")
        merged = aggregate_stats(
            self.setup, payloads, dict(self.counters),
            queue_limit_fallback=self.shard_count * self._queue_limit,
            draining=self._draining)
        results[position] = encode_response(
            self._with_id(merged, request_id))


async def serve_sharded(setup_kwargs: Dict[str, object],
                        shards: int,
                        host: str = "127.0.0.1", port: int = 8471,
                        obs: ObsLike = NULL_OBS,
                        queue_limit: int = 1024, batch_limit: int = 256,
                        request_timeout_s: float = 5.0,
                        reconcile_every: int = 64,
                        inflight_limit: int = 1024,
                        max_restarts: int = 3,
                        restart_backoff_s: float = 0.25,
                        health_interval_s: float = 1.0) -> ShardRouter:
    """Run a sharded admission service until SIGTERM/SIGINT drains it.

    The router loads (and thereby verifies) the setup once; each shard
    child rebuilds it from the same kwargs and restricts itself to its
    owned channels.

    Returns:
        The drained router (its counters are still readable).
    """
    setup = load_service_setup(**setup_kwargs)  # type: ignore[arg-type]
    router = ShardRouter(
        setup, setup_kwargs, shards, obs=obs,
        inflight_limit=inflight_limit, max_restarts=max_restarts,
        restart_backoff_s=restart_backoff_s,
        health_interval_s=health_interval_s,
        request_timeout_s=request_timeout_s,
        queue_limit=queue_limit, batch_limit=batch_limit,
        reconcile_every=reconcile_every)
    bound_host, bound_port = await router.start(host=host, port=port)
    router.install_signal_handlers()
    print(f"repro serve: listening on {bound_host}:{bound_port} "
          f"(workload {setup.workload}, shards {shards}, channels "
          f"{','.join(setup.channels)})",
          file=sys.stderr, flush=True)
    await router.wait_closed()
    return router
