"""Lease files: atomic work claims over a shared directory.

The campaign coordinator needs exactly one primitive: *at most one
live worker believes it owns a work item*.  POSIX gives it to us
without a server:

- **Claim** = ``O_CREAT | O_EXCL`` creation of ``<name>.lease`` --
  atomic on every local filesystem and on NFSv3+.
- **Heartbeat** = a background thread touching every held lease's
  mtime; a worker that dies (even via SIGKILL) simply stops touching.
- **Stale takeover** = a lease whose mtime is older than
  ``stale_after_s`` may be stolen: the thief ``rename``\\ s it to a
  unique tombstone (two racing thieves cannot both win a rename of the
  same inode -- the loser gets ENOENT), unlinks the tombstone, then
  claims fresh via ``O_EXCL`` again.  A live owner's lease is never
  unlinked: release verifies ownership first.

The protocol is safe but not lock-perfect: a worker paused longer than
``stale_after_s`` (not dead, just slow) can lose its lease and both
workers then run the same seeds.  The substrate makes that benign --
cache writes are atomic last-write-wins of identical content and store
ingest is idempotent -- so a double claim costs wasted work, never
wrong results.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional

__all__ = ["LeaseDirectory"]


def _sanitize(text: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "-._" else "-"
                   for ch in text)


class LeaseDirectory:
    """Claims over named work items, backed by one shared directory.

    Args:
        root: Lease directory (created if missing); every cooperating
            worker must use the same path (a shared filesystem is the
            only coordination substrate).
        worker_id: This worker's identity, written into claimed leases
            and verified before release.
        heartbeat_s: Interval of the mtime-touch thread.
        stale_after_s: Age beyond which an untouched lease is presumed
            dead and may be taken over.  Must comfortably exceed
            ``heartbeat_s`` (a 3x margin is enforced).

    Use as a context manager to run the heartbeat thread::

        with LeaseDirectory(root, "worker-1") as leases:
            if leases.acquire("range-0003"):
                ...
                leases.release("range-0003")
    """

    def __init__(self, root: str, worker_id: str,
                 heartbeat_s: float = 1.0,
                 stale_after_s: float = 6.0) -> None:
        if heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        if stale_after_s < 3 * heartbeat_s:
            raise ValueError(
                f"stale_after_s ({stale_after_s}) must be >= 3x "
                f"heartbeat_s ({heartbeat_s}); a slow heartbeat would "
                f"look dead")
        self.root = root
        self.worker_id = worker_id
        self.heartbeat_s = heartbeat_s
        self.stale_after_s = stale_after_s
        os.makedirs(root, exist_ok=True)
        self._held: Dict[str, str] = {}  # name -> path
        self._mutex = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Takeovers this worker performed (observability for tests).
        self.takeovers = 0
        #: Held leases that vanished underneath us (we were presumed
        #: dead and taken over); work continues, results stay correct.
        self.lost = 0

    # -- paths ---------------------------------------------------------

    def path_for(self, name: str) -> str:
        return os.path.join(self.root, f"{_sanitize(name)}.lease")

    # -- claim / release -----------------------------------------------

    def acquire(self, name: str) -> bool:
        """Claim ``name``; takes over a stale lease.  True on success."""
        path = self.path_for(name)
        if self._try_create(name, path):
            return True
        try:
            stat = os.stat(path)
        except FileNotFoundError:
            # Released between our O_EXCL failure and the stat: retry.
            return self._try_create(name, path)
        if time.time() - stat.st_mtime < self.stale_after_s:
            return False  # held and fresh elsewhere
        # Stale: rename to a unique tombstone.  Exactly one racing
        # thief wins the rename; losers get FileNotFoundError.
        tombstone = (f"{path}.tomb.{_sanitize(self.worker_id)}."
                     f"{os.urandom(4).hex()}")
        try:
            # Re-check staleness immediately before the rename: a rival
            # thief may have completed its takeover (tombstone + fresh
            # O_EXCL recreate) since our first stat, and renaming that
            # *live* lease would hand the same range to two workers.
            if time.time() - os.stat(path).st_mtime < self.stale_after_s:
                return False  # revived underneath us
            os.rename(path, tombstone)
        except FileNotFoundError:
            return False  # somebody else took it over (or released it)
        try:
            os.unlink(tombstone)
        except FileNotFoundError:  # pragma: no cover - nothing shares it
            pass
        claimed = self._try_create(name, path)
        if claimed:
            self.takeovers += 1
        return claimed

    def _try_create(self, name: str, path: str) -> bool:
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            json.dump({"worker": self.worker_id, "pid": os.getpid()},
                      handle)
        with self._mutex:
            self._held[name] = path
        return True

    def release(self, name: str) -> None:
        """Drop a held lease -- only if it is still ours.

        If the lease was taken over while we were presumed dead, the
        file now belongs to the thief and is left untouched.
        """
        with self._mutex:
            path = self._held.pop(name, None)
        if path is None:
            return
        if self.owner(name) == self.worker_id:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

    def owner(self, name: str) -> Optional[str]:
        """Worker id currently holding ``name`` (None when unheld)."""
        try:
            with open(self.path_for(name), "r") as handle:
                payload = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        worker = payload.get("worker") if isinstance(payload, dict) \
            else None
        return worker if isinstance(worker, str) else None

    def held(self) -> List[str]:
        """Names this worker currently believes it holds."""
        with self._mutex:
            return sorted(self._held)

    # -- heartbeat -----------------------------------------------------

    def refresh(self) -> None:
        """Touch every held lease's mtime (one heartbeat)."""
        with self._mutex:
            held = list(self._held.items())
        for name, path in held:
            try:
                os.utime(path)
            except FileNotFoundError:
                # Taken over while we were slow; note it and move on.
                self.lost += 1
                with self._mutex:
                    self._held.pop(name, None)

    def start_heartbeat(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()

        def beat() -> None:
            while not self._stop.wait(self.heartbeat_s):
                self.refresh()

        self._thread = threading.Thread(
            target=beat, name=f"lease-heartbeat-{self.worker_id}",
            daemon=True)
        self._thread.start()

    def stop_heartbeat(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "LeaseDirectory":
        self.start_heartbeat()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop_heartbeat()
