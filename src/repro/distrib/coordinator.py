"""Multi-process campaign coordination over a shared directory.

Protocol (everything under one coordination directory)::

    plan.json      the agreed spec (plan.py; O_EXCL first-writer-wins)
    leases/        per-range lease files (lease.py; heartbeat mtimes)
    cache/         content-addressed seed cache (experiments/cache.py)
    done/          per-range done markers (atomic temp+replace)
    results.db     shared SQLite result store (idempotent ingest)

Workers scan the plan's seed ranges in order: a range with a done
marker is finished, a range with a fresh foreign lease is someone
else's, anything else gets claimed (taking over stale leases of
crashed workers).  A claimed range runs seed by seed through the exact
:func:`repro.experiments.campaign._execute_seed` path the in-process
pool uses, publishing each completed seed into the shared cache (and
its run row into the shared store) *before* the range's done marker is
written -- so a worker SIGKILLed mid-range loses only its unpublished
seeds, and its successor resumes from the cache.

The reducer is deliberately boring: once every range is done, it calls
:func:`repro.experiments.campaign.run_campaign` over the warm cache.
Every seed hits, zero simulations run, and the merge is the same
seed-ordered deterministic merge the serial path uses -- byte-identical
results by construction, not by re-implementation.

A worker may join with a different (trace-equivalent) engine mode than
the plan's.  Claims are engine-independent (see
:meth:`repro.distrib.plan.CampaignPlan.range_claims`), so it never
double-claims; its cache entries live under its own engine's key
(cache keys include the engine mode by design), while its store rows
converge onto the same engine-free run ids.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import tempfile
import time
from typing import Dict, Optional, Tuple

from repro.distrib.lease import LeaseDirectory
from repro.distrib.plan import CampaignPlan
from repro.experiments.cache import CampaignCache
from repro.experiments.campaign import (
    CampaignResult,
    _execute_seed,
    _SeedTask,
    run_campaign,
)
from repro.obs import NULL_OBS, ObsLike

__all__ = ["KILL_AFTER_SEEDS_ENV", "WorkerReport", "coordinate_campaign",
           "reduce_campaign", "run_worker"]

#: Crash-injection hook: when set to N, the worker SIGKILLs itself
#: after completing N seeds -- a *real* hard kill (no cleanup, no
#: lease release), which is exactly what the takeover tests need.
KILL_AFTER_SEEDS_ENV = "REPRO_COORD_KILL_AFTER_SEEDS"

CACHE_DIRNAME = "cache"
LEASES_DIRNAME = "leases"
DONE_DIRNAME = "done"
RESULTS_DBNAME = "results.db"


@dataclasses.dataclass
class WorkerReport:
    """What one worker process contributed to a coordinated campaign."""

    worker_id: str
    ranges_completed: int = 0
    seeds_simulated: int = 0
    cache_hits: int = 0
    takeovers: int = 0
    leases_lost: int = 0

    def row(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def _done_path(directory: str, claim: str) -> str:
    return os.path.join(directory, DONE_DIRNAME, f"{claim}.json")


def _write_done(directory: str, claim: str, index: int,
                seeds: Tuple[int, ...], worker_id: str) -> None:
    """Atomically publish one range's done marker (temp + replace)."""
    path = _done_path(directory, claim)
    payload = {"claim": claim, "range": index, "seeds": list(seeds),
               "worker": worker_id}
    fd, temp_path = tempfile.mkstemp(dir=os.path.dirname(path),
                                     suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def run_worker(plan: CampaignPlan, directory: str, worker_id: str,
               heartbeat_s: float = 1.0, stale_after_s: float = 6.0,
               poll_s: float = 0.25, timeout_s: Optional[float] = None,
               obs: ObsLike = NULL_OBS,
               record_runs: bool = True) -> WorkerReport:
    """Claim, run and publish seed ranges until none remain.

    Returns when every range of the plan has a done marker.  Raises
    :class:`TimeoutError` when ``timeout_s`` elapses with unfinished
    ranges this worker cannot claim (held fresh by someone else who
    never finishes).
    """
    kwargs = plan.experiment_kwargs()
    cache = CampaignCache(os.path.join(directory, CACHE_DIRNAME), obs=obs)
    os.makedirs(os.path.join(directory, DONE_DIRNAME), exist_ok=True)
    claims = plan.range_claims()
    report = WorkerReport(worker_id=worker_id)
    kill_after_text = os.environ.get(KILL_AFTER_SEEDS_ENV)
    kill_after = int(kill_after_text) if kill_after_text else None
    seeds_done = 0
    deadline = (time.monotonic() + timeout_s
                if timeout_s is not None else None)

    store = None
    if record_runs:
        from repro.results import ResultStore

        store = ResultStore(os.path.join(directory, RESULTS_DBNAME),
                            obs=obs)
    leases = LeaseDirectory(
        os.path.join(directory, LEASES_DIRNAME), worker_id,
        heartbeat_s=heartbeat_s, stale_after_s=stale_after_s)
    try:
        with leases:
            while True:
                progress = False
                remaining = 0
                for claim, index, seeds in claims:
                    if os.path.exists(_done_path(directory, claim)):
                        continue
                    remaining += 1
                    if not leases.acquire(claim):
                        continue
                    if os.path.exists(_done_path(directory, claim)):
                        # Finished by a presumed-dead worker that was
                        # merely slow; nothing left to do here.
                        leases.release(claim)
                        continue
                    progress = True
                    try:
                        for seed in seeds:
                            key = cache.key_for(plan.scheduler, seed,
                                                kwargs)
                            entry = cache.load(key, need_obs=True)
                            if entry is None:
                                result, snapshot = _execute_seed(
                                    _SeedTask(
                                        index=index, seed=seed,
                                        attempt=0,
                                        scheduler=plan.scheduler,
                                        collect_obs=True,
                                        crash_attempts=0,
                                        experiment_kwargs=dict(kwargs)))
                                cache.store(key, result, snapshot)
                                report.seeds_simulated += 1
                            else:
                                result = entry.result
                                report.cache_hits += 1
                            if store is not None:
                                store.record_run(result, seed, kwargs)
                            seeds_done += 1
                            if (kill_after is not None
                                    and seeds_done >= kill_after):
                                os.kill(os.getpid(), signal.SIGKILL)
                        _write_done(directory, claim, index, seeds,
                                    worker_id)
                        report.ranges_completed += 1
                    finally:
                        leases.release(claim)
                if remaining == 0:
                    break
                if not progress:
                    if (deadline is not None
                            and time.monotonic() > deadline):
                        raise TimeoutError(
                            f"worker {worker_id}: {remaining} ranges "
                            f"still unfinished after {timeout_s}s")
                    time.sleep(poll_s)
    finally:
        if store is not None:
            store.close()
    report.takeovers = leases.takeovers
    report.leases_lost = leases.lost
    return report


def reduce_campaign(plan: CampaignPlan, directory: str,
                    obs: ObsLike = NULL_OBS,
                    record_campaign: bool = True) -> CampaignResult:
    """Deterministic reduce: a warm-cache ``run_campaign`` over DIR.

    Every completed seed cache-hits, so this runs zero simulations and
    performs exactly the seed-ordered merge the serial path performs --
    summaries, counters and snapshots byte-identical to
    ``run_campaign(workers=1)`` on the same plan.  A seed missing from
    the cache (worker crashed before publishing and nobody resumed) is
    simply simulated here; correctness never depends on worker health.
    """
    kwargs = plan.experiment_kwargs()
    return run_campaign(
        plan.scheduler, list(plan.seeds), obs=obs,
        cache_dir=os.path.join(directory, CACHE_DIRNAME),
        store=(os.path.join(directory, RESULTS_DBNAME)
               if record_campaign else None),
        store_workload=plan.workload,
        **kwargs)


def coordinate_campaign(directory: str,
                        plan: Optional[CampaignPlan] = None,
                        join: bool = False,
                        worker_id: Optional[str] = None,
                        heartbeat_s: float = 1.0,
                        stale_after_s: float = 6.0,
                        poll_s: float = 0.25,
                        timeout_s: Optional[float] = None,
                        plan_wait_s: float = 30.0,
                        obs: ObsLike = NULL_OBS,
                        ) -> Tuple[Optional[CampaignResult], WorkerReport]:
    """Run one coordinated-campaign participant to completion.

    Args:
        directory: The shared coordination directory.
        plan: This participant's spec.  Required unless joining; a
            joiner passing its own spec must match the published plan
            (modulo engine mode).
        join: Join an existing campaign as an extra worker: contribute
            until no ranges remain, then return *without* reducing
            (the coordinating process reduces).
        worker_id: Stable identity for leases (default: host-pid).
        heartbeat_s/stale_after_s/poll_s/timeout_s: Lease/scan knobs,
            see :func:`run_worker`.
        plan_wait_s: How long a plan-less joiner waits for plan.json.
        obs: Observability context (reducer side).

    Returns:
        ``(campaign, report)`` -- ``campaign`` is ``None`` for joiners.

    Re-running the coordinator over a finished (or crashed) directory
    converges: done ranges are skipped, missing seeds re-run, and the
    reduce is repeatable (cache hits all the way down).
    """
    if worker_id is None:
        import socket

        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    if plan is not None:
        plan = plan.publish(directory)
    elif join:
        waited = 0.0
        while not os.path.exists(CampaignPlan.path_in(directory)):
            if waited >= plan_wait_s:
                raise FileNotFoundError(
                    f"no {CampaignPlan.path_in(directory)} after "
                    f"{plan_wait_s}s; is the coordinating process up?")
            time.sleep(poll_s)
            waited += poll_s
        plan = CampaignPlan.load(directory)
    else:
        raise ValueError("coordinate_campaign needs a plan unless "
                         "joining an existing campaign")

    report = run_worker(
        plan, directory, worker_id, heartbeat_s=heartbeat_s,
        stale_after_s=stale_after_s, poll_s=poll_s, timeout_s=timeout_s,
        obs=obs)
    if join:
        return None, report
    return reduce_campaign(plan, directory, obs=obs), report
