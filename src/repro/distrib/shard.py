"""Shard child processes of the sharded admission service.

Each shard is a full :class:`~repro.service.server.AdmissionService`
restricted to the channels rendezvous hashing assigned to it: its own
:class:`~repro.service.ledger.SlackLedger` per owned channel, its own
request batcher, its own reconciliation loop.  Shards are spawned (not
forked -- the router runs a live event loop) from a picklable kwargs
spec, rebuild the verified setup themselves, bind an ephemeral port on
loopback and report it back through a pipe.  Lifecycle is plain POSIX:
SIGTERM drains a shard exactly like the single-process service.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import sys
from typing import Dict, List, Optional

from repro.service.config import ServiceSetup, load_service_setup

__all__ = ["ShardProcess", "ShardSpec", "restrict_setup"]

#: Seconds a freshly spawned shard gets to import, verify its setup,
#: bind and report its port before the spawn counts as failed.
SPAWN_TIMEOUT_S = 60.0


def restrict_setup(setup: ServiceSetup,
                   channels: List[str]) -> ServiceSetup:
    """A copy of ``setup`` holding only the given channels' task sets.

    A shard owning no channels is legal (more shards than channels):
    it serves an empty ledger map and rejects every admit as unknown.
    """
    unknown = sorted(set(channels) - set(setup.channel_tasks))
    if unknown:
        raise ValueError(f"unknown channels {unknown}; "
                         f"setup has {sorted(setup.channel_tasks)}")
    return dataclasses.replace(
        setup,
        channel_tasks={channel: setup.channel_tasks[channel]
                       for channel in sorted(channels)})


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """Everything needed to (re)spawn one shard, picklable.

    Attributes:
        index: Shard index (stable across restarts; the rendezvous
            hash routes on it).
        channels: Channel labels this shard owns.
        setup_kwargs: Keyword arguments for
            :func:`~repro.service.config.load_service_setup`; the
            child rebuilds the setup itself so nothing non-picklable
            crosses the process boundary.
        queue_limit/batch_limit/request_timeout_s/reconcile_every:
            Passed straight to the shard's ``AdmissionService``.
    """

    index: int
    channels: tuple
    setup_kwargs: Dict[str, object]
    queue_limit: int = 1024
    batch_limit: int = 256
    request_timeout_s: float = 5.0
    reconcile_every: int = 64


def _shard_main(spec: ShardSpec, conn) -> None:
    """Child entry point: serve the restricted setup until SIGTERM."""
    import asyncio

    from repro.service.server import AdmissionService

    try:
        setup = load_service_setup(**spec.setup_kwargs)  # type: ignore[arg-type]
        setup = restrict_setup(setup, list(spec.channels))
    except Exception as error:  # noqa: BLE001 - report, then die
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        raise SystemExit(1) from error

    async def main() -> None:
        service = AdmissionService(
            setup,
            queue_limit=spec.queue_limit,
            batch_limit=spec.batch_limit,
            request_timeout_s=spec.request_timeout_s,
            reconcile_every=spec.reconcile_every)
        host, port = await service.start(host="127.0.0.1", port=0)
        service.install_signal_handlers()
        conn.send(("ready", port))
        conn.close()
        print(f"repro shard {spec.index}: listening on {host}:{port} "
              f"(channels {','.join(spec.channels) or '-'})",
              file=sys.stderr, flush=True)
        await service.wait_closed()

    asyncio.run(main())


class ShardProcess:
    """Handle on one spawned shard child.

    ``spawn()`` blocks until the child reports its bound port (or
    fails); the router calls it from an executor thread so restarts do
    not stall the event loop.
    """

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.port: Optional[int] = None
        self._process: Optional[multiprocessing.Process] = None

    def spawn(self, timeout_s: float = SPAWN_TIMEOUT_S) -> int:
        """Start the child; returns the bound port.

        Raises:
            RuntimeError: When the child fails setup or does not report
                a port within ``timeout_s``.
        """
        if self._process is not None:
            raise RuntimeError(f"shard {self.spec.index} already spawned")
        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_shard_main, args=(self.spec, child_conn),
            name=f"repro-shard-{self.spec.index}", daemon=True)
        process.start()
        child_conn.close()
        self._process = process
        try:
            if not parent_conn.poll(timeout_s):
                raise RuntimeError(
                    f"shard {self.spec.index}: no port report within "
                    f"{timeout_s:.0f}s")
            status, value = parent_conn.recv()
        except (EOFError, OSError) as error:
            self.terminate()
            raise RuntimeError(
                f"shard {self.spec.index}: died during spawn") from error
        finally:
            parent_conn.close()
        if status != "ready":
            self.terminate()
            raise RuntimeError(f"shard {self.spec.index}: {value}")
        self.port = int(value)
        return self.port

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def is_alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def terminate(self, grace_s: float = 5.0) -> None:
        """SIGTERM (graceful drain), escalate to SIGKILL after grace."""
        process = self._process
        if process is None:
            return
        if process.is_alive() and process.pid is not None:
            try:
                os.kill(process.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        process.join(grace_s)
        if process.is_alive():
            process.kill()
            process.join(1.0)
        self._process = None
        self.port = None
