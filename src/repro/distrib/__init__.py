"""Distributed execution: sharded admission and coordinated campaigns.

Two pillars, one package:

- **Sharded admission** (:mod:`repro.distrib.router`,
  :mod:`repro.distrib.shard`, :mod:`repro.distrib.hashing`): ``repro
  serve --shards N`` puts a thin asyncio router in front of N shard
  processes.  Rendezvous hashing on the channel id gives every channel
  exactly one owner shard; the router coalesces same-tick admits into
  one ``admit_batch`` line per shard and re-aggregates the pinned
  ``stats`` contract.
- **Coordinated campaigns** (:mod:`repro.distrib.plan`,
  :mod:`repro.distrib.lease`, :mod:`repro.distrib.coordinator`):
  ``repro campaign --coordinate DIR`` lets any number of worker
  processes (or hosts sharing DIR) claim seed ranges via lease files,
  publish results through the content-addressed seed cache and the
  SQLite result store, and reduce deterministically -- byte-identical
  to the in-process ``run_campaign(workers=)`` pool.
"""

from repro.distrib.hashing import (
    shard_channels,
    shard_for,
    shard_map,
    shard_score,
)
from repro.distrib.lease import LeaseDirectory
from repro.distrib.plan import CampaignPlan
from repro.distrib.router import ShardRouter, aggregate_stats, serve_sharded
from repro.distrib.shard import ShardProcess, ShardSpec, restrict_setup

__all__ = [
    "CampaignPlan",
    "LeaseDirectory",
    "ShardProcess",
    "ShardRouter",
    "ShardSpec",
    "aggregate_stats",
    "coordinate_campaign",
    "restrict_setup",
    "serve_sharded",
    "shard_channels",
    "shard_for",
    "shard_map",
    "shard_score",
]


def __getattr__(name):  # lazy: coordinator pulls in experiments/results
    if name == "coordinate_campaign":
        from repro.distrib.coordinator import coordinate_campaign
        return coordinate_campaign
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
