"""Rendezvous (highest-random-weight) channel -> shard hashing.

The sharding router must send every request for a channel to the one
shard whose ledger owns that channel, and the mapping must be stable
across router restarts and machines (no coordination, no state files).
Rendezvous hashing gives both: each (channel, shard) pair gets a
deterministic score from a salted SHA-256 digest and the channel lives
on its highest-scoring shard.  Changing the shard count moves only the
channels whose top shard changed -- there is no modulo reshuffle.

Scores hash arbitrary channel strings, so even a request for a channel
no shard actually owns routes deterministically (the chosen shard then
answers ``rejected: unknown channel`` exactly like the single-process
service would).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List

__all__ = ["SHARD_HASH_SALT", "shard_channels", "shard_for", "shard_map",
           "shard_score"]

#: Salt pinning the hash domain; part of the wire-visible contract
#: (tests/distrib/test_hashing.py pins golden mappings against it).
SHARD_HASH_SALT = "repro-shard"


def shard_score(channel: str, shard: int) -> int:
    """Deterministic 64-bit rendezvous score of one (channel, shard)."""
    if shard < 0:
        raise ValueError(f"shard index must be >= 0, got {shard}")
    text = f"{SHARD_HASH_SALT}|{channel}|{shard}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def shard_for(channel: str, shards: int) -> int:
    """The shard owning ``channel`` in a ``shards``-wide deployment."""
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    best = 0
    best_score = -1
    for shard in range(shards):
        score = shard_score(channel, shard)
        # Ties (cryptographically negligible) break toward the lower
        # shard index, deterministically.
        if score > best_score:
            best = shard
            best_score = score
    return best


def shard_map(channels: Iterable[str], shards: int) -> Dict[str, int]:
    """Owner shard of every channel, as a dict."""
    return {channel: shard_for(channel, shards)
            for channel in sorted(channels)}


def shard_channels(channels: Iterable[str],
                   shards: int) -> List[List[str]]:
    """Channels grouped by owning shard (index ``i`` -> shard ``i``)."""
    owned: List[List[str]] = [[] for __ in range(shards)]
    for channel, shard in sorted(shard_map(channels, shards).items()):
        owned[shard].append(channel)
    return owned
