"""Structured event-hook bus.

A hook is a named, schema-light event ("slack.promise", "engine.dispatch"
...) carrying a flat field dict.  Subscribers are observation-only: the
bus hands them the field dict and ignores anything they return, and by
contract they must not mutate simulation state -- the determinism
property tests verify that attaching subscribers leaves event sequences
and counter values byte-identical.

Emission cost when nobody listens is one attribute read and one ``if``
(the bus keeps a ``has_subscribers`` flag), and call sites in truly hot
loops additionally guard on ``obs.enabled`` so the disabled-observability
path never even builds the field dict.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = ["HookBus", "HookRecorder"]

#: Subscriber signature: (event_name, fields) -> None.
HookSubscriber = Callable[[str, Mapping[str, object]], None]


class HookBus:
    """Dispatches named events to per-event and wildcard subscribers."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[HookSubscriber]] = {}
        self._wildcard: List[HookSubscriber] = []
        self.has_subscribers = False

    def subscribe(self, event: str, subscriber: HookSubscriber) -> None:
        """Listen to one event name.  Subscribers run in subscription order."""
        self._subscribers.setdefault(event, []).append(subscriber)
        self.has_subscribers = True

    def subscribe_all(self, subscriber: HookSubscriber) -> None:
        """Listen to every event (tracing / JSONL capture)."""
        self._wildcard.append(subscriber)
        self.has_subscribers = True

    def emit(self, event: str, fields: Mapping[str, object]) -> None:
        """Dispatch one event.  No-op without subscribers."""
        if not self.has_subscribers:
            return
        for subscriber in self._subscribers.get(event, ()):
            subscriber(event, fields)
        for subscriber in self._wildcard:
            subscriber(event, fields)


class HookRecorder:
    """A subscriber that records every event it sees (tests, exports).

    Attach with ``bus.subscribe_all(recorder)`` or per event with
    ``bus.subscribe(name, recorder)``.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        self.events: List[Tuple[str, Dict[str, object]]] = []
        self._limit = limit

    def __call__(self, event: str, fields: Mapping[str, object]) -> None:
        if self._limit is not None and len(self.events) >= self._limit:
            return
        self.events.append((event, dict(fields)))

    def __len__(self) -> int:
        return len(self.events)

    def names(self) -> List[str]:
        """Event names in emission order."""
        return [name for name, __ in self.events]

    def of(self, event: str) -> List[Dict[str, object]]:
        """Field dicts of one event name, in emission order."""
        return [fields for name, fields in self.events if name == event]
