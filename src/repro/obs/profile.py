"""Wall-clock section profiler for the ``--profile`` CLI flag.

Answers "where does simulation wall-clock time go?" with named,
re-entrant-safe accumulating sections.  Timing data is wall clock and
therefore excluded from deterministic snapshots; it rides in the
``timers`` section of exports.
"""

from __future__ import annotations

import time
from typing import Dict, List

__all__ = ["Profiler", "format_profile"]


class _Section:
    """Context manager timing one ``with`` block into the profiler."""

    __slots__ = ("_profiler", "_name", "_start_ns")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start_ns = 0

    def __enter__(self) -> "_Section":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.observe_ns(
            self._name, time.perf_counter_ns() - self._start_ns
        )


class Profiler:
    """Accumulates per-section wall-clock time."""

    def __init__(self) -> None:
        self._totals_ns: Dict[str, int] = {}
        self._counts: Dict[str, int] = {}

    def section(self, name: str) -> _Section:
        """Time a ``with`` block under ``name`` (sections may repeat)."""
        return _Section(self, name)

    def observe_ns(self, name: str, elapsed_ns: int) -> None:
        self._totals_ns[name] = self._totals_ns.get(name, 0) + elapsed_ns
        self._counts[name] = self._counts.get(name, 0) + 1

    def total_ns(self, name: str) -> int:
        return self._totals_ns.get(name, 0)

    def merge(self, sections: Dict[str, Dict[str, int]]) -> None:
        """Fold another profiler's snapshot into this one (totals add)."""
        for name, data in sections.items():
            self._totals_ns[name] = (self._totals_ns.get(name, 0)
                                     + data["total_ns"])
            self._counts[name] = self._counts.get(name, 0) + data["count"]

    def rows(self) -> List[Dict[str, object]]:
        """Per-section rows sorted by total time, descending."""
        rows = []
        for name in sorted(self._totals_ns,
                           key=lambda n: -self._totals_ns[n]):
            total_ns = self._totals_ns[name]
            count = self._counts[name]
            rows.append({
                "section": name,
                "calls": count,
                "total_ms": total_ns / 1e6,
                "mean_us": total_ns / count / 1e3 if count else 0.0,
            })
        return rows

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """JSON-ready per-section totals (wall clock; non-deterministic)."""
        return {name: {"count": self._counts[name],
                       "total_ns": self._totals_ns[name]}
                for name in sorted(self._totals_ns)}


def format_profile(profiler: Profiler) -> str:
    """Human-readable profile table for terminal output."""
    rows = profiler.rows()
    if not rows:
        return "(no profile sections recorded)"
    lines = [f"{'section':<40s} {'calls':>10s} {'total_ms':>12s} "
             f"{'mean_us':>12s}"]
    for row in rows:
        lines.append(
            f"{row['section']:<40s} {row['calls']:>10d} "
            f"{row['total_ms']:>12.3f} {row['mean_us']:>12.2f}"
        )
    return "\n".join(lines)
