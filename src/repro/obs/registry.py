"""Lightweight metric primitives: counters, gauges, timers, registry.

Design constraints, in order of importance:

1. **Determinism-safe.**  Counters and gauges are pure functions of the
   simulation's decisions -- never of wall-clock time -- so two replays
   of the same seed produce byte-identical counter snapshots.  Wall
   clock lives only in :class:`TimerMetric`, which the snapshot keeps in
   a separate section exactly so determinism checks can ignore it.

2. **Cheap.**  A counter increment is one dict lookup plus an integer
   add; hot paths that cannot afford even that are guarded by
   ``obs.enabled`` at the call site (see :mod:`repro.obs.observability`).

3. **Flat, dotted names.**  ``engine.dispatch.CYCLE_START`` rather than
   nested objects: snapshots serialize trivially and tests can assert on
   names without walking a tree.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["CounterMetric", "GaugeMetric", "TimerMetric", "MetricsRegistry"]


class CounterMetric:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (negative increments are a caller bug)."""
        self.value += amount


class GaugeMetric:
    """A point-in-time value; also tracks the maximum ever set."""

    __slots__ = ("name", "value", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.maximum = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.maximum:
            self.maximum = value


class TimerMetric:
    """Accumulated wall-clock time of one named operation.

    Timers are *not* part of the deterministic state: two identical
    replays will disagree on nanoseconds.  Snapshots therefore carry
    timers in their own section.
    """

    __slots__ = ("name", "count", "total_ns", "max_ns")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0

    def observe_ns(self, elapsed_ns: int) -> None:
        self.count += 1
        self.total_ns += elapsed_ns
        if elapsed_ns > self.max_ns:
            self.max_ns = elapsed_ns

    @property
    def mean_us(self) -> float:
        """Mean observation in microseconds (0 when never observed)."""
        if self.count == 0:
            return 0.0
        return self.total_ns / self.count / 1000.0


class MetricsRegistry:
    """Create-or-get store of named metrics.

    Names are dotted strings; the registry does not interpret them
    beyond sorting snapshots for stable output.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, CounterMetric] = {}
        self._gauges: Dict[str, GaugeMetric] = {}
        self._timers: Dict[str, TimerMetric] = {}

    # -- create-or-get -------------------------------------------------

    def counter(self, name: str) -> CounterMetric:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = CounterMetric(name)
        return metric

    def gauge(self, name: str) -> GaugeMetric:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = GaugeMetric(name)
        return metric

    def timer(self, name: str) -> TimerMetric:
        metric = self._timers.get(name)
        if metric is None:
            metric = self._timers[name] = TimerMetric(name)
        return metric

    # -- convenience write paths ---------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe_ns(self, name: str, elapsed_ns: int) -> None:
        self.timer(name).observe_ns(elapsed_ns)

    def merge_counters(self, prefix: str, values: Mapping[str, float]) -> None:
        """Bulk-import a plain counter dict under ``prefix.``.

        Integer values become counters, anything else a gauge -- this is
        how policy-internal ``counters`` dicts and planner stats join the
        registry without the hot paths touching it.
        """
        for key, value in values.items():
            name = f"{prefix}.{key}" if prefix else key
            if isinstance(value, bool) or not isinstance(value, int):
                self.gauge(name).set(float(value))
            else:
                self.counter(name).inc(value)

    def merge_snapshot(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold a registry snapshot (or a subset of one) into this registry.

        The merge is the moral equivalent of replaying the source
        registry's writes after this registry's own: counters add,
        gauges take the incoming last-written value and the maximum of
        both maxima, timers accumulate counts/totals and keep the larger
        peak.  Merging per-seed snapshots in seed order therefore leaves
        exactly the totals a single shared registry would have seen.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, data in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.value = data["value"]
            if data["max"] > gauge.maximum:
                gauge.maximum = data["max"]
        for name, data in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.count += data["count"]
            timer.total_ns += data["total_ns"]
            if data["max_ns"] > timer.max_ns:
                timer.max_ns = data["max_ns"]

    # -- read paths ----------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Current value of a counter (0 if never touched)."""
        metric = self._counters.get(name)
        return metric.value if metric is not None else 0

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """All counters whose name starts with ``prefix``."""
        return {name: metric.value
                for name, metric in sorted(self._counters.items())
                if name.startswith(prefix)}

    def snapshot(self) -> Dict[str, Dict]:
        """Full, sorted, JSON-ready state.

        ``counters`` and ``gauges`` are deterministic; ``timers`` are
        wall-clock and must be excluded from replay comparisons.
        """
        return {
            "counters": {name: metric.value
                         for name, metric in sorted(self._counters.items())},
            "gauges": {name: {"value": metric.value,
                              "max": metric.maximum}
                       for name, metric in sorted(self._gauges.items())},
            "timers": {name: {"count": metric.count,
                              "total_ns": metric.total_ns,
                              "max_ns": metric.max_ns}
                       for name, metric in sorted(self._timers.items())},
        }

    def deterministic_snapshot(self) -> Dict[str, Dict]:
        """Counters and gauges only -- the replay-comparable subset."""
        full = self.snapshot()
        return {"counters": full["counters"], "gauges": full["gauges"]}
