"""The observability facade: registry + hook bus + profiler in one handle.

Every instrumented component takes one of these (or the shared
:data:`NULL_OBS` no-op).  The contract that keeps instrumentation free
when unused:

- ``NULL_OBS.enabled`` is ``False`` and every method is a no-op, so a
  guarded call site (``if obs.enabled: ...``) costs one attribute read;
- an enabled :class:`Observability` records counters/gauges (pure
  simulation state, deterministic across replays), timers (wall clock,
  excluded from determinism checks) and emits hook events;
- hook subscribers are observation-only; attaching them must never
  change counters or the simulated event sequence (property-tested).
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Union

from repro.obs.hooks import HookBus
from repro.obs.profile import Profiler
from repro.obs.registry import MetricsRegistry

__all__ = ["Observability", "NullObservability", "NULL_OBS", "ObsLike"]


class Observability:
    """Live observability context (see module docstring)."""

    enabled = True

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.hooks = HookBus()
        self.profiler = Profiler()

    # -- metrics -------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment a counter."""
        self.registry.inc(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge (max is tracked automatically)."""
        self.registry.set_gauge(name, value)

    def observe_ns(self, name: str, elapsed_ns: int) -> None:
        """Record one wall-clock observation into a timer."""
        self.registry.observe_ns(name, elapsed_ns)

    def merge_counters(self, prefix: str,
                       values: Mapping[str, float]) -> None:
        """Bulk-import a plain counter dict (see the registry)."""
        self.registry.merge_counters(prefix, values)

    # -- hooks ---------------------------------------------------------

    def emit(self, event: str, **fields: object) -> None:
        """Emit a structured hook event."""
        self.hooks.emit(event, fields)

    # -- profiling -----------------------------------------------------

    def section(self, name: str):
        """Profile a ``with`` block under ``name``."""
        return self.profiler.section(name)

    def now_ns(self) -> int:
        """Wall-clock nanoseconds (indirection point for tests)."""
        return time.perf_counter_ns()

    # -- isolation -----------------------------------------------------

    def child(self) -> "Observability":
        """A fresh, isolated context for one sub-run (e.g. one seed).

        The child shares nothing with its parent; capture it into an
        :class:`~repro.obs.snapshot.ObsSnapshot` when the sub-run ends
        and ``apply_to`` the parent to fold the totals back in.
        """
        return Observability()

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Registry snapshot plus profiler sections."""
        data = self.registry.snapshot()
        data["profile"] = self.profiler.snapshot()
        return data

    def deterministic_snapshot(self) -> Dict[str, Dict]:
        """The replay-comparable subset (counters and gauges only)."""
        return self.registry.deterministic_snapshot()


class _NullSection:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SECTION = _NullSection()


class NullObservability:
    """The disabled observability context: every operation is a no-op.

    A single shared instance (:data:`NULL_OBS`) is the default for all
    instrumented components; hot paths check ``obs.enabled`` and skip
    instrumentation entirely.
    """

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe_ns(self, name: str, elapsed_ns: int) -> None:
        return None

    def merge_counters(self, prefix: str,
                       values: Mapping[str, float]) -> None:
        return None

    def emit(self, event: str, **fields: object) -> None:
        return None

    def child(self) -> "NullObservability":
        """Disabled contexts have disabled children."""
        return self

    def section(self, name: str) -> _NullSection:
        return _NULL_SECTION

    def now_ns(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "timers": {}, "profile": {}}

    def deterministic_snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}}


#: Shared no-op context -- the default everywhere.
NULL_OBS = NullObservability()

#: What instrumented components accept: a live context or the no-op.
ObsLike = Union[Observability, NullObservability]
