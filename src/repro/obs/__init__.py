"""Observability: counters, gauges, timers, hook events, JSONL export.

The subsystem has four layers, assembled by the
:class:`~repro.obs.observability.Observability` facade:

- :mod:`repro.obs.registry` -- metric primitives and the registry;
- :mod:`repro.obs.hooks` -- the structured event-hook bus;
- :mod:`repro.obs.profile` -- the wall-clock section profiler;
- :mod:`repro.obs.export` -- the JSONL snapshot exporter;
- :mod:`repro.obs.snapshot` -- mergeable, picklable per-run snapshots
  (how campaigns isolate per-seed contexts and fold them back together).

Instrumented components default to :data:`~repro.obs.NULL_OBS`, the
shared no-op context, and guard hot-path instrumentation behind
``obs.enabled`` so disabled observability costs one attribute read.
See ``docs/observability.md`` for the hook API and counter catalogue.
"""

from repro.obs.export import (
    SCHEMA_VERSION,
    attach_event_capture,
    read_metrics_jsonl,
    snapshot_records,
    write_metrics_jsonl,
)
from repro.obs.hooks import HookBus, HookRecorder
from repro.obs.observability import (
    NULL_OBS,
    NullObservability,
    ObsLike,
    Observability,
)
from repro.obs.profile import Profiler, format_profile
from repro.obs.registry import (
    CounterMetric,
    GaugeMetric,
    MetricsRegistry,
    TimerMetric,
)
from repro.obs.snapshot import ObsSnapshot

__all__ = [
    "SCHEMA_VERSION",
    "attach_event_capture",
    "read_metrics_jsonl",
    "snapshot_records",
    "write_metrics_jsonl",
    "HookBus",
    "HookRecorder",
    "NULL_OBS",
    "NullObservability",
    "ObsLike",
    "ObsSnapshot",
    "Observability",
    "Profiler",
    "format_profile",
    "CounterMetric",
    "GaugeMetric",
    "MetricsRegistry",
    "TimerMetric",
]
