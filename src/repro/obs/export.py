"""JSONL export of observability snapshots.

One record per line, every record a flat JSON object with a ``record``
discriminator.  Schema (version 1):

- ``{"record": "meta", "schema": 1, ...}`` -- exactly one, first line;
  free-form context fields (command, scheduler, seed ...).
- ``{"record": "counter", "name": str, "value": int}``
- ``{"record": "gauge", "name": str, "value": float, "max": float}``
- ``{"record": "timer", "name": str, "count": int, "total_ns": int,
  "max_ns": int}`` -- wall clock; excluded from determinism checks.
- ``{"record": "profile", "section": str, "count": int,
  "total_ns": int}``
- ``{"record": "event", "event": str, ...fields}`` -- optional captured
  hook events (bounded; see :func:`attach_event_capture`).

Counters/gauges sort by name, so two exports of the same deterministic
run diff clean.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional

from repro.obs.hooks import HookRecorder
from repro.obs.observability import Observability

__all__ = ["SCHEMA_VERSION", "attach_event_capture",
           "write_metrics_jsonl", "read_metrics_jsonl",
           "snapshot_records"]

#: Current JSONL schema version (the ``meta`` record carries it).
SCHEMA_VERSION = 1

#: Default cap on captured hook events per export -- structured events
#: are a debugging aid, not a trace format; the TraceRecorder owns the
#: full transmission history.
DEFAULT_EVENT_LIMIT = 10_000


def attach_event_capture(obs: Observability,
                         limit: int = DEFAULT_EVENT_LIMIT) -> HookRecorder:
    """Subscribe a bounded recorder to every hook event of ``obs``.

    Returns the recorder; pass it to :func:`write_metrics_jsonl` as
    ``events`` to include the captured events in the export.
    """
    recorder = HookRecorder(limit=limit)
    obs.hooks.subscribe_all(recorder)
    return recorder


def snapshot_records(obs: Observability,
                     meta: Optional[Mapping[str, object]] = None,
                     events: Optional[HookRecorder] = None) -> List[Dict]:
    """The export as a list of record dicts (the JSONL lines, parsed)."""
    records: List[Dict] = [dict({"record": "meta", "schema": SCHEMA_VERSION},
                                **(meta or {}))]
    snapshot = obs.snapshot()
    for name, value in snapshot.get("counters", {}).items():
        records.append({"record": "counter", "name": name, "value": value})
    for name, gauge in snapshot.get("gauges", {}).items():
        records.append({"record": "gauge", "name": name,
                        "value": gauge["value"], "max": gauge["max"]})
    for name, timer in snapshot.get("timers", {}).items():
        records.append({"record": "timer", "name": name,
                        "count": timer["count"],
                        "total_ns": timer["total_ns"],
                        "max_ns": timer["max_ns"]})
    for section, data in snapshot.get("profile", {}).items():
        records.append({"record": "profile", "section": section,
                        "count": data["count"],
                        "total_ns": data["total_ns"]})
    if events is not None:
        for event, fields in events.events:
            record = {"record": "event", "event": event}
            record.update(fields)
            records.append(record)
    return records


def write_metrics_jsonl(path: str, obs: Observability,
                        meta: Optional[Mapping[str, object]] = None,
                        events: Optional[HookRecorder] = None) -> int:
    """Write the snapshot of ``obs`` to ``path`` as JSONL.

    Args:
        path: Output file (overwritten).
        obs: The observability context to export.
        meta: Extra fields for the leading ``meta`` record.
        events: Captured hook events to append (see
            :func:`attach_event_capture`).

    Returns:
        The number of records written.
    """
    records = snapshot_records(obs, meta=meta, events=events)
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, default=str))
            handle.write("\n")
    return len(records)


def read_metrics_jsonl(path: str) -> List[Dict]:
    """Parse a metrics JSONL file back into record dicts.

    Raises:
        ValueError: On an empty file, a missing/invalid meta record, a
            record without a ``record`` discriminator, or malformed JSON
            -- the validation the regression tests lean on.
    """
    records: List[Dict] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_no}: invalid JSON: {error}"
                ) from error
            if not isinstance(record, dict) or "record" not in record:
                raise ValueError(
                    f"{path}:{line_no}: missing 'record' discriminator"
                )
            records.append(record)
    if not records:
        raise ValueError(f"{path}: empty metrics file")
    head = records[0]
    if head.get("record") != "meta":
        raise ValueError(f"{path}: first record must be 'meta'")
    if head.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema {head.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return records
