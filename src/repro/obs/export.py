"""JSONL export of observability snapshots.

One record per line, every record a flat JSON object with a ``record``
discriminator.  Schema (version 1):

- ``{"record": "meta", "schema": 1, ...}`` -- exactly one, first line;
  free-form context fields (command, scheduler, seed ...).
- ``{"record": "counter", "name": str, "value": int}``
- ``{"record": "gauge", "name": str, "value": float, "max": float}``
- ``{"record": "timer", "name": str, "count": int, "total_ns": int,
  "max_ns": int}`` -- wall clock; excluded from determinism checks.
- ``{"record": "profile", "section": str, "count": int,
  "total_ns": int}``
- ``{"record": "event", "event": str, ...fields}`` -- optional captured
  hook events (bounded; see :func:`attach_event_capture`).

Counters/gauges sort by name, so two exports of the same deterministic
run diff clean.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from typing import Dict, List, Mapping, Optional

from repro.obs.hooks import HookRecorder
from repro.obs.observability import Observability

__all__ = ["SCHEMA_VERSION", "attach_event_capture",
           "write_metrics_jsonl", "read_metrics_jsonl",
           "snapshot_records"]

#: Current JSONL schema version (the ``meta`` record carries it).
SCHEMA_VERSION = 1

#: Default cap on captured hook events per export -- structured events
#: are a debugging aid, not a trace format; the TraceRecorder owns the
#: full transmission history.
DEFAULT_EVENT_LIMIT = 10_000


def attach_event_capture(obs: Observability,
                         limit: int = DEFAULT_EVENT_LIMIT) -> HookRecorder:
    """Subscribe a bounded recorder to every hook event of ``obs``.

    Returns the recorder; pass it to :func:`write_metrics_jsonl` as
    ``events`` to include the captured events in the export.
    """
    recorder = HookRecorder(limit=limit)
    obs.hooks.subscribe_all(recorder)
    return recorder


def snapshot_records(obs: Observability,
                     meta: Optional[Mapping[str, object]] = None,
                     events: Optional[HookRecorder] = None) -> List[Dict]:
    """The export as a list of record dicts (the JSONL lines, parsed)."""
    records: List[Dict] = [dict({"record": "meta", "schema": SCHEMA_VERSION},
                                **(meta or {}))]
    snapshot = obs.snapshot()
    for name, value in snapshot.get("counters", {}).items():
        records.append({"record": "counter", "name": name, "value": value})
    for name, gauge in snapshot.get("gauges", {}).items():
        records.append({"record": "gauge", "name": name,
                        "value": gauge["value"], "max": gauge["max"]})
    for name, timer in snapshot.get("timers", {}).items():
        records.append({"record": "timer", "name": name,
                        "count": timer["count"],
                        "total_ns": timer["total_ns"],
                        "max_ns": timer["max_ns"]})
    for section, data in snapshot.get("profile", {}).items():
        records.append({"record": "profile", "section": section,
                        "count": data["count"],
                        "total_ns": data["total_ns"]})
    if events is not None:
        for event, fields in events.events:
            record = {"record": "event", "event": event}
            record.update(fields)
            records.append(record)
    return records


def write_metrics_jsonl(path: str, obs: Observability,
                        meta: Optional[Mapping[str, object]] = None,
                        events: Optional[HookRecorder] = None) -> int:
    """Write the snapshot of ``obs`` to ``path`` as JSONL, atomically.

    The export is serialized in full to a temp file in the destination
    directory and moved into place with ``os.replace`` (the same
    discipline as ``CampaignCache.store``): a crash -- including
    ``kill -9`` -- mid-export leaves either the previous complete file
    or no file, never a torn one.

    Records are serialized through the strict canonical encoder
    (:mod:`repro.results.canonical`): a value with no JSON
    representation raises :class:`~repro.results.canonical.
    CanonicalEncodeError` instead of silently degrading to ``str()``,
    and the two legal coercions (numpy scalar unwrap, NaN/Inf
    normalization) are counted on ``obs`` as
    ``obs.export.coerced_values``.

    Args:
        path: Output file (replaced atomically).
        obs: The observability context to export.
        meta: Extra fields for the leading ``meta`` record.
        events: Captured hook events to append (see
            :func:`attach_event_capture`).

    Returns:
        The number of records written.

    Raises:
        repro.results.canonical.CanonicalEncodeError: A record holds a
            value (e.g. an arbitrary object in an event field) that the
            export refuses to stringify silently.
    """
    # Function-level import: repro.obs must stay importable before
    # repro.results (whose store module imports repro.obs in turn).
    from repro.results.canonical import canonical_json_bytes

    coerced = 0

    def on_coerce(_path: str, _detail: str) -> None:
        nonlocal coerced
        coerced += 1

    records = snapshot_records(obs, meta=meta, events=events)
    # Serialize everything *before* touching the filesystem: an encode
    # error must not leave a half-written temp file either.
    lines = [canonical_json_bytes(record, on_coerce) + b"\n"
             for record in records]
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            for line in lines:
                handle.write(line)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    if coerced and obs.enabled:
        obs.inc("obs.export.coerced_values", coerced)
    return len(records)


def read_metrics_jsonl(path: str) -> List[Dict]:
    """Parse a metrics JSONL file back into record dicts.

    A malformed *final* line is treated as a truncated trailing write
    (the signature a crashed legacy in-place writer leaves): it is
    skipped with a :class:`RuntimeWarning` instead of raising, so the
    intact prefix of the export stays readable.  Malformed JSON on any
    earlier line is still a hard error -- that is corruption, not
    truncation.

    Raises:
        ValueError: On an empty file, a missing/invalid meta record, a
            record without a ``record`` discriminator, or malformed JSON
            before the final line -- the validation the regression
            tests lean on.
    """
    with open(path) as handle:
        lines = handle.read().split("\n")
    numbered = [(line_no, line.strip())
                for line_no, line in enumerate(lines, start=1)
                if line.strip()]
    records: List[Dict] = []
    for position, (line_no, line) in enumerate(numbered):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if position == len(numbered) - 1:
                warnings.warn(
                    f"{path}:{line_no}: skipping truncated trailing "
                    f"line ({error})", RuntimeWarning, stacklevel=2)
                break
            raise ValueError(
                f"{path}:{line_no}: invalid JSON: {error}"
            ) from error
        if not isinstance(record, dict) or "record" not in record:
            raise ValueError(
                f"{path}:{line_no}: missing 'record' discriminator"
            )
        records.append(record)
    if not records:
        raise ValueError(f"{path}: empty metrics file")
    head = records[0]
    if head.get("record") != "meta":
        raise ValueError(f"{path}: first record must be 'meta'")
    if head.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema {head.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return records
