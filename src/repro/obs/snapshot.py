"""Mergeable, picklable observability snapshots.

A campaign gives every seeded run its own isolated observability
context (so per-seed counters are attributable and nothing leaks across
seeds or across successive campaigns), then needs to combine those
per-seed views back into one aggregate.  :class:`ObsSnapshot` is the
value type that makes that safe:

- it is a plain-data capture of one context (counters, gauges, timers,
  profiler sections, and optionally the hook events the run emitted),
  so it pickles cleanly across ``multiprocessing`` workers and into the
  on-disk campaign cache;
- :meth:`ObsSnapshot.merged_with` combines snapshots **without touching
  any live registry**; merging per-seed snapshots in seed order yields
  exactly the totals a single shared context would have accumulated
  (counters add, gauges keep the last-written value and the max of
  maxima, timers/profile accumulate);
- :meth:`ObsSnapshot.apply_to` folds a snapshot into a live
  :class:`~repro.obs.observability.Observability` and replays the
  captured hook events on its bus, so parent-level subscribers (e.g.
  the CLI's JSONL event capture) see the same events a shared context
  would have delivered.

Counters and gauges are deterministic; timers and profiler sections are
wall clock and excluded from :meth:`ObsSnapshot.deterministic`, the
subset replay/equivalence checks compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.hooks import HookRecorder
from repro.obs.observability import Observability

__all__ = ["ObsSnapshot"]


@dataclass
class ObsSnapshot:
    """Plain-data capture of one observability context (see module doc)."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, Dict[str, float]] = field(default_factory=dict)
    timers: Dict[str, Dict[str, int]] = field(default_factory=dict)
    profile: Dict[str, Dict[str, int]] = field(default_factory=dict)
    events: List[Tuple[str, Dict[str, object]]] = field(default_factory=list)

    @classmethod
    def capture(cls, obs: Observability,
                events: Optional[HookRecorder] = None) -> "ObsSnapshot":
        """Snapshot a live context (plus a recorder's captured events)."""
        snap = obs.snapshot()
        return cls(
            counters=dict(snap.get("counters", {})),
            gauges={name: dict(data)
                    for name, data in snap.get("gauges", {}).items()},
            timers={name: dict(data)
                    for name, data in snap.get("timers", {}).items()},
            profile={name: dict(data)
                     for name, data in snap.get("profile", {}).items()},
            events=[(name, dict(fields))
                    for name, fields in (events.events if events else [])],
        )

    def merged_with(self, other: "ObsSnapshot") -> "ObsSnapshot":
        """Combine two snapshots; ``other`` is the *later* one.

        Counter/timer/profile totals add; gauges take ``other``'s
        last-written value where it wrote one; events concatenate in
        order.  Neither input is mutated.
        """
        merged = ObsSnapshot(
            counters=dict(self.counters),
            gauges={name: dict(data) for name, data in self.gauges.items()},
            timers={name: dict(data) for name, data in self.timers.items()},
            profile={name: dict(data)
                     for name, data in self.profile.items()},
            events=list(self.events),
        )
        for name, value in other.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
        for name, data in other.gauges.items():
            mine = merged.gauges.get(name)
            if mine is None:
                merged.gauges[name] = dict(data)
            else:
                merged.gauges[name] = {
                    "value": data["value"],
                    "max": max(mine["max"], data["max"]),
                }
        for name, data in other.timers.items():
            mine = merged.timers.get(name)
            if mine is None:
                merged.timers[name] = dict(data)
            else:
                merged.timers[name] = {
                    "count": mine["count"] + data["count"],
                    "total_ns": mine["total_ns"] + data["total_ns"],
                    "max_ns": max(mine["max_ns"], data["max_ns"]),
                }
        for name, data in other.profile.items():
            mine = merged.profile.get(name)
            if mine is None:
                merged.profile[name] = dict(data)
            else:
                merged.profile[name] = {
                    "count": mine["count"] + data["count"],
                    "total_ns": mine["total_ns"] + data["total_ns"],
                }
        merged.events.extend((name, dict(fields))
                             for name, fields in other.events)
        return merged

    @staticmethod
    def merge_all(snapshots: Sequence["ObsSnapshot"]) -> "ObsSnapshot":
        """Fold a sequence of snapshots left to right (seed order)."""
        merged = ObsSnapshot()
        for snapshot in snapshots:
            merged = merged.merged_with(snapshot)
        return merged

    def apply_to(self, obs, replay_events: bool = True) -> None:
        """Fold this snapshot into a live context.

        Metrics merge first, then the captured hook events replay on the
        context's bus (subscribers are observation-only by contract, so
        the coarser interleaving is unobservable to well-behaved ones).
        No-op on a disabled context.
        """
        if not obs.enabled:
            return
        obs.registry.merge_snapshot({
            "counters": self.counters,
            "gauges": self.gauges,
            "timers": self.timers,
        })
        obs.profiler.merge(self.profile)
        if replay_events:
            for event, fields in self.events:
                obs.hooks.emit(event, fields)

    def deterministic(self) -> Dict[str, Dict]:
        """Counters and gauges only -- the replay-comparable subset."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": {name: dict(data)
                       for name, data in sorted(self.gauges.items())},
        }
