"""Time-triggered Ethernet backend.

The second protocol behind the neutral core of :mod:`repro.protocol`:
integration-cycle geometry (:mod:`~repro.ttethernet.params`) and
jitter-constrained TT-window placement per Minaeva et al.,
arXiv:1711.00398 (:mod:`~repro.ttethernet.schedule`), registered as
``"ttethernet"`` in :mod:`repro.protocol.backend`.
"""

from repro.ttethernet.backend import TTEthernetBackend
from repro.ttethernet.params import (
    ETHERNET_MAX_PAYLOAD_BITS,
    ETHERNET_OVERHEAD_BITS,
    TTEthernetParams,
    integration_dynamic_preset,
    integration_static_preset,
)
from repro.ttethernet.schedule import (
    assign_release_phases,
    build_tt_schedule,
    window_lags,
)

__all__ = [
    "ETHERNET_MAX_PAYLOAD_BITS",
    "ETHERNET_OVERHEAD_BITS",
    "TTEthernetBackend",
    "TTEthernetParams",
    "assign_release_phases",
    "build_tt_schedule",
    "integration_dynamic_preset",
    "integration_static_preset",
    "window_lags",
]
