"""Time-triggered Ethernet integration-cycle parameter set.

:class:`TTEthernetParams` maps TTEthernet (SAE AS6802 flavoured)
concepts onto the neutral :class:`~repro.protocol.geometry.
SegmentGeometry` vocabulary:

==========================  ========================================
Geometry field              TTEthernet concept
==========================  ========================================
``gd_cycle_mt``             integration cycle
``gd_static_slot_mt``       scheduled-traffic (TT) window
``g_number_of_static_slots``TT windows per integration cycle
``gd_minislot_mt``          rate-constrained (RC) bandwidth quantum
``g_number_of_minislots``   RC quanta per integration cycle
``nit_mt``                  guard band / protocol-control frames
==========================  ========================================

The frame-overhead model is full Ethernet framing: preamble + SFD
(64 bits), MAC header (112 bits), FCS (32 bits) and the 96-bit
inter-frame gap -- 304 bits around up to 1500 bytes of payload, at
100 Mbit/s.

Window placement is jitter-constrained per Minaeva et al.
(arXiv:1711.00398): see :mod:`repro.ttethernet.schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Sequence

from repro.protocol.geometry import SegmentGeometry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocol.frame import Frame
    from repro.protocol.schedule import ScheduleTable

__all__ = [
    "ETHERNET_OVERHEAD_BITS",
    "ETHERNET_MAX_PAYLOAD_BITS",
    "TTEthernetParams",
    "integration_dynamic_preset",
    "integration_static_preset",
]

#: Ethernet wire overhead per frame: preamble + SFD (8 B), MAC header
#: (14 B), FCS (4 B) and the 12-byte inter-frame gap = 38 bytes.
ETHERNET_OVERHEAD_BITS = (8 + 14 + 4 + 12) * 8

#: Maximum standard Ethernet payload: 1500 bytes.
ETHERNET_MAX_PAYLOAD_BITS = 1500 * 8


@dataclass(frozen=True)
class TTEthernetParams(SegmentGeometry):
    """A validated TTEthernet integration-cycle configuration.

    Defaults describe a 1 ms integration cycle at 100 Mbit/s with
    16-macrotick TT windows; one macrotick stays 1 us, so one window
    moves up to ``(16 - 2) * 100 - 304 = 1096`` payload bits.

    Attributes (beyond the inherited geometry):
        max_window_lag_mt: Jitter bound on window placement -- the
            largest admissible gap between a stream's release phase and
            its window's action point, in macroticks.  ``0`` disables
            the constraint (placement still *minimizes* the lag).
    """

    protocol: ClassVar[str] = "ttethernet"

    gd_cycle_mt: int = 1000
    gd_static_slot_mt: int = 16
    g_number_of_static_slots: int = 25
    gd_minislot_mt: int = 8
    g_number_of_minislots: int = 50
    bit_rate_mbps: float = 100.0
    frame_overhead_bits: int = ETHERNET_OVERHEAD_BITS
    max_payload_bits: int = ETHERNET_MAX_PAYLOAD_BITS
    max_window_lag_mt: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_window_lag_mt < 0:
            raise ValueError("max_window_lag_mt must be >= 0")

    def build_schedule(self, frames: Sequence["Frame"],
                       strategy: str = "distribute") -> "ScheduleTable":
        """Jitter-constrained TT-window placement (Minaeva et al.)."""
        from repro.ttethernet.schedule import build_tt_schedule

        return build_tt_schedule(frames, self, strategy)


def integration_dynamic_preset(minislots: int = 100) -> TTEthernetParams:
    """Dynamic-study analogue of the paper's FlexRay preset.

    25 TT windows of 16 MT (0.4 ms of scheduled traffic) followed by a
    rate-constrained segment swept over ``minislots`` 8-MT quanta, plus
    a small guard band -- mirroring the shape of
    :func:`repro.flexray.params.paper_dynamic_preset` so the same
    workloads and sweeps run on both backends.
    """
    windows = 25
    window_mt = 16
    dynamic_mt = minislots * 8
    cycle_mt = windows * window_mt + dynamic_mt + 10  # small guard band
    return TTEthernetParams(
        gd_cycle_mt=cycle_mt,
        gd_static_slot_mt=window_mt,
        g_number_of_static_slots=windows,
        gd_minislot_mt=8,
        g_number_of_minislots=minislots,
        channel_count=2,
    )


def integration_static_preset(static_slots: int = 80) -> TTEthernetParams:
    """Static-study analogue of the paper's FlexRay preset.

    ``static_slots`` TT windows of 16 MT dominate the integration
    cycle; the remainder (at least 100 quanta) is rate-constrained.
    """
    window_mt = 16
    static_mt = static_slots * window_mt
    cycle_mt = max(2000, static_mt + 800)
    minislots = (cycle_mt - static_mt) // 8
    return TTEthernetParams(
        gd_cycle_mt=cycle_mt,
        gd_static_slot_mt=window_mt,
        g_number_of_static_slots=static_slots,
        gd_minislot_mt=8,
        g_number_of_minislots=minislots,
        channel_count=2,
    )
