"""TTEthernet's :class:`~repro.protocol.backend.ProtocolBackend` registration."""

from __future__ import annotations

from typing import ClassVar

from repro.protocol.backend import ProtocolBackend
from repro.ttethernet.params import (
    TTEthernetParams,
    integration_dynamic_preset,
    integration_static_preset,
)

__all__ = ["TTEthernetBackend"]

#: Fuzz-scenario window/quantum lengths (see the preset rationale in
#: :mod:`repro.ttethernet.params`).
_SCENARIO_WINDOW_MT = 16
_SCENARIO_QUANTUM_MT = 8
_SCENARIO_GUARD_MT = 40


class TTEthernetBackend(ProtocolBackend):
    """Time-triggered Ethernet at 100 Mbit/s (SAE AS6802 flavoured)."""

    name: ClassVar[str] = "ttethernet"

    def geometry_template(self) -> TTEthernetParams:
        return TTEthernetParams()

    def dynamic_preset(self, minislots: int = 100) -> TTEthernetParams:
        return integration_dynamic_preset(minislots)

    def static_preset(self, static_slots: int = 80) -> TTEthernetParams:
        return integration_static_preset(static_slots)

    def scenario_geometry(
        self,
        *,
        static_slots: int,
        minislots: int,
        p_latest_tx_minislot: int = 0,
        channel_count: int = 2,
    ) -> TTEthernetParams:
        cycle_mt = (static_slots * _SCENARIO_WINDOW_MT
                    + minislots * _SCENARIO_QUANTUM_MT + _SCENARIO_GUARD_MT)
        return TTEthernetParams(
            gd_cycle_mt=cycle_mt,
            gd_static_slot_mt=_SCENARIO_WINDOW_MT,
            g_number_of_static_slots=static_slots,
            gd_minislot_mt=_SCENARIO_QUANTUM_MT,
            g_number_of_minislots=minislots,
            p_latest_tx_minislot=p_latest_tx_minislot,
            channel_count=channel_count,
        )
