"""Jitter-constrained TT-window placement.

Minaeva et al. (arXiv:1711.00398) formulate time-triggered Ethernet
scheduling as placing each stream's windows so that the gap between a
stream's release and its transmission window -- the *window lag*,
their release jitter -- is bounded.  In this repo's round model a
frame's window recurs at the same in-cycle offset every integration
cycle it fires in, so jitter control reduces to *placement*: choose
the window whose action point follows the stream's release phase as
closely as possible, and reject schedules whose worst lag exceeds the
configured bound.

The neutral allocator in :mod:`repro.protocol.schedule` already
honours per-frame phase preferences; the TTEthernet layer adds

1. a deterministic phase assignment for streams that declare none
   (spreading them evenly over the scheduled segment, the zero-jitter
   porosity heuristic), and
2. the lag measurement / enforcement pass.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.protocol.channel import Channel
from repro.protocol.frame import Frame
from repro.protocol.schedule import (
    ScheduleInfeasibleError,
    ScheduleTable,
    build_dual_schedule,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ttethernet.params import TTEthernetParams

__all__ = ["assign_release_phases", "build_tt_schedule", "window_lags"]


def assign_release_phases(frames: Sequence[Frame],
                          params: "TTEthernetParams") -> List[Frame]:
    """Give phase-less frames evenly spread release phases.

    Frames arrive in placement-priority order; those without a
    ``preferred_phase_mt`` are assigned target action points spread
    uniformly over the scheduled segment, so their windows land evenly
    spaced (minimizing the worst queueing a burst of same-priority
    streams can see) while declared phases are left untouched.
    Deterministic: depends only on the input order.
    """
    unphased = [f for f in frames if f.preferred_phase_mt is None]
    if not unphased:
        return list(frames)
    segment_mt = params.static_segment_mt
    spread = {
        id(frame): (index * segment_mt) // len(unphased)
        for index, frame in enumerate(unphased)
    }
    return [
        frame if frame.preferred_phase_mt is not None
        else dataclasses.replace(frame, preferred_phase_mt=spread[id(frame)])
        for frame in frames
    ]


def window_lags(table: ScheduleTable,
                params: "TTEthernetParams") -> Dict[str, int]:
    """Worst window lag per message, in macroticks.

    The lag of one placed frame is the in-cycle distance from its
    release phase to its window's action point (modulo the integration
    cycle: a window *before* the phase carries the value only in the
    next cycle, costing almost a full cycle).  Frames without a phase
    preference have no defined release, hence no lag.
    """
    lags: Dict[str, int] = {}
    channels = [Channel.A] + ([Channel.B] if params.channel_count == 2 else [])
    for channel in channels:
        for assignment in table.assignments(channel):
            frame = assignment.frame
            phase = frame.preferred_phase_mt
            if phase is None:
                continue
            action_mt = ((assignment.slot_id - 1) * params.gd_static_slot_mt
                         + params.gd_action_point_offset_mt)
            lag = (action_mt - phase) % params.gd_cycle_mt
            key = frame.message_id
            lags[key] = max(lags.get(key, 0), lag)
    return lags


def build_tt_schedule(frames: Sequence[Frame],
                      params: "TTEthernetParams",
                      strategy: str = "distribute") -> ScheduleTable:
    """Build a TT-window schedule with bounded placement lag.

    Args:
        frames: Frames in placement-priority order.
        params: TTEthernet configuration; ``max_window_lag_mt > 0``
            turns the lag bound into a hard feasibility constraint.
        strategy: Channel strategy, as for
            :func:`repro.protocol.schedule.build_dual_schedule`.

    Raises:
        ScheduleInfeasibleError: If a window cannot be placed, or the
            worst placement lag exceeds ``max_window_lag_mt``.
    """
    phased = assign_release_phases(frames, params)
    table = build_dual_schedule(phased, params, strategy)
    if params.max_window_lag_mt > 0:
        for message_id, lag in sorted(window_lags(table, params).items()):
            if lag > params.max_window_lag_mt:
                raise ScheduleInfeasibleError(
                    f"window lag of {message_id} is {lag} MT, exceeding "
                    f"the configured bound of {params.max_window_lag_mt} MT"
                )
    return table
