"""Static-segment schedule-table checks (``FRS*`` rules).

The checks re-derive every invariant from first principles instead of
trusting :class:`~repro.protocol.schedule.ScheduleTable`'s constructor
guards: the verifier's job is to catch tables that were built by other
tools, deserialized, hand-edited, or verified against a *different*
cluster configuration than they were built for (the common
mixed-up-preset mistake).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Union

from repro.protocol.channel import Channel
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.schedule import (
    ScheduleTable,
    SlotAssignment,
    patterns_conflict,
)
from repro.verify.diagnostics import Diagnostic, Report, Severity

__all__ = ["check_schedule"]

_VALID_REPETITIONS = (1, 2, 4, 8, 16, 32, 64)

ScheduleLike = Union[ScheduleTable, Mapping[Channel, Sequence[SlotAssignment]]]


def _assignments_by_channel(schedule: ScheduleLike) \
        -> Dict[Channel, List[SlotAssignment]]:
    if isinstance(schedule, ScheduleTable):
        return {channel: schedule.assignments(channel)
                for channel in (Channel.A, Channel.B)}
    return {channel: list(assignments)
            for channel, assignments in schedule.items()}


def check_schedule(schedule: ScheduleLike, params: SegmentGeometry) -> Report:
    """Run every ``FRS*`` rule against a static-segment schedule.

    Args:
        schedule: A built :class:`ScheduleTable` or a raw
            ``channel -> assignments`` mapping (deserialized tables).
        params: The cluster configuration the table must satisfy.

    Returns:
        A :class:`Report`; empty when the table is sound.
    """
    report = Report()
    per_channel = _assignments_by_channel(schedule)
    total_slots = params.g_number_of_static_slots
    capacity = params.static_slot_capacity_bits

    for channel in sorted(per_channel, key=lambda c: c.name):
        assignments = per_channel[channel]
        if not assignments:
            continue

        # FRS104: the channel must exist in this configuration.
        if channel is Channel.B and params.channel_count < 2:
            report.add(Diagnostic(
                rule_id="FRS104", severity=Severity.ERROR,
                location=f"schedule.{channel.name}",
                message=f"{len(assignments)} assignment(s) on channel B but "
                        f"the cluster is configured single-channel",
                fix_hint="set channel_count=2 or move the frames to "
                         "channel A",
            ))

        by_slot: Dict[int, List[SlotAssignment]] = {}
        for assignment in assignments:
            slot_id = assignment.slot_id
            frame = assignment.frame
            where = (f"schedule.{channel.name}.slot {slot_id} "
                     f"({frame.message_id})")

            # FRS101: slot id inside the static segment.
            if not 1 <= slot_id <= total_slots:
                report.add(Diagnostic(
                    rule_id="FRS101", severity=Severity.ERROR,
                    location=where,
                    message=f"slot {slot_id} outside the static segment "
                            f"[1, {total_slots}]",
                    fix_hint="re-run the allocator against this "
                             "configuration's slot count",
                ))

            # FRS105: the bound frame id must match its slot.
            if frame.frame_id != slot_id:
                report.add(Diagnostic(
                    rule_id="FRS105", severity=Severity.ERROR,
                    location=where,
                    message=f"frame_id {frame.frame_id} does not match the "
                            f"assigned slot {slot_id}",
                    fix_hint="bind frames with frame_id = slot_id "
                             "(dataclasses.replace on placement)",
                ))

            # FRS106: cycle-multiplexing pattern validity.
            repetition = frame.cycle_repetition
            if repetition not in _VALID_REPETITIONS \
                    or not 0 <= frame.base_cycle < repetition:
                report.add(Diagnostic(
                    rule_id="FRS106", severity=Severity.ERROR,
                    location=where,
                    message=f"cycle pattern base={frame.base_cycle} "
                            f"rep={repetition} invalid (rep must be a power "
                            f"of two <= 64, base in [0, rep))",
                    fix_hint="use repetition_for_period() and reduce the "
                             "base modulo the repetition",
                ))

            # FRS103: payload must fit the slot.
            if frame.payload_bits > capacity:
                report.add(Diagnostic(
                    rule_id="FRS103", severity=Severity.ERROR,
                    location=where,
                    message=f"payload of {frame.payload_bits} bits exceeds "
                            f"the slot capacity of {capacity} bits",
                    fix_hint="let the packer chunk the message or lengthen "
                             "gdStaticSlot",
                ))

            by_slot.setdefault(slot_id, []).append(assignment)

        # FRS102: slot sharing must never collide.  Re-derived with
        # patterns_conflict over every pair, independent of whatever
        # built the table.
        for slot_id in sorted(by_slot):
            sharers = by_slot[slot_id]
            for i, first in enumerate(sharers):
                for second in sharers[i + 1:]:
                    if patterns_conflict(
                        first.frame.base_cycle, first.frame.cycle_repetition,
                        second.frame.base_cycle, second.frame.cycle_repetition,
                    ):
                        report.add(Diagnostic(
                            rule_id="FRS102", severity=Severity.ERROR,
                            location=f"schedule.{channel.name}.slot {slot_id}",
                            message=f"{first.frame.message_id} "
                                    f"(base={first.frame.base_cycle}, "
                                    f"rep={first.frame.cycle_repetition}) and "
                                    f"{second.frame.message_id} "
                                    f"(base={second.frame.base_cycle}, "
                                    f"rep={second.frame.cycle_repetition}) "
                                    f"transmit in the same cycles",
                            fix_hint="shift one frame's base cycle or give "
                                     "it its own slot",
                        ))
    return report
