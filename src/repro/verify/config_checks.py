"""Cluster-configuration checks (``FRC*`` rules).

The checks accept either a validated :class:`SegmentGeometry` (any
backend's subclass) or a raw
mapping of parameter names (the ``SegmentGeometry`` field names, plus the
optional explicit ``nit_mt`` / ``static_segment_mt`` /
``dynamic_segment_mt`` declarations a hand-written or imported
configuration may carry).  Working on the raw mapping matters: a
configuration that ``SegmentGeometry.__post_init__`` would reject still
gets a *diagnosis* here -- rule id, location, fix hint -- instead of a
bare ``ValueError``, and inconsistent *redundant* declarations (an
explicit NIT that does not match the segment arithmetic) are only
checkable before the constructor normalizes them away.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Union

from repro.protocol.geometry import SegmentGeometry
from repro.verify.diagnostics import Diagnostic, Report, Severity

__all__ = ["check_params", "as_raw_config"]

#: FlexRay protocol constant: the largest static slot id (cStaticSlotIDMax).
MAX_STATIC_SLOTS = 1023

#: FlexRay protocol constant: the largest minislot count per cycle.
MAX_MINISLOTS = 7988

_POSITIVE_FIELDS = ("gd_macrotick_us", "gd_cycle_mt", "gd_static_slot_mt",
                    "gd_minislot_mt", "bit_rate_mbps")


def as_raw_config(params: Union[SegmentGeometry, Mapping[str, float]]) \
        -> Dict[str, float]:
    """Normalize a configuration to the raw-mapping form the checks use."""
    if isinstance(params, SegmentGeometry):
        return dict(dataclasses.asdict(params))
    return dict(params)


def _get(raw: Mapping[str, float], key: str, default: float) -> float:
    value = raw.get(key, default)
    return default if value is None else value


def check_params(params: Union[SegmentGeometry, Mapping[str, float]]) -> Report:
    """Run every ``FRC*`` rule against a cluster configuration.

    Args:
        params: A :class:`SegmentGeometry` or a raw mapping using the same
            field names (unknown keys are ignored; missing keys take the
            ``SegmentGeometry`` defaults).

    Returns:
        A :class:`Report`; empty when the configuration is sound.
    """
    raw = as_raw_config(params)
    report = Report()
    defaults = {f.name: f.default for f in dataclasses.fields(SegmentGeometry)}

    # FRC009: positivity of every duration/rate parameter.  Checked
    # first because the arithmetic below divides by several of them.
    bad_positive = False
    for name in _POSITIVE_FIELDS:
        value = _get(raw, name, defaults[name])
        if value <= 0:
            bad_positive = True
            report.add(Diagnostic(
                rule_id="FRC009", severity=Severity.ERROR,
                location=f"params.{name}",
                message=f"{name} must be positive, got {value}",
                fix_hint="set a positive duration/rate",
            ))
    if bad_positive:
        return report

    cycle = _get(raw, "gd_cycle_mt", defaults["gd_cycle_mt"])
    slot_mt = _get(raw, "gd_static_slot_mt", defaults["gd_static_slot_mt"])
    static_slots = _get(raw, "g_number_of_static_slots",
                        defaults["g_number_of_static_slots"])
    minislot_mt = _get(raw, "gd_minislot_mt", defaults["gd_minislot_mt"])
    minislots = _get(raw, "g_number_of_minislots",
                     defaults["g_number_of_minislots"])
    symbol = _get(raw, "gd_symbol_window_mt", defaults["gd_symbol_window_mt"])
    action = _get(raw, "gd_action_point_offset_mt",
                  defaults["gd_action_point_offset_mt"])
    latest_tx = _get(raw, "p_latest_tx_minislot",
                     defaults["p_latest_tx_minislot"])
    channels = _get(raw, "channel_count", defaults["channel_count"])
    bit_rate = _get(raw, "bit_rate_mbps", defaults["bit_rate_mbps"])
    macrotick = _get(raw, "gd_macrotick_us", defaults["gd_macrotick_us"])

    # FRC004: static-slot count within the protocol's id space.
    if not 2 <= static_slots <= MAX_STATIC_SLOTS:
        report.add(Diagnostic(
            rule_id="FRC004", severity=Severity.ERROR,
            location="params.g_number_of_static_slots",
            message=f"gNumberOfStaticSlots is {static_slots:g}, must be in "
                    f"[2, {MAX_STATIC_SLOTS}]",
            fix_hint="the spec needs >= 2 sync-frame slots and ids "
                     "<= cStaticSlotIDMax",
        ))
    if not 0 <= minislots <= MAX_MINISLOTS:
        report.add(Diagnostic(
            rule_id="FRC004", severity=Severity.ERROR,
            location="params.g_number_of_minislots",
            message=f"gNumberOfMinislots is {minislots:g}, must be in "
                    f"[0, {MAX_MINISLOTS}]",
            fix_hint="shrink the dynamic segment",
        ))

    static_mt = slot_mt * static_slots
    dynamic_mt = minislot_mt * minislots

    # FRC005: redundant declarations must agree with the derivation.
    declared_static = raw.get("static_segment_mt")
    if declared_static is not None and declared_static != static_mt:
        report.add(Diagnostic(
            rule_id="FRC005", severity=Severity.ERROR,
            location="params.static_segment_mt",
            message=f"declared static segment {declared_static:g} MT != "
                    f"gdStaticSlot * gNumberOfStaticSlots = {static_mt:g} MT",
            fix_hint="drop the explicit length or fix slot count/length",
        ))
    declared_dynamic = raw.get("dynamic_segment_mt")
    if declared_dynamic is not None and declared_dynamic != dynamic_mt:
        report.add(Diagnostic(
            rule_id="FRC005", severity=Severity.ERROR,
            location="params.dynamic_segment_mt",
            message=f"declared dynamic segment {declared_dynamic:g} MT != "
                    f"gdMinislot * gNumberOfMinislots = {dynamic_mt:g} MT",
            fix_hint="drop the explicit length or fix the minislot count",
        ))

    # FRC002: segments must fit the cycle.
    used = static_mt + dynamic_mt + symbol
    derived_nit = cycle - used
    if derived_nit < 0:
        report.add(Diagnostic(
            rule_id="FRC002", severity=Severity.ERROR,
            location="params.gd_cycle_mt",
            message=f"segments occupy {used:g} MT but the cycle is only "
                    f"{cycle:g} MT (NIT would be {derived_nit:g})",
            fix_hint="lengthen gdCycle or shrink a segment",
        ))
    else:
        # FRC001: an explicit NIT must close the cycle arithmetic
        # exactly: static + dynamic + symbol + NIT == gdCycle.
        declared_nit = raw.get("nit_mt")
        if declared_nit is not None and declared_nit != derived_nit:
            report.add(Diagnostic(
                rule_id="FRC001", severity=Severity.ERROR,
                location="params.nit_mt",
                message=f"static {static_mt:g} + dynamic {dynamic_mt:g} + "
                        f"symbol {symbol:g} + NIT {declared_nit:g} = "
                        f"{used + declared_nit:g} MT != gdCycle {cycle:g} MT",
                fix_hint=f"NIT must be {derived_nit:g} MT for this geometry",
            ))
        # FRC003: a zero NIT leaves no room for clock correction.
        elif derived_nit == 0:
            report.add(Diagnostic(
                rule_id="FRC003", severity=Severity.WARNING,
                location="params.gd_cycle_mt",
                message="network idle time is 0 MT; rate/offset correction "
                        "needs NIT headroom",
                fix_hint="reserve a few macroticks of NIT",
            ))

    # FRC006: a slot must hold a non-empty frame after overhead.
    usable_mt = slot_mt - 2 * action
    overhead_bits = _get(raw, "frame_overhead_bits",
                         defaults["frame_overhead_bits"])
    capacity_bits = usable_mt * bit_rate * macrotick - overhead_bits
    if capacity_bits <= 0:
        report.add(Diagnostic(
            rule_id="FRC006", severity=Severity.ERROR,
            location="params.gd_static_slot_mt",
            message=f"static slot of {slot_mt:g} MT carries "
                    f"{max(capacity_bits, 0):g} payload bits after action "
                    f"points and the {overhead_bits:g}-bit overhead",
            fix_hint="lengthen gdStaticSlot or reduce the action-point "
                     "offset",
        ))

    # FRC007: pLatestTx must stay inside the dynamic segment.
    if not 0 <= latest_tx <= minislots:
        report.add(Diagnostic(
            rule_id="FRC007", severity=Severity.ERROR,
            location="params.p_latest_tx_minislot",
            message=f"pLatestTx is {latest_tx:g}, must be in "
                    f"[0, {minislots:g}]",
            fix_hint="0 derives the spec-conformant value",
        ))

    # FRC008: channel count.
    if channels not in (1, 2):
        report.add(Diagnostic(
            rule_id="FRC008", severity=Severity.ERROR,
            location="params.channel_count",
            message=f"channel_count is {channels:g}, must be 1 or 2",
            fix_hint="FlexRay clusters have channels A and optionally B",
        ))

    return report
