"""Compiled-round checks (``FRS11x`` rules).

A :class:`~repro.timeline.compiler.CompiledRound` is the executable
form of a schedule: the stepper walks its flat arrays instead of
querying the table, and the analysis layers read its slack tables.  A
compiler bug (or a round deserialized/hand-built from raw arrays) would
therefore corrupt *execution*, not just a report -- so the verifier
re-derives the round's invariants from first principles:

- **FRS110** -- the round must agree with its source schedule: every
  ``ScheduleTable.lookup`` answer over one full matrix is reproduced by
  ``CompiledRound.owner`` (full static coverage, no phantom owners).
- **FRS111** -- the flat static windows must be geometrically sound:
  aligned to their (cycle, slot) position, one slot long, action point
  inside the window, and non-overlapping per channel.
- **FRS112** -- the derived slack tables must match the owner arrays:
  the idle set of every (channel, cycle-in-pattern) is exactly the
  complement of the owned set, and the prefix sums agree with it.
- **FRS113** -- the static-step view must re-derive from the flat
  arrays: this is the batch geometry both the stepper and the
  vectorized engine execute, so a step out of slot order, a wrong
  action offset, entries out of channel order, a phantom entry or a
  missing owned slot would silently change what transmits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.protocol.channel import Channel
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.schedule import ScheduleTable
from repro.timeline.compiler import CHANNEL_CODES, SEGMENT_STATIC, CompiledRound
from repro.verify.diagnostics import (
    Diagnostic,
    DiagnosticBudget,
    Report,
    Severity,
)

__all__ = ["check_compiled_round"]

#: Stop after this many diagnostics per rule: a corrupt array usually
#: breaks thousands of (cycle, slot) pairs and one example per pair
#: helps nobody.
_MAX_PER_RULE = 8

#: Backwards-compatible alias; the budget now lives in
#: :mod:`repro.verify.diagnostics` so the ``MDL4xx`` model checker can
#: share it.
_Budget = DiagnosticBudget


def check_compiled_round(compiled: CompiledRound,
                         table: Optional[ScheduleTable] = None) -> Report:
    """Run every ``FRS11x`` rule against a compiled round.

    Args:
        compiled: The round to verify.
        table: The source schedule; when given, FRS110 cross-checks the
            round's owner view against ``table.lookup`` over one full
            matrix (omit for rounds rebuilt from raw arrays with no
            surviving table).

    Returns:
        A :class:`Report`; empty when the round is sound.
    """
    report = Report()
    budget = _Budget(report)
    params = compiled.params
    _check_owner_agreement(compiled, table, params, budget)
    _check_windows(compiled, params, budget)
    _check_slack_tables(compiled, params, budget)
    _check_static_steps(compiled, params, budget)
    budget.close()
    return report


def _check_owner_agreement(compiled: CompiledRound,
                           table: Optional[ScheduleTable],
                           params: SegmentGeometry, budget: _Budget) -> None:
    """FRS110: round owners == schedule lookups, both directions."""
    if table is None:
        return
    total_slots = params.g_number_of_static_slots
    for channel in (Channel.A, Channel.B):
        for cycle in range(compiled.cycle_count):
            for slot_id in range(1, total_slots + 1):
                expected = table.lookup(channel, cycle, slot_id)
                actual = compiled.owner(channel, cycle, slot_id)
                if expected is actual:
                    continue
                if expected is not None and actual is not None \
                        and expected.frame_id == actual.frame_id \
                        and expected.message_id == actual.message_id:
                    continue
                def describe(f):
                    return ("idle" if f is None
                            else f"{f.message_id} (id {f.frame_id})")

                budget.add(Diagnostic(
                    rule_id="FRS110", severity=Severity.ERROR,
                    location=f"round.{channel.name}.cycle {cycle}"
                             f".slot {slot_id}",
                    message=f"compiled owner {describe(actual)} disagrees "
                            f"with schedule lookup {describe(expected)}",
                    fix_hint="recompile the round from this schedule "
                             "(compile_round); do not edit the arrays",
                ))


def _check_windows(compiled: CompiledRound, params: SegmentGeometry,
                   budget: _Budget) -> None:
    """FRS111: static windows aligned, slot-long, non-overlapping."""
    cycle_mt = params.gd_cycle_mt
    slot_mt = params.gd_static_slot_mt
    offset = params.gd_action_point_offset_mt
    horizon = compiled.cycle_count * cycle_mt
    per_channel: dict = {}
    for i, kind in enumerate(compiled.segment_kinds):
        if kind != SEGMENT_STATIC:
            continue
        start = compiled.starts[i]
        end = compiled.ends[i]
        slot_id = compiled.slot_ids[i]
        where = f"round.entry {i} (slot {slot_id})"
        cycle, phase = divmod(start, cycle_mt)
        expected_phase = (slot_id - 1) * slot_mt
        if (end - start != slot_mt or phase != expected_phase
                or compiled.actions[i] != start + offset
                or not 0 <= start < horizon):
            budget.add(Diagnostic(
                rule_id="FRS111", severity=Severity.ERROR,
                location=where,
                message=f"window [{start}, {end}) action "
                        f"{compiled.actions[i]} is not the slot-{slot_id} "
                        f"window of cycle {cycle} (expected start "
                        f"{cycle * cycle_mt + expected_phase}, length "
                        f"{slot_mt}, action offset {offset})",
                fix_hint="recompile the round; the flat arrays were "
                         "built against different timing parameters",
            ))
            continue
        per_channel.setdefault(compiled.channel_codes[i], []).append(
            (start, end, i, slot_id))
    for code in sorted(per_channel):
        windows = sorted(per_channel[code])
        for (s1, e1, i1, slot1), (s2, e2, i2, slot2) in zip(windows,
                                                           windows[1:]):
            if s2 < e1:
                budget.add(Diagnostic(
                    rule_id="FRS111", severity=Severity.ERROR,
                    location=f"round.entry {i1}/{i2} (channel code {code})",
                    message=f"static windows overlap: slot {slot1} "
                            f"[{s1}, {e1}) and slot {slot2} [{s2}, {e2})",
                    fix_hint="two frames were compiled into the same "
                             "(channel, cycle, slot); fix the schedule "
                             "conflict and recompile",
                ))


def _check_slack_tables(compiled: CompiledRound, params: SegmentGeometry,
                        budget: _Budget) -> None:
    """FRS112: idle tables are the exact complement of the owner arrays."""
    total_slots = params.g_number_of_static_slots
    per_cycle_total = []
    for cycle in range(compiled.pattern_length):
        cycle_total = 0
        for channel in compiled.channels:
            expected = tuple(
                slot_id for slot_id in range(1, total_slots + 1)
                if compiled.owner(channel, cycle, slot_id) is None
            )
            actual = compiled.idle_slots(channel, cycle)
            cycle_total += len(expected)
            if actual != expected:
                budget.add(Diagnostic(
                    rule_id="FRS112", severity=Severity.ERROR,
                    location=f"round.slack.{channel.name}.cycle {cycle}",
                    message=f"idle table {list(actual)} is not the "
                            f"complement {list(expected)} of the owned "
                            f"slots",
                    fix_hint="drop the idle_slots_override (or recompile); "
                             "the slack supply must be derived from the "
                             "owner arrays",
                ))
        per_cycle_total.append(cycle_total)
    # Prefix sums must agree with the per-cycle idle sets the policy's
    # acceptance test draws on (one whole pattern checks every base).
    for start in range(compiled.pattern_length):
        expected_sum = sum(per_cycle_total[start:])
        actual_sum = compiled.idle_slots_between(start,
                                                 compiled.pattern_length)
        if actual_sum != expected_sum:
            budget.add(Diagnostic(
                rule_id="FRS112", severity=Severity.ERROR,
                location=f"round.slack.prefix[{start}]",
                message=f"idle_slots_between({start}, "
                        f"{compiled.pattern_length}) = {actual_sum} but the "
                        f"idle tables sum to {expected_sum}",
                fix_hint="the prefix sums diverged from the idle tables; "
                         "recompile the round",
            ))


def _check_static_steps(compiled: CompiledRound, params: SegmentGeometry,
                        budget: _Budget) -> None:
    """FRS113: the static-step batch view re-derives from the flat arrays.

    ``static_steps(cycle)`` is the geometry both engines execute -- the
    stepper walks it slot by slot and the vectorized engine plans whole
    cycle batches over it -- so it is re-derived here from the flat
    arrays alone (not through ``owner()``, which has its own cache).
    """
    cycle_mt = params.gd_cycle_mt
    slot_mt = params.gd_static_slot_mt
    offset = params.gd_action_point_offset_mt
    fix = ("recompile the round (compile_round); the step view diverged "
           "from the flat arrays")
    # (channel code, slot_id) -> frame_id, per cycle, from the raw rows.
    expected: List[Dict[Tuple[int, int], int]] = [
        dict() for __ in range(compiled.cycle_count)
    ]
    for i, kind in enumerate(compiled.segment_kinds):
        if kind != SEGMENT_STATIC:
            continue
        code = compiled.channel_codes[i]
        if code not in (0, 1):
            continue
        cycle = compiled.starts[i] // cycle_mt
        if 0 <= cycle < compiled.cycle_count:
            expected[cycle][(code, compiled.slot_ids[i])] = \
                compiled.frame_ids[i]
    for cycle in range(compiled.cycle_count):
        covered: set = set()
        last_slot = 0
        for step in compiled.static_steps(cycle):
            where = f"round.steps.cycle {cycle}.slot {step.slot_id}"
            if step.slot_id <= last_slot:
                budget.add(Diagnostic(
                    rule_id="FRS113", severity=Severity.ERROR,
                    location=where,
                    message=f"step for slot {step.slot_id} follows slot "
                            f"{last_slot}: steps must be strictly "
                            f"slot-ascending (the engines execute them "
                            f"in time order)",
                    fix_hint=fix,
                ))
            last_slot = max(last_slot, step.slot_id)
            expected_action = (step.slot_id - 1) * slot_mt + offset
            if step.action_offset_mt != expected_action:
                budget.add(Diagnostic(
                    rule_id="FRS113", severity=Severity.ERROR,
                    location=where,
                    message=f"step action offset {step.action_offset_mt} "
                            f"is not the slot-{step.slot_id} action point "
                            f"{expected_action}",
                    fix_hint=fix,
                ))
            codes = [CHANNEL_CODES[channel] for channel, __ in step.entries]
            if codes != sorted(set(codes)):
                budget.add(Diagnostic(
                    rule_id="FRS113", severity=Severity.ERROR,
                    location=where,
                    message=f"step entries are not in strict channel order "
                            f"(codes {codes}); the engines query channel A "
                            f"before channel B within a slot",
                    fix_hint=fix,
                ))
            for channel, frame in step.entries:
                key = (CHANNEL_CODES[channel], step.slot_id)
                frame_id = expected[cycle].get(key)
                if frame_id is None:
                    budget.add(Diagnostic(
                        rule_id="FRS113", severity=Severity.ERROR,
                        location=where,
                        message=f"phantom step entry on channel "
                                f"{channel.name}: the flat arrays have no "
                                f"static row for this (channel, cycle, "
                                f"slot)",
                        fix_hint=fix,
                    ))
                    continue
                covered.add(key)
                if frame is not None and frame_id >= 0 \
                        and frame.frame_id != frame_id:
                    budget.add(Diagnostic(
                        rule_id="FRS113", severity=Severity.ERROR,
                        location=where,
                        message=f"step entry frame id {frame.frame_id} "
                                f"disagrees with the flat arrays' "
                                f"frame id {frame_id}",
                        fix_hint=fix,
                    ))
        for code, slot_id in sorted(set(expected[cycle]) - covered):
            channel_name = "A" if code == 0 else "B"
            budget.add(Diagnostic(
                rule_id="FRS113", severity=Severity.ERROR,
                location=f"round.steps.cycle {cycle}.slot {slot_id}",
                message=f"owned static entry on channel {channel_name} is "
                        f"missing from the step view: the engines would "
                        f"never transmit it",
                fix_hint=fix,
            ))
