"""Simulation-free static verification of FlexRay configurations.

The cheap gate in front of expensive runs: every invariant the
simulator would only violate at runtime -- slot-table consistency,
cycle arithmetic, slack-table shape, busy-period convergence
preconditions, Theorem-1 feasibility -- is checked offline here and
reported as structured :class:`~repro.verify.diagnostics.Diagnostic`
records (stable rule id, severity, location, fix hint).

Entry points:

- :func:`verify_configuration` -- check the artifacts you already have;
- :func:`verify_experiment` -- build-and-check everything one
  experiment configuration implies (the ``repro verify-config`` CLI and
  the ``run_campaign(validate=True)`` gate);
- :data:`VERIFY_RULES` -- the rule catalogue behind
  ``docs/static_analysis.md``.

The sibling :mod:`repro.lint` package lints the repo's *source code*
for determinism hazards with the same diagnostic shape.
"""

from repro.verify.analysis_checks import (
    check_deadlines,
    check_retransmission_plan,
    check_slack_table,
    check_utilization,
)
from repro.verify.config_checks import as_raw_config, check_params
from repro.verify.diagnostics import Diagnostic, Report, Severity
from repro.verify.round_checks import check_compiled_round
from repro.verify.rules import VERIFY_RULES, Rule
from repro.verify.schedule_checks import check_schedule
from repro.verify.verifier import (
    ConfigurationError,
    verify_configuration,
    verify_experiment,
)

__all__ = [
    "Severity",
    "Diagnostic",
    "Report",
    "Rule",
    "VERIFY_RULES",
    "as_raw_config",
    "check_params",
    "check_schedule",
    "check_compiled_round",
    "check_slack_table",
    "check_utilization",
    "check_retransmission_plan",
    "check_deadlines",
    "verify_configuration",
    "verify_experiment",
    "ConfigurationError",
]
