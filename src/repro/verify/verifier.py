"""Verification orchestrators.

Two entry points at two altitudes:

- :func:`verify_configuration` -- run the rule groups against whatever
  artifacts the caller already has (a params object, a schedule table, a
  slack table, a retransmission plan).  Anything not supplied is simply
  not checked; nothing is simulated or constructed.

- :func:`verify_experiment` -- the pre-campaign gate: given the same
  inputs :func:`repro.experiments.runner.run_experiment` takes, *build*
  the offline artifacts exactly the way the CoEfficient policy does
  (same packer, same allocator strategy, same Theorem-1 planner inputs)
  and verify all of them.  This is what ``run_campaign(validate=True)``
  and ``repro verify-config`` call: a failing configuration is diagnosed
  in milliseconds instead of after a Monte-Carlo campaign.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.slack_table import IdleSlotTable
from repro.core.retransmission import (
    RetransmissionPlan,
    plan_retransmissions,
    uniform_retransmission_plan,
)
from repro.faults.ber import BitErrorRateModel
from repro.protocol.channel import Channel
from repro.protocol.frame import frame_duration_mt
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.schedule import (
    ChannelStrategy,
    ScheduleTable,
)
from repro.protocol.signal import SignalSet
from repro.packing.frame_packing import pack_signals
from repro.verify.analysis_checks import (
    check_deadlines,
    check_retransmission_plan,
    check_slack_table,
    check_utilization,
)
from repro.timeline.compiler import CompiledRound, compile_round
from repro.verify.config_checks import check_params
from repro.verify.diagnostics import Diagnostic, Report, Severity
from repro.verify.round_checks import check_compiled_round
from repro.verify.schedule_checks import ScheduleLike, check_schedule

__all__ = ["verify_configuration", "verify_experiment",
           "ConfigurationError"]


class ConfigurationError(ValueError):
    """A static gate found errors; carries the full report."""

    def __init__(self, report: Report) -> None:
        super().__init__(
            "configuration failed static verification:\n" + report.format())
        self.report = report


def _slack_levels(slack_table: Union[IdleSlotTable,
                                     Sequence[Sequence[float]]]) \
        -> Sequence[Sequence[float]]:
    """Project a slack provider onto the generic cumulative-table shape."""
    if isinstance(slack_table, IdleSlotTable):
        cumulative = []
        total = 0
        for cycle in range(slack_table.pattern_length):
            total += sum(slack_table.idle_count(channel, cycle)
                         for channel in slack_table.channels)
            cumulative.append(float(total))
        return [cumulative]
    return slack_table


def verify_configuration(
    params: Optional[Union[SegmentGeometry, Mapping[str, float]]] = None,
    schedule: Optional[ScheduleLike] = None,
    workload: Optional[Sequence[Tuple[str, float, float]]] = None,
    tasks: Optional[Sequence[Tuple[float, float]]] = None,
    slack_table: Optional[Union[IdleSlotTable,
                                Sequence[Sequence[float]]]] = None,
    plan: Optional[Union[RetransmissionPlan, Mapping[str, int]]] = None,
    failure_probabilities: Optional[Mapping[str, float]] = None,
    instances: Optional[Mapping[str, float]] = None,
    reliability_goal: Optional[float] = None,
    compiled: Optional[CompiledRound] = None,
) -> Report:
    """Verify whichever offline artifacts are supplied.

    Args:
        params: Cluster configuration (``FRC*`` rules).  Required when
            ``schedule`` is given (the table is checked against it).
        schedule: Static-segment schedule (``FRS*`` rules).
        compiled: A compiled communication round (``FRS11x`` rules);
            cross-checked against ``schedule`` when that is a
            :class:`~repro.protocol.schedule.ScheduleTable`.
        workload: ``(name, deadline_ms, period_ms)`` triples of hard
            periodic messages (``ANA205``).
        tasks: ``(C, T)`` pairs in priority order (``ANA203``).
        slack_table: An :class:`IdleSlotTable` or a raw
            ``levels x horizons`` cumulative table (``ANA201/202``).
        plan: Retransmission budgets -- a :class:`RetransmissionPlan`
            or a plain ``message -> k_z`` mapping (``ANA204/206/207``);
            needs ``failure_probabilities``, ``instances`` and
            ``reliability_goal``.
        failure_probabilities: ``message -> p_z`` for the plan check.
        instances: ``message -> u/T_z`` for the plan check.
        reliability_goal: rho for the plan check (defaults to the
            plan's own recorded goal when a full plan is given).

    Returns:
        The merged :class:`Report` over every requested rule group.
    """
    report = Report()
    if params is not None:
        report.merge(check_params(params))
    if schedule is not None:
        if not isinstance(params, SegmentGeometry):
            raise ValueError(
                "schedule verification needs a SegmentGeometry instance")
        report.merge(check_schedule(schedule, params))
    if compiled is not None:
        source = schedule if isinstance(schedule, ScheduleTable) else None
        report.merge(check_compiled_round(compiled, table=source))
        # The hyperperiod model checker re-proves the round's window,
        # owner and slack invariants over the full matrix (MDL4xx) --
        # structural rules only at this altitude; verify_experiment
        # supplies the Theorem-1 inputs.
        from repro.check.model_checker import check_hyperperiod_model
        report.merge(check_hyperperiod_model(compiled))
    if workload is not None:
        report.merge(check_deadlines(workload))
    if tasks is not None:
        report.merge(check_utilization(tasks))
    if slack_table is not None:
        report.merge(check_slack_table(_slack_levels(slack_table)))
    if plan is not None:
        budgets: Mapping[str, int]
        if isinstance(plan, RetransmissionPlan):
            budgets = plan.budgets
            if reliability_goal is None:
                import math
                reliability_goal = math.exp(plan.goal_log_probability)
            if not plan.feasible:
                report.add(Diagnostic(
                    rule_id="ANA207", severity=Severity.WARNING,
                    location="plan",
                    message="the planner itself recorded feasible=False",
                    fix_hint="the goal is unreachable at this BER even "
                             "with maximal budgets",
                ))
        else:
            budgets = plan
        if failure_probabilities is None or instances is None \
                or reliability_goal is None:
            raise ValueError(
                "plan verification needs failure_probabilities, instances "
                "and a reliability goal")
        report.merge(check_retransmission_plan(
            failure_probabilities, instances, budgets, reliability_goal))
    return report


def verify_experiment(
    params: SegmentGeometry,
    periodic: Optional[SignalSet] = None,
    aperiodic: Optional[SignalSet] = None,
    ber: float = 1e-7,
    reliability_goal: float = 0.99999,
    time_unit_ms: float = 1000.0,
    max_budget: int = 8,
    uniform_budget: bool = False,
    strategy: str = ChannelStrategy.DISTRIBUTE,
) -> Report:
    """Build and verify every offline artifact of one experiment.

    Mirrors the offline-planning path of
    :class:`~repro.core.coefficient.CoEfficientPolicy` (same packer,
    same allocator strategy, same failure-probability and instance-rate
    derivation) without constructing a cluster or running a cycle.

    Args:
        params: Cluster configuration.
        periodic: Time-triggered workload (may be ``None``).
        aperiodic: Event-triggered workload (may be ``None``).
        ber: Bit error rate (Theorem-1 failure probabilities).
        reliability_goal: rho the plan must reach.
        time_unit_ms: Theorem-1 time unit u.
        max_budget: Per-message retransmission cap.
        uniform_budget: Verify the uniform-k ablation plan instead of
            the differentiated plan.
        strategy: Channel strategy for the schedule build.

    Returns:
        The merged :class:`Report`; :attr:`Report.has_errors` is the
        gate decision.
    """
    report = check_params(params)

    workload: Optional[SignalSet] = None
    if periodic is not None and aperiodic is not None:
        workload = periodic.merged_with(aperiodic)
    else:
        workload = periodic or aperiodic
    if workload is None:
        report.add(Diagnostic(
            rule_id="ANA205", severity=Severity.ERROR,
            location="workload",
            message="experiment has no workload at all",
            fix_hint="supply a periodic and/or aperiodic signal set",
        ))
        return report

    report.merge(check_deadlines([
        (signal.name, signal.deadline_ms, signal.period_ms)
        for signal in workload if not signal.aperiodic
    ]))
    if report.has_errors:
        # Geometry or deadlines are already broken; the builders below
        # would raise on the same root causes with worse messages.
        return report

    try:
        packing = pack_signals(workload, params)
        table = params.build_schedule(packing.static_frames(),
                                      strategy=strategy)
    except (ValueError, RuntimeError) as error:
        report.add(Diagnostic(
            rule_id="FRS107", severity=Severity.ERROR,
            location="schedule",
            message=f"offline construction failed: {error}",
            fix_hint="add static slots, lengthen the cycle, or shrink "
                     "the workload",
        ))
        return report

    report.merge(check_schedule(table, params))

    channels = [Channel.A]
    if params.channel_count == 2:
        channels.append(Channel.B)
    # Compile the round exactly as the policy's bind does and verify it
    # against the table it came from; the slack check then reads the
    # same compiled tables the online scheduler will.
    compiled = compile_round(table, params, channels)
    report.merge(check_compiled_round(compiled, table=table))
    report.merge(check_slack_table(
        _slack_levels(IdleSlotTable.from_compiled(compiled))))

    # Busy-period precondition, projected onto the static segment as a
    # server: average wire demand per cycle must stay below the static
    # capacity the configured channels offer per cycle.
    demand_mt = 0.0
    for message in packing.periodic_messages():
        per_instance = sum(
            frame_duration_mt(chunk.payload_bits, params)
            for chunk in message.chunks
        )
        demand_mt += per_instance * (params.cycle_ms / message.period_ms)
    supply_mt = float(params.static_segment_mt * len(channels))
    report.merge(check_utilization([(demand_mt, supply_mt)],
                                   location="static_segment"))

    # Theorem-1 plan, derived exactly as CoEfficientPolicy.on_bound does.
    ber_model = BitErrorRateModel(ber_channel_a=ber)
    failure = {}
    instances = {}
    cost = {}
    periods = {}
    worst = {}
    for message in packing.messages:
        worst_bits = max(
            chunk.payload_bits for chunk in message.chunks
        ) + 64  # frame overhead
        worst[message.message_id] = worst_bits
        failure[message.message_id] = ber_model.failure_probability(
            "A", worst_bits)
        instances[message.message_id] = time_unit_ms / message.period_ms
        cost[message.message_id] = worst_bits / message.period_ms
        periods[message.message_id] = message.period_ms
    if uniform_budget:
        plan = uniform_retransmission_plan(
            failure, instances, reliability_goal, max_budget=max_budget)
    else:
        plan = plan_retransmissions(
            failure, instances, reliability_goal,
            bandwidth_cost=cost, max_budget=max_budget)
    report.merge(verify_configuration(
        plan=plan,
        failure_probabilities=failure,
        instances=instances,
        reliability_goal=reliability_goal,
    ))
    # Hyperperiod model check with full Theorem-1 inputs: the
    # structural MDL rules plus the log-space goal and the fundability
    # of the planned budgets, extrapolated over the whole matrix.
    from repro.check.model_checker import (
        check_hyperperiod_model,
        dynamic_retransmission_capacity,
    )
    report.merge(check_hyperperiod_model(
        compiled,
        budgets=plan.budgets,
        failure_probabilities=failure,
        instances=instances,
        reliability_goal=reliability_goal,
        retransmission_periods_ms=periods,
        dynamic_retransmission_slots_per_cycle=
            dynamic_retransmission_capacity(params, worst),
    ))
    return report
