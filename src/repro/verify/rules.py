"""Rule catalogue of the configuration verifier.

Every check the verifier can emit is declared here with its stable id,
default severity and a one-line description; ``docs/static_analysis.md``
is generated from the same information and the test suite asserts that
every catalogued rule has a test that triggers it.

The determinism linter's ``DET*`` rules live in
:mod:`repro.lint.rules`; the two catalogues share the
:class:`~repro.verify.diagnostics.Diagnostic` shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.verify.diagnostics import Severity

__all__ = ["Rule", "VERIFY_RULES"]


@dataclass(frozen=True)
class Rule:
    """Metadata of one verifier rule."""

    rule_id: str
    title: str
    severity: Severity
    description: str


def _catalogue(*rules: Rule) -> Dict[str, Rule]:
    return {rule.rule_id: rule for rule in rules}


#: Every rule the configuration verifier can emit, keyed by id.
VERIFY_RULES: Dict[str, Rule] = _catalogue(
    # ---------------------------------------------------------------- FRC
    Rule("FRC001", "cycle-arithmetic-mismatch", Severity.ERROR,
         "static + dynamic + symbol window + NIT must equal gdCycle."),
    Rule("FRC002", "segment-overflow", Severity.ERROR,
         "Static + dynamic + symbol window exceed the communication "
         "cycle (NIT would be negative)."),
    Rule("FRC003", "nit-empty", Severity.WARNING,
         "The network idle time is zero; the spec needs NIT headroom "
         "for clock correction."),
    Rule("FRC004", "static-slot-count-range", Severity.ERROR,
         "gNumberOfStaticSlots must be in [2, 1023] "
         "(cStaticSlotIDMax; >= 2 sync frames)."),
    Rule("FRC005", "minislot-count-mismatch", Severity.ERROR,
         "gNumberOfMinislots disagrees with the declared dynamic-segment "
         "length (dynamic_segment_mt != minislots * gdMinislot)."),
    Rule("FRC006", "slot-capacity-nonpositive", Severity.ERROR,
         "A static slot is too short to carry any payload after action "
         "points and frame overhead."),
    Rule("FRC007", "latest-tx-out-of-range", Severity.ERROR,
         "pLatestTx must lie within [0, gNumberOfMinislots]."),
    Rule("FRC008", "channel-count-invalid", Severity.ERROR,
         "FlexRay clusters have one or two channels."),
    Rule("FRC009", "parameter-nonpositive", Severity.ERROR,
         "A duration/rate parameter (macrotick, cycle, slot, minislot, "
         "bit rate) must be positive."),
    # ---------------------------------------------------------------- FRS
    Rule("FRS101", "slot-out-of-range", Severity.ERROR,
         "A schedule assignment references a slot id outside "
         "[1, gNumberOfStaticSlots]."),
    Rule("FRS102", "slot-overlap", Severity.ERROR,
         "Two assignments share a (channel, slot) with colliding cycle "
         "patterns: both would transmit in the same slot of the same "
         "cycle."),
    Rule("FRS103", "payload-exceeds-slot", Severity.ERROR,
         "A frame's payload does not fit the static-slot capacity."),
    Rule("FRS104", "channel-not-configured", Severity.ERROR,
         "The schedule assigns a channel the cluster configuration does "
         "not have (channel B on a single-channel cluster)."),
    Rule("FRS105", "frame-id-slot-mismatch", Severity.ERROR,
         "A bound frame's frame_id differs from the slot it is assigned "
         "to."),
    Rule("FRS106", "cycle-pattern-invalid", Severity.ERROR,
         "cycle_repetition must be a power of two <= 64 and base_cycle "
         "must lie in [0, repetition)."),
    Rule("FRS107", "schedule-infeasible", Severity.ERROR,
         "The static segment cannot host the periodic workload (the "
         "allocator or packer failed outright)."),
    Rule("FRS110", "round-owner-mismatch", Severity.ERROR,
         "A compiled round's owner view disagrees with its source "
         "schedule's lookup over the communication matrix (missing "
         "coverage or a phantom owner)."),
    Rule("FRS111", "round-window-invalid", Severity.ERROR,
         "A compiled static window is misaligned with its (cycle, slot) "
         "position, has the wrong length or action point, or overlaps "
         "another window on the same channel."),
    Rule("FRS112", "round-slack-inconsistent", Severity.ERROR,
         "A compiled round's idle/slack tables are not the exact "
         "complement of its owner arrays (the stepper and the "
         "acceptance test would disagree about structural slack)."),
    Rule("FRS113", "round-steps-inconsistent", Severity.ERROR,
         "A compiled round's static-step view (the batch geometry the "
         "stepper and the vectorized engine execute) disagrees with the "
         "flat schedule arrays: steps out of slot order, a wrong action "
         "offset, entries out of channel order, a phantom entry, or an "
         "owned slot missing from the steps."),
    # ---------------------------------------------------------------- ANA
    Rule("ANA201", "slack-negative", Severity.ERROR,
         "A slack-table entry is negative: guaranteed idle capacity can "
         "never be below zero."),
    Rule("ANA202", "slack-not-monotonic", Severity.ERROR,
         "Level-i slack must be non-decreasing in the horizon and "
         "non-increasing in the priority level (level i+1 serves a "
         "superset of the interference)."),
    Rule("ANA203", "utilization-overload", Severity.ERROR,
         "Level-i utilization >= 1: the busy-period recurrence "
         "diverges, no response-time bound exists."),
    Rule("ANA204", "theorem1-goal-missed", Severity.ERROR,
         "The retransmission budgets do not reach the reliability goal: "
         "prod (1 - p_z^(k_z+1))^(u/T_z) < rho."),
    Rule("ANA205", "deadline-exceeds-period", Severity.ERROR,
         "A hard periodic message has D > T; the constrained-deadline "
         "analysis does not cover it."),
    Rule("ANA206", "retransmission-budget-invalid", Severity.ERROR,
         "A retransmission budget k_z is negative or exceeds the "
         "planner's cap."),
    Rule("ANA207", "plan-declared-infeasible", Severity.WARNING,
         "The retransmission plan itself records feasible=False; the "
         "reliability goal is not reachable at this BER."),
)
