"""Analysis-object checks (``ANA*`` rules).

These rules verify the *outputs and preconditions of the offline
analyses* rather than the cluster geometry: slack tables, the
busy-period convergence precondition, Theorem-1 retransmission plans,
and the constrained-deadline assumption every response-time bound in
the repo rests on.

A "slack table" here is the generic shape both slack providers reduce
to: per priority level, the cumulative guaranteed slack at increasing
horizons (``slack[level][h]`` = slack available in ``[0, horizon_h]``).
The :class:`~repro.analysis.slack_table.IdleSlotTable` and the
:class:`~repro.core.slack_stealing.SlackStealer` level-idle tables are
both projected onto it by :mod:`repro.verify.verifier`.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence, Tuple

from repro.core.retransmission import MAX_RETRANSMISSIONS
from repro.faults.analysis import log_message_success_probability
from repro.verify.diagnostics import Diagnostic, Report, Severity

__all__ = ["check_slack_table", "check_utilization",
           "check_retransmission_plan", "check_deadlines"]


def check_slack_table(levels: Sequence[Sequence[float]],
                      location: str = "slack_table") -> Report:
    """``ANA201``/``ANA202``: slack sanity over levels and horizons.

    Args:
        levels: ``levels[i][h]`` = cumulative slack of priority level
            ``i`` at horizon index ``h``.  Rows may differ in length;
            cross-level monotonicity is checked on the common prefix.
        location: Location prefix for the diagnostics.

    Returns:
        A :class:`Report`; empty when the table is plausible.
    """
    report = Report()
    for level, row in enumerate(levels):
        for horizon, value in enumerate(row):
            # ANA201: slack is a capacity; it can never be negative.
            if value < 0:
                report.add(Diagnostic(
                    rule_id="ANA201", severity=Severity.ERROR,
                    location=f"{location}[{level}][{horizon}]",
                    message=f"slack entry is {value:g} < 0",
                    fix_hint="recompute the idle-period scan; negative "
                             "slack means demand was double-counted",
                ))
            # ANA202 (horizon direction): cumulative slack over a longer
            # window can only grow.
            if horizon > 0 and value < row[horizon - 1]:
                report.add(Diagnostic(
                    rule_id="ANA202", severity=Severity.ERROR,
                    location=f"{location}[{level}][{horizon}]",
                    message=f"cumulative slack drops from "
                            f"{row[horizon - 1]:g} to {value:g} as the "
                            f"horizon grows",
                    fix_hint="cumulative tables must be non-decreasing "
                             "in the horizon",
                ))
    # ANA202 (level direction): level i+1 suffers at least level i's
    # interference, so its slack can never exceed level i's.
    for level in range(1, len(levels)):
        shared = min(len(levels[level - 1]), len(levels[level]))
        for horizon in range(shared):
            upper = levels[level - 1][horizon]
            lower = levels[level][horizon]
            if lower > upper:
                report.add(Diagnostic(
                    rule_id="ANA202", severity=Severity.ERROR,
                    location=f"{location}[{level}][{horizon}]",
                    message=f"level {level} slack {lower:g} exceeds level "
                            f"{level - 1} slack {upper:g} at the same "
                            f"horizon",
                    fix_hint="deeper levels include more interference; "
                             "check the level ordering",
                ))
    return report


def check_utilization(tasks: Sequence[Tuple[float, float]],
                      location: str = "tasks") -> Report:
    """``ANA203``: the busy-period recurrence must converge.

    Args:
        tasks: ``(C_j, T_j)`` pairs in priority order (0 = highest).
        location: Location prefix for the diagnostics.

    Returns:
        A :class:`Report` flagging every level whose cumulative
        utilization reaches 1 (only the first offending level is
        reported per monotone prefix -- every deeper level is also
        overloaded by implication).
    """
    report = Report()
    utilization = 0.0
    for level, (execution, period) in enumerate(tasks):
        if period <= 0 or execution < 0:
            report.add(Diagnostic(
                rule_id="ANA203", severity=Severity.ERROR,
                location=f"{location}[{level}]",
                message=f"task has C={execution:g}, T={period:g}; "
                        f"need C >= 0 and T > 0",
                fix_hint="check the (C, T) extraction",
            ))
            return report
        utilization += execution / period
        if utilization >= 1.0:
            report.add(Diagnostic(
                rule_id="ANA203", severity=Severity.ERROR,
                location=f"{location}[{level}]",
                message=f"level-{level} utilization "
                        f"{utilization:.3f} >= 1; the busy period is "
                        f"unbounded",
                fix_hint="shed load or lengthen periods before running "
                         "the response-time analysis",
            ))
            return report
    return report


def check_retransmission_plan(
    failure_probabilities: Mapping[str, float],
    instances: Mapping[str, float],
    budgets: Mapping[str, int],
    rho: float,
    location: str = "plan",
    max_budget: int = MAX_RETRANSMISSIONS,
) -> Report:
    """``ANA204``/``ANA206``: Theorem-1 feasibility of a plan.

    Recomputes the success-probability product from scratch (log space)
    and compares against the goal -- the verifier must not trust the
    planner's own ``feasible`` flag.

    Args:
        failure_probabilities: ``message -> p_z``.
        instances: ``message -> u / T_z``.
        budgets: ``message -> k_z`` (missing messages default to 0).
        rho: Reliability goal in (0, 1].
        location: Location prefix for the diagnostics.
        max_budget: Per-message budget cap (``ANA206``).

    Returns:
        A :class:`Report`; empty when the plan meets the goal.
    """
    report = Report()
    if not 0.0 < rho <= 1.0:
        report.add(Diagnostic(
            rule_id="ANA204", severity=Severity.ERROR,
            location=f"{location}.rho",
            message=f"reliability goal rho={rho:g} outside (0, 1]",
            fix_hint="rho = 1 - gamma for the configured SIL",
        ))
        return report

    for message in sorted(budgets):
        budget = budgets[message]
        # ANA206: budgets must be sane before the product means anything.
        if not 0 <= budget <= max_budget:
            report.add(Diagnostic(
                rule_id="ANA206", severity=Severity.ERROR,
                location=f"{location}.budgets[{message}]",
                message=f"k_z = {budget} outside [0, {max_budget}]",
                fix_hint="re-run the planner; budgets beyond the cap "
                         "signal degenerate inputs",
            ))
    if report.has_errors:
        return report

    log_total = 0.0
    for message in sorted(failure_probabilities):
        p_z = failure_probabilities[message]
        if message not in instances:
            report.add(Diagnostic(
                rule_id="ANA204", severity=Severity.ERROR,
                location=f"{location}.instances[{message}]",
                message="no instance count (u/T_z) for this message",
                fix_hint="every planned message needs its rate",
            ))
            return report
        log_total += log_message_success_probability(
            p_z, budgets.get(message, 0), instances[message])

    gamma = 1.0 - rho
    goal_log = math.log1p(-gamma) if gamma < 0.5 else math.log(rho)
    if log_total < goal_log:
        # Report in failure-probability space: at automotive goals both
        # sides are within 1e-9 of 1.0 and would print identically.
        achieved_gamma = -math.expm1(log_total)
        report.add(Diagnostic(
            rule_id="ANA204", severity=Severity.ERROR,
            location=location,
            message=f"prod (1 - p_z^(k_z+1))^(u/T_z) misses the goal: "
                    f"failure probability {achieved_gamma:.6g} > "
                    f"allowed gamma {gamma:.6g}",
            fix_hint="raise the budgets of the highest-rate lossy "
                     "messages or relax the goal",
        ))
    return report


def check_deadlines(
    messages: Sequence[Tuple[str, float, float]],
    location: str = "workload",
) -> Report:
    """``ANA205``: constrained deadlines (D <= T) for hard periodic tasks.

    Args:
        messages: ``(name, deadline, period)`` triples, one per hard
            periodic message (aperiodic messages are not subject to the
            constrained-deadline model and must not be passed).
        location: Location prefix for the diagnostics.

    Returns:
        A :class:`Report`; empty when every deadline is constrained.
    """
    report = Report()
    for name, deadline, period in messages:
        if deadline > period:
            report.add(Diagnostic(
                rule_id="ANA205", severity=Severity.ERROR,
                location=f"{location}.{name}",
                message=f"deadline {deadline:g} ms exceeds period "
                        f"{period:g} ms",
                fix_hint="the schedulability analysis assumes D <= T; "
                         "tighten the deadline or model the message as "
                         "aperiodic",
            ))
    return report
