"""Structured diagnostics shared by the static-analysis layer.

Both halves of the static-analysis subsystem -- the simulation-free
configuration verifier (:mod:`repro.verify`) and the AST determinism
linter (:mod:`repro.lint`) -- report their findings in the same shape:
a :class:`Diagnostic` carries a stable rule id, a severity, a location,
a human-readable message and a fix hint, and a :class:`Report` collects
them with the filtering and formatting the CLI and the pre-campaign
gate need.

Rule-id namespaces:

- ``FRC*`` -- FlexRay cluster/cycle arithmetic (config checks);
- ``FRS*`` -- static-segment schedule-table checks;
- ``ANA*`` -- analysis-object checks (slack tables, busy-period
  preconditions, Theorem-1 feasibility, deadline sanity);
- ``DET*`` -- determinism lint rules over the repo's own source.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["Severity", "Diagnostic", "Report", "DiagnosticBudget"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make a report fail (non-zero CLI exit, campaign
    gate raises); ``WARNING`` findings are surfaced but do not fail;
    ``INFO`` findings are purely informational.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        rule_id: Stable identifier (``FRC001``, ``DET103``, ...); tests
            and suppressions key on it, so it never changes meaning.
        severity: :class:`Severity` of the finding.
        location: Where the problem is.  For configuration objects a
            dotted path (``params.gd_cycle_mt``, ``schedule.A.slot 7``);
            for lint findings ``path:line:column``.
        message: What is wrong, with the offending values inlined.
        fix_hint: How to make the finding go away (may be empty).
    """

    rule_id: str
    severity: Severity
    location: str
    message: str
    fix_hint: str = ""

    def format(self) -> str:
        """One-line rendering: ``location: severity RULE: message``."""
        line = f"{self.location}: {self.severity.value} {self.rule_id}: " \
               f"{self.message}"
        if self.fix_hint:
            line += f" [hint: {self.fix_hint}]"
        return line

    def to_row(self) -> Dict[str, str]:
        """Flat dict for table/JSON emission."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
            "hint": self.fix_hint,
        }


@dataclass
class Report:
    """An ordered collection of diagnostics.

    Order is deterministic: findings appear in the order the checks
    emitted them (checks themselves iterate sorted inputs), so two runs
    over the same inputs render byte-identical reports.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append many findings."""
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "Report") -> None:
        """Append every finding of another report."""
        self.diagnostics.extend(other.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        """Findings with :attr:`Severity.ERROR`."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Findings with :attr:`Severity.WARNING`."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        """Whether the report should fail a gate."""
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def rule_ids(self) -> List[str]:
        """Every distinct rule id that fired, sorted."""
        return sorted({d.rule_id for d in self.diagnostics})

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        """All findings of one rule."""
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def format(self, max_findings: Optional[int] = None) -> str:
        """Multi-line rendering with a closing summary line."""
        shown = self.diagnostics if max_findings is None \
            else self.diagnostics[:max_findings]
        lines = [d.format() for d in shown]
        hidden = len(self.diagnostics) - len(shown)
        if hidden > 0:
            lines.append(f"... {hidden} more finding(s) suppressed")
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics)} finding(s) total"
        )
        return "\n".join(lines)


class DiagnosticBudget:
    """Per-rule diagnostic budget with a trailing "and N more" note.

    Array-level checks (the compiled-round ``FRS11x`` rules, the
    hyperperiod ``MDL4xx`` model checker) can produce thousands of
    findings from a single corruption; one example per (cycle, slot)
    pair helps nobody.  The budget keeps the first ``max_per_rule``
    findings of each rule and, on :meth:`close`, appends one summary
    finding per over-budget rule so the total count stays visible.
    """

    def __init__(self, report: Report, max_per_rule: int = 8) -> None:
        self._report = report
        self._max_per_rule = max_per_rule
        self._counts: Dict[str, int] = {}

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding, counting it against its rule's budget."""
        count = self._counts.get(diagnostic.rule_id, 0)
        self._counts[diagnostic.rule_id] = count + 1
        if count < self._max_per_rule:
            self._report.add(diagnostic)

    def count(self, rule_id: str) -> int:
        """Total findings seen for a rule (including suppressed ones)."""
        return self._counts.get(rule_id, 0)

    def close(self) -> None:
        """Emit the "and N more" note for every over-budget rule."""
        for rule_id, count in sorted(self._counts.items()):
            if count > self._max_per_rule:
                self._report.add(Diagnostic(
                    rule_id=rule_id, severity=Severity.ERROR,
                    location="round",
                    message=f"... and {count - self._max_per_rule} more "
                            f"{rule_id} finding(s) suppressed",
                    fix_hint="fix the first findings and re-verify",
                ))
