"""Canonical JSON: one byte sequence per value, or a loud error.

Everything the result store persists and the ``repro web`` API serves
is canonical JSON: keys sorted, separators compact, ASCII-safe, no
silent coercion.  Canonical bytes give three properties the results
subsystem is built on:

- **content addressing** -- the SHA-256 of the canonical bytes is the
  row id, so re-ingesting the same result converges to the same row;
- **byte-stable responses** -- two fetches of the same resource return
  identical bytes, so the ETag (= the content digest) is an exact
  cache validator;
- **no torn semantics** -- a value that cannot be represented raises
  :class:`CanonicalEncodeError` instead of degrading to ``str(value)``
  the way ``json.dumps(..., default=str)`` silently would.

Two coercions *are* legal, because they are lossless in intent and
must be deterministic in output, and both are reported through the
``on_coerce`` callback so callers can count them:

- numpy scalars (``np.float64``, ``np.int64`` ...) unwrap via
  ``.item()`` -- the vectorized engine emits them into counters and
  events;
- non-finite floats normalize to the strings ``"NaN"``,
  ``"Infinity"`` and ``"-Infinity"`` (canonical JSON has no NaN/Inf
  literal; ``allow_nan=False`` backstops this).

This module deliberately imports nothing from the rest of ``repro`` so
any layer (obs export, result store, web API) can use it without
import cycles.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Callable, Optional

__all__ = ["CanonicalEncodeError", "canonical_json_bytes",
           "content_digest", "normalize_value"]

#: Signature of the coercion callback: ``(path, detail)`` of one value
#: that was intentionally converted on its way into canonical JSON.
OnCoerce = Optional[Callable[[str, str], None]]


class CanonicalEncodeError(TypeError):
    """A value that canonical JSON refuses to represent.

    Subclasses :class:`TypeError` so call sites that guarded against
    ``json.dumps`` failures keep working.
    """


#: Sentinel distinguishing "not a numpy scalar" from an unwrapped 0.
_NOT_NUMPY = object()


def _coerce_numpy(value: object) -> object:
    """Unwrap a numpy scalar via ``.item()``; :data:`_NOT_NUMPY` otherwise.

    Duck-typed on purpose: the check costs one ``type().__module__``
    read and never imports numpy, so the encoder works (and stays
    cheap) in environments where numpy is absent.
    """
    if type(value).__module__ == "numpy" and hasattr(value, "item") \
            and not hasattr(value, "__len__"):
        try:
            return value.item()  # type: ignore[attr-defined]
        except (TypeError, ValueError):
            return _NOT_NUMPY  # a non-scalar ndarray: reject below
    return _NOT_NUMPY


def normalize_value(value: object, on_coerce: OnCoerce = None,
                    _path: str = "$") -> object:
    """Recursively normalize ``value`` into canonical-JSON-safe data.

    Args:
        value: Any composition of dict/list/tuple/str/int/float/bool/
            ``None`` (plus numpy scalars, which unwrap).
        on_coerce: Called once per intentional conversion with
            ``(path, detail)``; pass a counter hook to surface how much
            massaging an export needed.

    Returns:
        An equal value built only from JSON-native types, with
        non-finite floats replaced by their string names.

    Raises:
        CanonicalEncodeError: On any type (or dict key) with no
            canonical representation -- sets, bytes, dataclasses,
            arbitrary objects.  Fail loud, never ``str()`` silently.
    """
    unwrapped = _coerce_numpy(value)
    if unwrapped is not _NOT_NUMPY:
        if on_coerce is not None:
            on_coerce(_path, f"numpy {type(value).__name__}")
        value = unwrapped
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        name = "NaN" if math.isnan(value) else \
            ("Infinity" if value > 0 else "-Infinity")
        if on_coerce is not None:
            on_coerce(_path, f"non-finite float {name}")
        return name
    if isinstance(value, dict):
        out = {}
        for key in value:
            if not isinstance(key, str):
                raise CanonicalEncodeError(
                    f"{_path}: dict key {key!r} is {type(key).__name__}, "
                    f"canonical JSON requires string keys")
            out[key] = normalize_value(value[key], on_coerce,
                                       f"{_path}.{key}")
        return out
    if isinstance(value, (list, tuple)):
        return [normalize_value(item, on_coerce, f"{_path}[{index}]")
                for index, item in enumerate(value)]
    raise CanonicalEncodeError(
        f"{_path}: {type(value).__name__} has no canonical JSON "
        f"representation; convert it explicitly at the call site")


def canonical_json_bytes(value: object,
                         on_coerce: OnCoerce = None) -> bytes:
    """The one canonical byte serialization of ``value``.

    Keys sorted, ``(",", ":")`` separators, ASCII-escaped, newline-free
    -- two equal values always serialize to identical bytes, which is
    the property the content digests and HTTP ETags stand on.
    """
    normalized = normalize_value(value, on_coerce)
    return json.dumps(normalized, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, allow_nan=False).encode("ascii")


def content_digest(value: object) -> str:
    """SHA-256 hex digest of :func:`canonical_json_bytes`."""
    return hashlib.sha256(canonical_json_bytes(value)).hexdigest()
