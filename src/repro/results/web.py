"""``repro web``: read-only HTTP explorer over a result store.

A minimal asyncio HTTP/1.1 layer (stdlib only, same style as the
JSON-lines admission service in :mod:`repro.service.server`) that
serves the datasette-pattern read path over :class:`ResultStore`:
paginated, filterable JSON endpoints for campaigns, per-seed runs,
cross-engine-mode trace-digest diffs, metric tables, verify reports,
obs snapshots and service audits.

The response contract every endpoint honours:

- the body is **canonical JSON** (:mod:`repro.results.canonical`):
  two fetches of the same resource return *identical bytes*;
- ``ETag`` is the SHA-256 content digest of the body, so a client
  sending ``If-None-Match`` gets a bodyless ``304 Not Modified`` and a
  plain re-fetch gets the same ETag back with the same bytes -- the
  store's immutable content-addressed rows make responses infinitely
  cacheable;
- list endpoints share one pagination envelope: ``rows``, ``count``
  (rows in this page), ``total`` (rows matching the filter),
  ``limit``, ``offset`` and ``next_offset`` (``null`` on the last
  page);
- errors are canonical JSON too (``{"error": ..., "path": ...}``)
  with 400/404/405 status codes.

The server opens the store read-only: it can watch a database that a
campaign is still writing into (WAL readers never block the writer)
and can never corrupt it.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Callable, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.obs import NULL_OBS, ObsLike
from repro.results.canonical import canonical_json_bytes, content_digest
from repro.results.store import RUN_METRIC_COLUMNS, ResultStore

__all__ = ["MAX_REQUEST_BYTES", "MAX_PAGE_LIMIT", "ResultsWebService",
           "serve_web"]

#: Longest accepted request head (request line + headers).
MAX_REQUEST_BYTES = 16384

#: Hard ceiling on ``limit``; larger requests are clamped, not erred.
MAX_PAGE_LIMIT = 500


class _BadRequest(ValueError):
    """A malformed query parameter; becomes a canonical 400."""


def _int_param(params: Mapping[str, str], name: str,
               default: Optional[int]) -> Optional[int]:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise _BadRequest(f"query parameter {name}={raw!r} is not an "
                          f"integer") from None


def _float_param(params: Mapping[str, str],
                 name: str) -> Optional[float]:
    raw = params.get(name)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise _BadRequest(f"query parameter {name}={raw!r} is not a "
                          f"number") from None


def _page_params(params: Mapping[str, str]) -> Tuple[int, int]:
    limit = _int_param(params, "limit", 50)
    offset = _int_param(params, "offset", 0)
    assert limit is not None and offset is not None
    if limit < 1 or offset < 0:
        raise _BadRequest(
            f"limit must be >= 1 and offset >= 0, got limit={limit} "
            f"offset={offset}")
    return min(limit, MAX_PAGE_LIMIT), offset


def _envelope(rows: List[Dict[str, object]], total: int, limit: int,
              offset: int) -> Dict[str, object]:
    next_offset = offset + limit if offset + limit < total else None
    return {"rows": rows, "count": len(rows), "total": total,
            "limit": limit, "offset": offset,
            "next_offset": next_offset}


class ResultsWebService:
    """Serve one result store over HTTP (GET-only, read-only).

    Args:
        store: An open (typically read-only) :class:`ResultStore`.
        obs: Observability context; request traffic lands on it as
            ``web.requests``, ``web.not_modified``, ``web.errors``.
    """

    def __init__(self, store: ResultStore, obs: ObsLike = NULL_OBS) -> None:
        self.store = store
        self._obs = obs
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = asyncio.Event()

    # -- lifecycle (same shape as service.server.AdmissionService) -----

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        if self._server is not None:
            raise RuntimeError("web service already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port,
            limit=MAX_REQUEST_BYTES + 2)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    def install_signal_handlers(self) -> None:
        """Stop cleanly on SIGTERM/SIGINT (POSIX event loops)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.stop()))
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._closed.set()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                head = await self._read_head(reader)
                if head is None:
                    break
                keep_alive = await self._answer(head, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader) -> Optional[bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise
        if len(head) > MAX_REQUEST_BYTES:
            raise asyncio.LimitOverrunError("request head too long",
                                            len(head))
        return head

    async def _answer(self, head: bytes,
                      writer: asyncio.StreamWriter) -> bool:
        if self._obs.enabled:
            self._obs.inc("web.requests")
        try:
            request_line, headers = self._parse_head(head)
            method, target = request_line
        except ValueError:
            await self._send(writer, 400,
                             {"error": "malformed request"}, {}, False)
            return False
        keep_alive = headers.get("connection", "keep-alive") != "close"
        if method != "GET":
            await self._send(writer, 405,
                             {"error": f"method {method} not allowed",
                              "path": target}, headers, keep_alive)
            return keep_alive
        split = urlsplit(target)
        path = unquote(split.path)
        params = dict(parse_qsl(split.query, keep_blank_values=True))
        try:
            body = self._route(path, params)
        except _BadRequest as error:
            if self._obs.enabled:
                self._obs.inc("web.errors")
            await self._send(writer, 400,
                             {"error": str(error), "path": path},
                             headers, keep_alive)
            return keep_alive
        if body is None:
            if self._obs.enabled:
                self._obs.inc("web.errors")
            await self._send(writer, 404,
                             {"error": "not found", "path": path},
                             headers, keep_alive)
            return keep_alive
        await self._send(writer, 200, body, headers, keep_alive)
        return keep_alive

    @staticmethod
    def _parse_head(head: bytes,
                    ) -> Tuple[Tuple[str, str], Dict[str, str]]:
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ValueError(f"bad request line {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return (parts[0], parts[1]), headers

    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    body: object, headers: Mapping[str, str],
                    keep_alive: bool) -> None:
        payload = canonical_json_bytes(body) + b"\n"
        etag = f'"{content_digest(body)}"'
        reasons = {200: "OK", 304: "Not Modified", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed"}
        if status == 200 and headers.get("if-none-match") == etag:
            if self._obs.enabled:
                self._obs.inc("web.not_modified")
            status, payload = 304, b""
        head = [f"HTTP/1.1 {status} {reasons[status]}",
                "Content-Type: application/json",
                f"Content-Length: {len(payload)}",
                f"ETag: {etag}",
                "Cache-Control: no-cache",
                f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        writer.write("\r\n".join(head).encode("ascii") + b"\r\n\r\n"
                     + payload)
        await writer.drain()

    # -- routing -------------------------------------------------------

    def _route(self, path: str,
               params: Mapping[str, str]) -> Optional[object]:
        """Resolve one GET to a JSON-able body, or ``None`` for 404."""
        segments = [segment for segment in path.split("/") if segment]
        if not segments:
            return self._index()
        head, rest = segments[0], segments[1:]
        handlers: Dict[str, Callable[..., Optional[object]]] = {
            "campaigns": self._campaigns,
            "runs": self._runs,
            "digests": self._digests,
            "metrics": self._metrics,
            "verify": self._verify,
            "snapshots": self._snapshots,
            "audits": self._audits,
        }
        handler = handlers.get(head)
        if handler is None:
            return None
        return handler(rest, params)

    def _index(self) -> Dict[str, object]:
        return {
            "store": self.store.path,
            "tables": self.store.counts(),
            "endpoints": [
                "/campaigns", "/campaigns/<id>", "/campaigns/<id>/runs",
                "/runs/<id>", "/digests", "/digests/diff",
                "/metrics/<name>", "/verify/reports",
                "/verify/reports/<id>", "/snapshots", "/audits",
            ],
            "metrics": list(RUN_METRIC_COLUMNS),
        }

    def _campaigns(self, rest: List[str],
                   params: Mapping[str, str]) -> Optional[object]:
        if not rest:
            limit, offset = _page_params(params)
            rows, total = self.store.campaigns(
                scheduler=params.get("scheduler"),
                workload=params.get("workload"),
                engine_mode=params.get("engine_mode"),
                limit=limit, offset=offset)
            return _envelope(rows, total, limit, offset)
        if len(rest) == 1:
            return self.store.campaign(rest[0])
        if len(rest) == 2 and rest[1] == "runs":
            limit, offset = _page_params(params)
            rows, total = self.store.campaign_runs(
                rest[0], limit=limit, offset=offset,
                seed=_int_param(params, "seed", None))
            if total == 0 and self.store.campaign(rest[0]) is None:
                return None
            return _envelope(rows, total, limit, offset)
        return None

    def _runs(self, rest: List[str],
              params: Mapping[str, str]) -> Optional[object]:
        if len(rest) != 1:
            return None
        return self.store.run(rest[0])

    def _digests(self, rest: List[str],
                 params: Mapping[str, str]) -> Optional[object]:
        limit, offset = _page_params(params)
        if not rest:
            rows, total = self.store.digests(
                run_id=params.get("run_id"),
                engine_mode=params.get("engine_mode"),
                limit=limit, offset=offset)
            return _envelope(rows, total, limit, offset)
        if rest == ["diff"]:
            equal = params.get("equal")
            rows, total = self.store.digest_diff(
                scheduler=params.get("scheduler"),
                seed=_int_param(params, "seed", None),
                campaign_id=params.get("campaign"),
                equal=(None if equal is None
                       else equal not in ("0", "false", "no")),
                limit=limit, offset=offset)
            return _envelope(rows, total, limit, offset)
        return None

    def _metrics(self, rest: List[str],
                 params: Mapping[str, str]) -> Optional[object]:
        if len(rest) != 1:
            return None
        if rest[0] not in RUN_METRIC_COLUMNS:
            raise _BadRequest(
                f"unknown metric {rest[0]!r}; expected one of "
                f"{', '.join(RUN_METRIC_COLUMNS)}")
        limit, offset = _page_params(params)
        rows, total = self.store.metric_rows(
            rest[0],
            scheduler=params.get("scheduler"),
            seed=_int_param(params, "seed", None),
            min_value=_float_param(params, "min"),
            max_value=_float_param(params, "max"),
            limit=limit, offset=offset)
        body = _envelope(rows, total, limit, offset)
        body["metric"] = rest[0]
        return body

    def _verify(self, rest: List[str],
                params: Mapping[str, str]) -> Optional[object]:
        if not rest or rest[0] != "reports":
            return None
        if len(rest) == 1:
            limit, offset = _page_params(params)
            rows, total = self.store.verify_reports(
                target=params.get("target"), limit=limit, offset=offset)
            return _envelope(rows, total, limit, offset)
        if len(rest) == 2:
            return self.store.verify_report(rest[1])
        return None

    def _snapshots(self, rest: List[str],
                   params: Mapping[str, str]) -> Optional[object]:
        if rest:
            return None
        limit, offset = _page_params(params)
        rows, total = self.store.snapshots(
            scope=params.get("scope"), scope_id=params.get("scope_id"),
            limit=limit, offset=offset)
        return _envelope(rows, total, limit, offset)

    def _audits(self, rest: List[str],
                params: Mapping[str, str]) -> Optional[object]:
        if rest:
            return None
        limit, offset = _page_params(params)
        rows, total = self.store.service_audits_rows(
            workload=params.get("workload"), kind=params.get("kind"),
            limit=limit, offset=offset)
        return _envelope(rows, total, limit, offset)


async def serve_web(store_path: str, host: str = "127.0.0.1",
                    port: int = 8478,
                    obs: ObsLike = NULL_OBS) -> ResultsWebService:
    """Run the web explorer until SIGTERM/SIGINT stops it.

    Returns:
        The stopped service (its counters are still readable).
    """
    store = ResultStore(store_path, obs=obs, read_only=True)
    service = ResultsWebService(store, obs=obs)
    bound_host, bound_port = await service.start(host=host, port=port)
    service.install_signal_handlers()
    counts = store.counts()
    print(f"repro web: listening on {bound_host}:{bound_port} "
          f"(store {store_path}, {counts['campaigns']} campaigns, "
          f"{counts['runs']} runs)",
          file=sys.stderr, flush=True)
    try:
        await service.wait_closed()
    finally:
        store.close()
    return service
