"""Persistent results subsystem: canonical JSON, SQLite store, web API.

Three layers, bottom up:

- :mod:`repro.results.canonical` -- the one byte serialization every
  persisted artifact and every HTTP response uses (content addressing,
  byte-stable ETags, loud failures instead of silent ``str()``);
- :mod:`repro.results.store` -- :class:`ResultStore`, the WAL-mode
  SQLite database campaigns, runs, trace digests, verify reports, obs
  snapshots and service audits are ingested into atomically and
  idempotently;
- :mod:`repro.results.web` -- ``repro web``, the read-only paginated
  HTTP explorer over a store.
"""

from repro.results.canonical import (
    CanonicalEncodeError,
    canonical_json_bytes,
    content_digest,
    normalize_value,
)
from repro.results.store import RUN_METRIC_COLUMNS, SCHEMA_VERSION, ResultStore
from repro.results.web import ResultsWebService, serve_web

__all__ = [
    "CanonicalEncodeError",
    "RUN_METRIC_COLUMNS",
    "ResultStore",
    "ResultsWebService",
    "SCHEMA_VERSION",
    "canonical_json_bytes",
    "content_digest",
    "normalize_value",
    "serve_web",
]
