"""Persistent SQLite-backed store of reproduction results.

Every artifact the reproduction produces -- campaign summaries,
per-seed runs, trace digests per engine mode, verify reports, obs
counter snapshots, service audit samples -- lands in one WAL-mode
SQLite database behind the :class:`ResultStore` API, instead of the
ad-hoc JSON/JSONL files each subsystem used to scatter.

Content addressing
------------------

Rows are immutable and **content-addressed**: the primary key of every
record is the SHA-256 of its canonical JSON payload (see
:mod:`repro.results.canonical`), and per-seed runs reuse the campaign
cache's configuration fingerprint (:func:`repro.experiments.cache.cache_key`)
with the engine mode stripped -- the three engines are trace-equivalent
by contract, so a run's identity must not depend on which one produced
it.  Ingesting the same result twice therefore converges to the same
row (``INSERT OR IGNORE``), which makes every write idempotent: two
campaign workers, a retried CI job, and a warm re-run all agree.

Durability
----------

- WAL journal mode: readers (the ``repro web`` layer) never block the
  writer and a crashed writer never leaves a torn page;
- every multi-row ingest runs inside one ``BEGIN IMMEDIATE``
  transaction via :meth:`ResultStore.transaction` -- a process killed
  mid-ingest (power loss, ``kill -9``) rolls back to *nothing*, never
  to half a campaign;
- ``busy_timeout`` makes concurrent writers queue instead of failing.

The one deliberate deviation from trace equivalence is *observed*, not
assumed: if a ``(run, engine_mode)`` digest arrives that disagrees with
a stored one, the store keeps the first write, increments
``results.digest_conflicts`` and warns -- that situation means an
engine broke the equivalence contract and must be loud.
"""

from __future__ import annotations

import os
import sqlite3
import warnings
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.results.canonical import canonical_json_bytes, content_digest

if TYPE_CHECKING:  # runtime imports stay lazy (heavy packages)
    from repro.experiments.campaign import CampaignResult
    from repro.experiments.runner import ExperimentResult
    from repro.obs.observability import ObsLike
    from repro.verify.diagnostics import Report

__all__ = ["SCHEMA_VERSION", "RUN_METRIC_COLUMNS", "ResultStore"]

#: Bump on any table/column change; old stores are rejected loudly
#: instead of being half-understood.
SCHEMA_VERSION = 1

#: Numeric per-run metric columns (also the ``/metrics/<name>`` facets
#: of the web API).  Extracted from the run payload into real columns
#: so filters run as SQL, not as JSON post-processing.
RUN_METRIC_COLUMNS = (
    "running_time_ms",
    "bandwidth_utilization",
    "efficiency",
    "static_latency_ms",
    "dynamic_latency_ms",
    "deadline_miss_ratio",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id          TEXT PRIMARY KEY,
    scheduler   TEXT NOT NULL,
    workload    TEXT NOT NULL,
    engine_mode TEXT NOT NULL,
    seeds       INTEGER NOT NULL,
    failures    INTEGER NOT NULL,
    config_key  TEXT NOT NULL,
    payload     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_campaigns_facets
    ON campaigns (scheduler, workload, engine_mode);
CREATE TABLE IF NOT EXISTS runs (
    id                    TEXT PRIMARY KEY,
    scheduler             TEXT NOT NULL,
    seed                  INTEGER NOT NULL,
    cycles                INTEGER NOT NULL,
    produced              INTEGER NOT NULL,
    delivered             INTEGER NOT NULL,
    running_time_ms       REAL NOT NULL,
    bandwidth_utilization REAL NOT NULL,
    efficiency            REAL NOT NULL,
    static_latency_ms     REAL NOT NULL,
    dynamic_latency_ms    REAL NOT NULL,
    deadline_miss_ratio   REAL NOT NULL,
    payload               TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_facets ON runs (scheduler, seed);
CREATE TABLE IF NOT EXISTS campaign_runs (
    campaign_id TEXT NOT NULL REFERENCES campaigns (id),
    run_id      TEXT NOT NULL REFERENCES runs (id),
    seed        INTEGER NOT NULL,
    PRIMARY KEY (campaign_id, run_id)
);
CREATE TABLE IF NOT EXISTS trace_digests (
    run_id      TEXT NOT NULL,
    engine_mode TEXT NOT NULL,
    digest      TEXT NOT NULL,
    records     INTEGER NOT NULL,
    cycles      INTEGER NOT NULL,
    PRIMARY KEY (run_id, engine_mode)
);
CREATE TABLE IF NOT EXISTS verify_reports (
    id       TEXT PRIMARY KEY,
    target   TEXT NOT NULL,
    errors   INTEGER NOT NULL,
    warnings INTEGER NOT NULL,
    findings INTEGER NOT NULL,
    payload  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS verify_diagnostics (
    report_id TEXT NOT NULL REFERENCES verify_reports (id),
    ordinal   INTEGER NOT NULL,
    rule_id   TEXT NOT NULL,
    severity  TEXT NOT NULL,
    location  TEXT NOT NULL,
    message   TEXT NOT NULL,
    hint      TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (report_id, ordinal)
);
CREATE TABLE IF NOT EXISTS obs_snapshots (
    id       TEXT PRIMARY KEY,
    scope    TEXT NOT NULL,
    scope_id TEXT NOT NULL,
    seed     INTEGER,
    counters TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_obs_scope ON obs_snapshots (scope, scope_id);
CREATE TABLE IF NOT EXISTS service_audits (
    id          TEXT PRIMARY KEY,
    workload    TEXT NOT NULL,
    engine_mode TEXT NOT NULL,
    kind        TEXT NOT NULL,
    ordinal     INTEGER NOT NULL,
    payload     TEXT NOT NULL
);
"""

#: Tables the web index page reports row counts for, in display order.
_TABLES = ("campaigns", "runs", "campaign_runs", "trace_digests",
           "verify_reports", "verify_diagnostics", "obs_snapshots",
           "service_audits")


def _placeholders(row: Mapping[str, object]) -> Tuple[str, str, list]:
    columns = list(row)
    return (", ".join(columns),
            ", ".join("?" for _ in columns),
            [row[column] for column in columns])


class ResultStore:
    """One SQLite results database (see module docstring).

    Args:
        path: Database file; parent directories are created.  Pass
            ``read_only=True`` (the web layer does) to refuse creation
            and open the file immutable-by-contract.
        obs: Observability context; ingest counters
            (``results.campaigns_recorded``, ``results.runs_recorded``,
            ``results.digest_conflicts`` ...) land on it when enabled.
    """

    def __init__(self, path: str, obs: Optional["ObsLike"] = None,
                 read_only: bool = False) -> None:
        from repro.obs.observability import NULL_OBS

        self.path = path
        self.read_only = read_only
        self._obs = obs if obs is not None else NULL_OBS
        if read_only:
            if not os.path.exists(path):
                raise FileNotFoundError(
                    f"result store {path!r} does not exist (read-only "
                    f"open never creates one)")
            self._conn = sqlite3.connect(
                f"file:{path}?mode=ro", uri=True, isolation_level=None)
        else:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
            self._conn = sqlite3.connect(path, isolation_level=None)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA busy_timeout=10000")
        self._conn.execute("PRAGMA foreign_keys=ON")
        if not read_only:
            # Not executescript: it implicitly commits, which would break
            # the surrounding transaction.  No statement here contains a
            # literal ";", so the split is safe.
            with self.transaction():
                for statement in _SCHEMA.split(";"):
                    if statement.strip():
                        self._conn.execute(statement)
                self._conn.execute(
                    "INSERT OR IGNORE INTO store_meta (key, value) "
                    "VALUES ('schema_version', ?)", (str(SCHEMA_VERSION),))
        self._check_schema()

    def _check_schema(self) -> None:
        try:
            row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key = "
                "'schema_version'").fetchone()
        except sqlite3.DatabaseError as error:
            raise ValueError(
                f"{self.path}: not a result store ({error})") from error
        if row is None or int(row["value"]) != SCHEMA_VERSION:
            found = None if row is None else row["value"]
            raise ValueError(
                f"{self.path}: result store schema {found!r} is not "
                f"supported (expected {SCHEMA_VERSION})")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- write side ----------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[sqlite3.Connection]:
        """One atomic ingest: all rows land, or none do.

        ``BEGIN IMMEDIATE`` takes the write lock up front so two
        concurrent ingests serialize (queueing on ``busy_timeout``)
        instead of deadlocking mid-transaction; a crash -- including
        ``kill -9`` -- before ``COMMIT`` rolls the journal back to the
        pre-ingest state.
        """
        if self.read_only:
            raise ValueError(f"{self.path}: store is read-only")
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield self._conn
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        else:
            self._conn.execute("COMMIT")

    def _count(self, name: str, amount: int = 1) -> None:
        if self._obs.enabled:
            self._obs.inc(name, amount)

    def _insert_ignore(self, table: str, row: Mapping[str, object]) -> bool:
        columns, marks, values = _placeholders(row)
        cursor = self._conn.execute(
            f"INSERT OR IGNORE INTO {table} ({columns}) "  # noqa: S608
            f"VALUES ({marks})", values)
        return cursor.rowcount > 0

    def record_campaign(self, campaign: "CampaignResult",
                        experiment_kwargs: Mapping[str, object],
                        workload: str = "",
                        meta: Optional[Mapping[str, object]] = None) -> str:
        """Ingest one completed campaign atomically; returns its id.

        Args:
            campaign: A :class:`repro.experiments.campaign.CampaignResult`.
            experiment_kwargs: The exact kwargs the campaign forwarded
                to ``run_experiment`` -- they are the configuration half
                of every run's content key.
            workload: Workload label for faceting (free-form).
            meta: Extra context folded into the campaign payload (and
                therefore into its content id).

        The campaign row, its per-seed run rows, the campaign->run
        links, each run's trace digest under the campaign's engine
        mode, and the per-seed obs counter snapshots all commit in one
        transaction.
        """
        from repro.sim.engine import EngineMode

        from repro.experiments.cache import config_key as _config_key

        engine_mode = EngineMode.parse(
            experiment_kwargs.get("engine_mode", EngineMode.STEPPER)).value
        config_key = _config_key(campaign.scheduler, experiment_kwargs)
        payload: Dict[str, object] = {
            "scheduler": campaign.scheduler,
            "workload": workload,
            "engine_mode": engine_mode,
            "seeds": list(campaign.seeds),
            "completed_seeds": campaign.completed_seeds,
            "failures": [{"seed": failure.seed,
                          "attempts": failure.attempts}
                         for failure in campaign.failures],
            "config_key": config_key,
            "summaries": {
                name: {
                    "samples": summary.samples,
                    "mean": summary.mean,
                    "stdev": summary.stdev,
                    "ci_low": summary.ci_low,
                    "ci_high": summary.ci_high,
                    "minimum": summary.minimum,
                    "maximum": summary.maximum,
                }
                for name, summary in sorted(campaign.summaries.items())
            },
            "meta": dict(meta or {}),
        }
        campaign_id = content_digest(payload)
        with self.transaction():
            inserted = self._insert_ignore("campaigns", {
                "id": campaign_id,
                "scheduler": campaign.scheduler,
                "workload": workload,
                "engine_mode": engine_mode,
                "seeds": len(campaign.seeds),
                "failures": len(campaign.failures),
                "config_key": config_key,
                "payload": canonical_json_bytes(payload).decode("ascii"),
            })
            for seed, result in zip(campaign.completed_seeds,
                                    campaign.results):
                run_id = self._ingest_run(result, campaign.scheduler, seed,
                                          experiment_kwargs, engine_mode)
                self._insert_ignore("campaign_runs", {
                    "campaign_id": campaign_id, "run_id": run_id,
                    "seed": seed,
                })
            for seed, snapshot in zip(campaign.completed_seeds,
                                      campaign.obs_snapshots):
                self._ingest_snapshot("campaign", campaign_id, seed,
                                      snapshot.counters)
        if inserted:
            self._count("results.campaigns_recorded")
        return campaign_id

    def record_run(self, result: "ExperimentResult", seed: int,
                   experiment_kwargs: Mapping[str, object]) -> str:
        """Ingest one standalone experiment run; returns its run id."""
        from repro.sim.engine import EngineMode

        engine_mode = EngineMode.parse(
            experiment_kwargs.get("engine_mode",
                                  getattr(result, "engine_mode",
                                          EngineMode.STEPPER))).value
        with self.transaction():
            run_id = self._ingest_run(result, result.scheduler, seed,
                                      experiment_kwargs, engine_mode)
        return run_id

    @staticmethod
    def run_config_key(scheduler: str, seed: int,
                       experiment_kwargs: Mapping[str, object]) -> str:
        """Content key of one run: configuration x seed, engine-free.

        Delegates to :func:`repro.experiments.cache.run_key` -- the
        campaign cache's fingerprint machinery with ``engine_mode``
        stripped, so trace-equivalent engines share run identity and
        the digest-diff endpoint can line their digests up.
        """
        from repro.experiments.cache import run_key

        return run_key(scheduler, seed, experiment_kwargs)

    def _ingest_run(self, result: "ExperimentResult", scheduler: str,
                    seed: int,
                    experiment_kwargs: Mapping[str, object],
                    engine_mode: str) -> str:
        from repro.sim.trace import trace_digest

        run_id = self.run_config_key(scheduler, seed, experiment_kwargs)
        metrics = result.metrics.summary_row()
        payload: Dict[str, object] = {
            "scheduler": scheduler,
            "seed": seed,
            "cycles": result.cycles_run,
            "metrics": dict(sorted(metrics.items())),
            "produced": result.metrics.produced_instances,
            "delivered": result.metrics.delivered_instances,
            "counters": dict(sorted(result.counters.items())),
        }
        row: Dict[str, object] = {
            "id": run_id,
            "scheduler": scheduler,
            "seed": seed,
            "cycles": result.cycles_run,
            "produced": result.metrics.produced_instances,
            "delivered": result.metrics.delivered_instances,
            "payload": canonical_json_bytes(payload).decode("ascii"),
        }
        for column in RUN_METRIC_COLUMNS:
            row[column] = float(metrics[column])
        if self._insert_ignore("runs", row):
            self._count("results.runs_recorded")
        trace = getattr(result.cluster, "trace", None)
        if trace is not None:
            self._ingest_digest(run_id, engine_mode, trace_digest(trace),
                                len(trace), result.cycles_run)
        return run_id

    def _ingest_digest(self, run_id: str, engine_mode: str, digest: str,
                       records: int, cycles: int) -> None:
        existing = self._conn.execute(
            "SELECT digest FROM trace_digests WHERE run_id = ? AND "
            "engine_mode = ?", (run_id, engine_mode)).fetchone()
        if existing is not None:
            if existing["digest"] != digest:
                # First write wins; the disagreement itself is the
                # finding -- an engine violated trace equivalence.
                self._count("results.digest_conflicts")
                warnings.warn(
                    f"trace digest conflict for run {run_id[:12]} "
                    f"({engine_mode}): stored {existing['digest'][:12]} "
                    f"!= new {digest[:12]}; keeping the stored digest",
                    RuntimeWarning, stacklevel=4)
            return
        self._insert_ignore("trace_digests", {
            "run_id": run_id, "engine_mode": engine_mode,
            "digest": digest, "records": records, "cycles": cycles,
        })
        self._count("results.digests_recorded")

    def record_trace_digest(self, run_id: str, engine_mode: str,
                            digest: str, records: int,
                            cycles: int) -> None:
        """Record one (run, engine mode) trace digest."""
        with self.transaction():
            self._ingest_digest(run_id, engine_mode, digest, records,
                                cycles)

    def record_verify_report(self, report: "Report", target: str) -> str:
        """Persist one :class:`repro.verify.Report`; returns its id."""
        payload = {
            "target": target,
            "diagnostics": [diagnostic.to_row() for diagnostic in report],
        }
        report_id = content_digest(payload)
        with self.transaction():
            inserted = self._insert_ignore("verify_reports", {
                "id": report_id,
                "target": target,
                "errors": len(report.errors),
                "warnings": len(report.warnings),
                "findings": len(report),
                "payload": canonical_json_bytes(payload).decode("ascii"),
            })
            if inserted:
                for ordinal, diagnostic in enumerate(report):
                    self._insert_ignore("verify_diagnostics", {
                        "report_id": report_id,
                        "ordinal": ordinal,
                        "rule_id": diagnostic.rule_id,
                        "severity": diagnostic.severity.value,
                        "location": diagnostic.location,
                        "message": diagnostic.message,
                        "hint": diagnostic.fix_hint,
                    })
        if inserted:
            self._count("results.verify_reports_recorded")
        return report_id

    def _ingest_snapshot(self, scope: str, scope_id: str,
                         seed: Optional[int],
                         counters: Mapping[str, int]) -> str:
        payload = {"scope": scope, "scope_id": scope_id, "seed": seed,
                   "counters": dict(sorted(counters.items()))}
        snapshot_id = content_digest(payload)
        if self._insert_ignore("obs_snapshots", {
            "id": snapshot_id, "scope": scope, "scope_id": scope_id,
            "seed": seed,
            "counters": canonical_json_bytes(
                payload["counters"]).decode("ascii"),
        }):
            self._count("results.snapshots_recorded")
        return snapshot_id

    def record_obs_snapshot(self, scope: str, scope_id: str,
                            counters: Mapping[str, int],
                            seed: Optional[int] = None) -> str:
        """Persist one deterministic counter snapshot; returns its id."""
        with self.transaction():
            return self._ingest_snapshot(scope, scope_id, seed, counters)

    def record_service_audit(self, workload: str, engine_mode: str,
                             kind: str, ordinal: int,
                             payload: Mapping[str, object]) -> str:
        """Persist one service audit sample (or drain summary)."""
        full = {"workload": workload, "engine_mode": engine_mode,
                "kind": kind, "ordinal": ordinal,
                "payload": dict(payload)}
        audit_id = content_digest(full)
        with self.transaction():
            if self._insert_ignore("service_audits", {
                "id": audit_id, "workload": workload,
                "engine_mode": engine_mode, "kind": kind,
                "ordinal": ordinal,
                "payload": canonical_json_bytes(
                    full["payload"]).decode("ascii"),
            }):
                self._count("results.audits_recorded")
        return audit_id

    # -- read side -----------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Row count per table (the web index page)."""
        return {
            table: self._conn.execute(
                f"SELECT COUNT(*) AS n FROM {table}"  # noqa: S608
            ).fetchone()["n"]
            for table in _TABLES
        }

    @staticmethod
    def _facet(clauses: List[str], values: List[object], column: str,
               value: Optional[object]) -> None:
        if value is not None:
            clauses.append(f"{column} = ?")
            values.append(value)

    def _paged(self, base: str, order: str, clauses: List[str],
               values: List[object], limit: int,
               offset: int) -> Tuple[List[sqlite3.Row], int]:
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        total = self._conn.execute(
            f"SELECT COUNT(*) AS n FROM ({base}{where})",  # noqa: S608
            values).fetchone()["n"]
        rows = self._conn.execute(
            f"{base}{where} ORDER BY {order} LIMIT ? OFFSET ?",  # noqa: S608
            [*values, limit, offset]).fetchall()
        return rows, total

    def campaigns(self, scheduler: Optional[str] = None,
                  workload: Optional[str] = None,
                  engine_mode: Optional[str] = None,
                  limit: int = 50,
                  offset: int = 0) -> Tuple[List[Dict[str, object]], int]:
        """Faceted campaign listing; returns ``(rows, total)``."""
        clauses: List[str] = []
        values: List[object] = []
        self._facet(clauses, values, "scheduler", scheduler)
        self._facet(clauses, values, "workload", workload)
        self._facet(clauses, values, "engine_mode", engine_mode)
        rows, total = self._paged(
            "SELECT id, scheduler, workload, engine_mode, seeds, "
            "failures, config_key FROM campaigns",
            "scheduler, workload, engine_mode, id",
            clauses, values, limit, offset)
        return [dict(row) for row in rows], total

    def campaign(self, campaign_id: str) -> Optional[Dict[str, object]]:
        """Full campaign payload plus its run links, or ``None``."""
        row = self._conn.execute(
            "SELECT payload FROM campaigns WHERE id = ?",
            (campaign_id,)).fetchone()
        if row is None:
            return None
        import json

        payload: Dict[str, object] = json.loads(row["payload"])
        links = self._conn.execute(
            "SELECT run_id, seed FROM campaign_runs WHERE campaign_id "
            "= ? ORDER BY seed, run_id", (campaign_id,)).fetchall()
        payload["id"] = campaign_id
        payload["runs"] = [dict(link) for link in links]
        return payload

    def campaign_runs(self, campaign_id: str, limit: int = 50,
                      offset: int = 0,
                      seed: Optional[int] = None,
                      ) -> Tuple[List[Dict[str, object]], int]:
        """Per-seed run rows of one campaign; ``(rows, total)``."""
        clauses = ["campaign_runs.campaign_id = ?"]
        values: List[object] = [campaign_id]
        if seed is not None:
            clauses.append("campaign_runs.seed = ?")
            values.append(seed)
        rows, total = self._paged(
            "SELECT runs.id, runs.scheduler, runs.seed, runs.cycles, "
            "runs.produced, runs.delivered, "
            + ", ".join(f"runs.{c}" for c in RUN_METRIC_COLUMNS)
            + " FROM campaign_runs JOIN runs ON runs.id = "
              "campaign_runs.run_id",
            "runs.seed, runs.id", clauses, values, limit, offset)
        return [dict(row) for row in rows], total

    def run(self, run_id: str) -> Optional[Dict[str, object]]:
        """Full run payload plus digests and campaign memberships."""
        row = self._conn.execute(
            "SELECT payload FROM runs WHERE id = ?", (run_id,)).fetchone()
        if row is None:
            return None
        import json

        payload: Dict[str, object] = json.loads(row["payload"])
        payload["id"] = run_id
        payload["digests"] = {
            digest["engine_mode"]: {"digest": digest["digest"],
                                    "records": digest["records"],
                                    "cycles": digest["cycles"]}
            for digest in self._conn.execute(
                "SELECT engine_mode, digest, records, cycles FROM "
                "trace_digests WHERE run_id = ? ORDER BY engine_mode",
                (run_id,))
        }
        payload["campaigns"] = [
            link["campaign_id"] for link in self._conn.execute(
                "SELECT campaign_id FROM campaign_runs WHERE run_id = ? "
                "ORDER BY campaign_id", (run_id,))
        ]
        return payload

    def digests(self, run_id: Optional[str] = None,
                engine_mode: Optional[str] = None,
                limit: int = 50,
                offset: int = 0) -> Tuple[List[Dict[str, object]], int]:
        """Raw digest rows; ``(rows, total)``."""
        clauses: List[str] = []
        values: List[object] = []
        self._facet(clauses, values, "run_id", run_id)
        self._facet(clauses, values, "engine_mode", engine_mode)
        rows, total = self._paged(
            "SELECT run_id, engine_mode, digest, records, cycles "
            "FROM trace_digests",
            "run_id, engine_mode", clauses, values, limit, offset)
        return [dict(row) for row in rows], total

    def digest_diff(self, scheduler: Optional[str] = None,
                    seed: Optional[int] = None,
                    campaign_id: Optional[str] = None,
                    equal: Optional[bool] = None,
                    limit: int = 50,
                    offset: int = 0) -> Tuple[List[Dict[str, object]], int]:
        """Cross-engine-mode digest comparison per run.

        One row per run that has at least one digest: the digest under
        every engine mode that produced one, and ``equal`` -- whether
        they all agree (the trace-equivalence contract, checked against
        stored history instead of within one process).  Pass ``equal``
        to keep only agreeing (``True``) or diverging (``False``) runs
        -- filtered in SQL so totals and pagination stay consistent.
        """
        clauses = []
        values: List[object] = []
        self._facet(clauses, values, "runs.scheduler", scheduler)
        self._facet(clauses, values, "runs.seed", seed)
        if campaign_id is not None:
            clauses.append(
                "runs.id IN (SELECT run_id FROM campaign_runs WHERE "
                "campaign_id = ?)")
            values.append(campaign_id)
        if equal is not None:
            comparison = "<= 1" if equal else "> 1"
            clauses.append(
                "runs.id IN (SELECT run_id FROM trace_digests "
                f"GROUP BY run_id HAVING COUNT(DISTINCT digest) "
                f"{comparison})")
        rows, total = self._paged(
            "SELECT DISTINCT runs.id, runs.scheduler, runs.seed "
            "FROM runs JOIN trace_digests ON trace_digests.run_id = "
            "runs.id",
            "runs.scheduler, runs.seed, runs.id",
            clauses, values, limit, offset)
        out = []
        for row in rows:
            digests = {
                digest["engine_mode"]: digest["digest"]
                for digest in self._conn.execute(
                    "SELECT engine_mode, digest FROM trace_digests "
                    "WHERE run_id = ? ORDER BY engine_mode",
                    (row["id"],))
            }
            out.append({
                "run_id": row["id"],
                "scheduler": row["scheduler"],
                "seed": row["seed"],
                "digests": digests,
                "modes": len(digests),
                "equal": len(set(digests.values())) <= 1,
            })
        return out, total

    def metric_rows(self, metric: str,
                    scheduler: Optional[str] = None,
                    seed: Optional[int] = None,
                    min_value: Optional[float] = None,
                    max_value: Optional[float] = None,
                    limit: int = 50,
                    offset: int = 0) -> Tuple[List[Dict[str, object]], int]:
        """One metric across all stored runs, with range filters.

        The paper's miss-ratio/latency tables as a query: ``metric``
        must be one of :data:`RUN_METRIC_COLUMNS`.
        """
        if metric not in RUN_METRIC_COLUMNS:
            raise ValueError(
                f"unknown metric {metric!r}; expected one of "
                f"{RUN_METRIC_COLUMNS}")
        clauses: List[str] = []
        values: List[object] = []
        self._facet(clauses, values, "scheduler", scheduler)
        self._facet(clauses, values, "seed", seed)
        if min_value is not None:
            clauses.append(f"{metric} >= ?")
            values.append(min_value)
        if max_value is not None:
            clauses.append(f"{metric} <= ?")
            values.append(max_value)
        rows, total = self._paged(
            f"SELECT id, scheduler, seed, cycles, {metric} AS value "  # noqa: S608
            f"FROM runs",
            "scheduler, seed, id", clauses, values, limit, offset)
        return [dict(row) for row in rows], total

    def verify_reports(self, target: Optional[str] = None,
                       limit: int = 50,
                       offset: int = 0) -> Tuple[List[Dict[str, object]], int]:
        """Verify-report listing; ``(rows, total)``."""
        clauses: List[str] = []
        values: List[object] = []
        self._facet(clauses, values, "target", target)
        rows, total = self._paged(
            "SELECT id, target, errors, warnings, findings FROM "
            "verify_reports",
            "target, id", clauses, values, limit, offset)
        return [dict(row) for row in rows], total

    def verify_report(self, report_id: str) -> Optional[Dict[str, object]]:
        """One verify report with its ordered diagnostics."""
        row = self._conn.execute(
            "SELECT id, target, errors, warnings, findings FROM "
            "verify_reports WHERE id = ?", (report_id,)).fetchone()
        if row is None:
            return None
        out = dict(row)
        out["diagnostics"] = [
            dict(diagnostic) for diagnostic in self._conn.execute(
                "SELECT ordinal, rule_id, severity, location, message, "
                "hint FROM verify_diagnostics WHERE report_id = ? "
                "ORDER BY ordinal", (report_id,))
        ]
        return out

    def snapshots(self, scope: Optional[str] = None,
                  scope_id: Optional[str] = None,
                  limit: int = 50,
                  offset: int = 0) -> Tuple[List[Dict[str, object]], int]:
        """Obs counter snapshots; counters come back parsed."""
        import json

        clauses: List[str] = []
        values: List[object] = []
        self._facet(clauses, values, "scope", scope)
        self._facet(clauses, values, "scope_id", scope_id)
        rows, total = self._paged(
            "SELECT id, scope, scope_id, seed, counters FROM "
            "obs_snapshots",
            "scope, scope_id, seed, id", clauses, values, limit, offset)
        out = []
        for row in rows:
            entry = dict(row)
            entry["counters"] = json.loads(entry["counters"])
            out.append(entry)
        return out, total

    def service_audits_rows(self, workload: Optional[str] = None,
                            kind: Optional[str] = None,
                            limit: int = 50,
                            offset: int = 0,
                            ) -> Tuple[List[Dict[str, object]], int]:
        """Service audit samples; payloads come back parsed."""
        import json

        clauses: List[str] = []
        values: List[object] = []
        self._facet(clauses, values, "workload", workload)
        self._facet(clauses, values, "kind", kind)
        rows, total = self._paged(
            "SELECT id, workload, engine_mode, kind, ordinal, payload "
            "FROM service_audits",
            "workload, kind, ordinal, id", clauses, values, limit, offset)
        out = []
        for row in rows:
            entry = dict(row)
            entry["payload"] = json.loads(entry["payload"])
            out.append(entry)
        return out, total
