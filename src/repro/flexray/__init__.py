"""FlexRay protocol substrate.

A cycle-accurate software model of a FlexRay cluster, built from scratch:
the time hierarchy (macroticks / cycles), frame format, TDMA static
segment, FTDMA dynamic segment with minislot counting, dual channels,
controller-host interface buffering, nodes and cluster topologies.

The model follows the FlexRay 2.1 protocol description summarized in
Section II of the paper.  All timing arithmetic is in integer macroticks.
"""

from repro.flexray.arrivals import (
    ArrivalMultiplexer,
    MessageSource,
    PeriodicSource,
    Release,
    SporadicSource,
)
from repro.flexray.channel import Channel, ChannelSet
from repro.flexray.chi import ControllerHostInterface, PriorityOutputQueue, StaticBuffer
from repro.flexray.cluster import FlexRayCluster
from repro.flexray.clock import MacrotickClock
from repro.flexray.controller import CommunicationController, ProtocolPhase
from repro.flexray.cycle import CycleLayout
from repro.flexray.encoding import (
    EncodedFrame,
    encoded_frame_bits,
    frame_crc,
    header_crc,
)
from repro.flexray.dynamic_segment import DynamicSegmentEngine, DynamicSlotResult
from repro.flexray.frame import Frame, FrameKind, PendingFrame, frame_duration_mt
from repro.flexray.node import EcuNode
from repro.flexray.params import (
    FRAME_OVERHEAD_BITS,
    MAX_PAYLOAD_BITS,
    FlexRayParams,
    paper_dynamic_preset,
    paper_static_preset,
)
from repro.flexray.policy import SchedulerPolicy
from repro.flexray.schedule import (
    ChannelStrategy,
    ScheduleInfeasibleError,
    ScheduleTable,
    SlotAssignment,
    build_dual_schedule,
    build_schedule,
    patterns_conflict,
    repetition_for_period,
)
from repro.flexray.signal import Signal, SignalSet
from repro.flexray.slots import MinislotCounter, SlotCounter
from repro.flexray.startup import StartupNode, StartupPhase, StartupSimulation
from repro.flexray.static_segment import StaticSegmentEngine
from repro.flexray.sync import ClockSyncService, fault_tolerant_midpoint
from repro.flexray.topology import BusTopology, HybridTopology, StarTopology, Topology
from repro.flexray.wakeup import WakeupNode, WakeupResult, WakeupSimulation, WakeupState

__all__ = [
    "ArrivalMultiplexer",
    "BusTopology",
    "Channel",
    "ChannelSet",
    "ChannelStrategy",
    "CommunicationController",
    "ControllerHostInterface",
    "CycleLayout",
    "ClockSyncService",
    "DynamicSegmentEngine",
    "DynamicSlotResult",
    "EncodedFrame",
    "EcuNode",
    "FRAME_OVERHEAD_BITS",
    "FlexRayCluster",
    "patterns_conflict",
    "FlexRayParams",
    "Frame",
    "FrameKind",
    "HybridTopology",
    "MAX_PAYLOAD_BITS",
    "MacrotickClock",
    "MessageSource",
    "MinislotCounter",
    "PendingFrame",
    "PeriodicSource",
    "PriorityOutputQueue",
    "ProtocolPhase",
    "Release",
    "ScheduleInfeasibleError",
    "ScheduleTable",
    "SchedulerPolicy",
    "Signal",
    "SignalSet",
    "SlotAssignment",
    "SlotCounter",
    "SporadicSource",
    "StarTopology",
    "StartupNode",
    "StartupPhase",
    "StartupSimulation",
    "StaticBuffer",
    "StaticSegmentEngine",
    "Topology",
    "WakeupNode",
    "WakeupResult",
    "WakeupSimulation",
    "WakeupState",
    "build_dual_schedule",
    "build_schedule",
    "encoded_frame_bits",
    "fault_tolerant_midpoint",
    "frame_crc",
    "header_crc",
    "frame_duration_mt",
    "paper_dynamic_preset",
    "paper_static_preset",
    "repetition_for_period",
]
