"""FlexRay backend: the first protocol behind the neutral core.

The cycle-accurate engine itself (time hierarchy, frame model, TDMA
static segment, FTDMA dynamic segment, channels, CHI buffering, nodes,
topologies) lives in :mod:`repro.protocol`; this package pins FlexRay's
parameter defaults and frame-overhead model (:mod:`repro.flexray.params`),
the FlexRay-specific physical-layer services (encoding, wakeup, startup,
clock sync, bus guardian), and the backend registration
(:mod:`repro.flexray.backend`).  Every name the pre-refactor package
exported is still importable from here.

The model follows the FlexRay 2.1 protocol description summarized in
Section II of the paper.  All timing arithmetic is in integer macroticks.
"""

from repro.protocol.arrivals import (
    ArrivalMultiplexer,
    MessageSource,
    PeriodicSource,
    Release,
    SporadicSource,
)
from repro.protocol.channel import Channel, ChannelSet
from repro.protocol.chi import ControllerHostInterface, PriorityOutputQueue, StaticBuffer
from repro.flexray.cluster import FlexRayCluster
from repro.protocol.clock import MacrotickClock
from repro.protocol.controller import CommunicationController, ProtocolPhase
from repro.protocol.cycle import CycleLayout
from repro.flexray.encoding import (
    EncodedFrame,
    encoded_frame_bits,
    frame_crc,
    header_crc,
)
from repro.protocol.dynamic_segment import DynamicSegmentEngine, DynamicSlotResult
from repro.protocol.frame import Frame, FrameKind, PendingFrame, frame_duration_mt
from repro.protocol.node import EcuNode
from repro.flexray.params import (
    FRAME_OVERHEAD_BITS,
    MAX_PAYLOAD_BITS,
    FlexRayParams,
    paper_dynamic_preset,
    paper_static_preset,
)
from repro.protocol.policy import SchedulerPolicy
from repro.protocol.schedule import (
    ChannelStrategy,
    ScheduleInfeasibleError,
    ScheduleTable,
    SlotAssignment,
    build_dual_schedule,
    build_schedule,
    patterns_conflict,
    repetition_for_period,
)
from repro.protocol.signal import Signal, SignalSet
from repro.protocol.slots import MinislotCounter, SlotCounter
from repro.flexray.startup import StartupNode, StartupPhase, StartupSimulation
from repro.protocol.static_segment import StaticSegmentEngine
from repro.flexray.sync import ClockSyncService, fault_tolerant_midpoint
from repro.protocol.topology import BusTopology, HybridTopology, StarTopology, Topology
from repro.flexray.wakeup import WakeupNode, WakeupResult, WakeupSimulation, WakeupState

__all__ = [
    "ArrivalMultiplexer",
    "BusTopology",
    "Channel",
    "ChannelSet",
    "ChannelStrategy",
    "CommunicationController",
    "ControllerHostInterface",
    "CycleLayout",
    "ClockSyncService",
    "DynamicSegmentEngine",
    "DynamicSlotResult",
    "EncodedFrame",
    "EcuNode",
    "FRAME_OVERHEAD_BITS",
    "FlexRayCluster",
    "patterns_conflict",
    "FlexRayParams",
    "Frame",
    "FrameKind",
    "HybridTopology",
    "MAX_PAYLOAD_BITS",
    "MacrotickClock",
    "MessageSource",
    "MinislotCounter",
    "PendingFrame",
    "PeriodicSource",
    "PriorityOutputQueue",
    "ProtocolPhase",
    "Release",
    "ScheduleInfeasibleError",
    "ScheduleTable",
    "SchedulerPolicy",
    "Signal",
    "SignalSet",
    "SlotAssignment",
    "SlotCounter",
    "SporadicSource",
    "StarTopology",
    "StartupNode",
    "StartupPhase",
    "StartupSimulation",
    "StaticBuffer",
    "StaticSegmentEngine",
    "Topology",
    "WakeupNode",
    "WakeupResult",
    "WakeupSimulation",
    "WakeupState",
    "build_dual_schedule",
    "build_schedule",
    "encoded_frame_bits",
    "fault_tolerant_midpoint",
    "frame_crc",
    "header_crc",
    "frame_duration_mt",
    "paper_dynamic_preset",
    "paper_static_preset",
    "repetition_for_period",
]
