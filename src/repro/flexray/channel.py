"""Back-compat shim: this module moved to ``repro.protocol.channel``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.channel``.
"""

from repro.protocol.channel import *  # noqa: F401,F403
from repro.protocol.channel import __all__  # noqa: F401
