"""Back-compat shim: this module moved to ``repro.protocol.cluster``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.cluster``.
"""

from repro.protocol.cluster import *  # noqa: F401,F403
from repro.protocol.cluster import __all__ as _moved_all  # noqa: F401

__all__ = list(_moved_all) + ["FlexRayCluster"]

from repro.protocol.cluster import Cluster

#: Historical name of the protocol-neutral cluster.
FlexRayCluster = Cluster
