"""FlexRay's :class:`~repro.protocol.backend.ProtocolBackend` registration."""

from __future__ import annotations

from typing import ClassVar

from repro.flexray.params import (
    FlexRayParams,
    paper_dynamic_preset,
    paper_static_preset,
)
from repro.protocol.backend import ProtocolBackend

__all__ = ["FlexRayBackend"]

#: Fuzz-scenario window lengths: the paper's published static slot and
#: minislot (Section IV-A).
_SCENARIO_SLOT_MT = 40
_SCENARIO_MINISLOT_MT = 8
_SCENARIO_NIT_MT = 40


class FlexRayBackend(ProtocolBackend):
    """FlexRay 2.1 at 10 Mbit/s -- the paper's experimental platform."""

    name: ClassVar[str] = "flexray"

    def geometry_template(self) -> FlexRayParams:
        return FlexRayParams()

    def dynamic_preset(self, minislots: int = 100) -> FlexRayParams:
        return paper_dynamic_preset(minislots)

    def static_preset(self, static_slots: int = 80) -> FlexRayParams:
        return paper_static_preset(static_slots)

    def scenario_geometry(
        self,
        *,
        static_slots: int,
        minislots: int,
        p_latest_tx_minislot: int = 0,
        channel_count: int = 2,
    ) -> FlexRayParams:
        cycle_mt = (static_slots * _SCENARIO_SLOT_MT
                    + minislots * _SCENARIO_MINISLOT_MT + _SCENARIO_NIT_MT)
        return FlexRayParams(
            gd_cycle_mt=cycle_mt,
            gd_static_slot_mt=_SCENARIO_SLOT_MT,
            g_number_of_static_slots=static_slots,
            gd_minislot_mt=_SCENARIO_MINISLOT_MT,
            g_number_of_minislots=minislots,
            p_latest_tx_minislot=p_latest_tx_minislot,
            channel_count=channel_count,
        )
