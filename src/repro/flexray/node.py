"""Back-compat shim: this module moved to ``repro.protocol.node``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.node``.
"""

from repro.protocol.node import *  # noqa: F401,F403
from repro.protocol.node import __all__  # noqa: F401
