"""FlexRay cluster startup (coldstart and integration).

Before any communication cycle can run, the cluster must agree on a
common schedule origin.  FlexRay's startup (spec chapter 7) has two
roles:

- **Coldstart nodes** (>= 2 configured) contend to initiate the
  schedule: each listens for existing traffic, transmits a Collision
  Avoidance Symbol (CAS) if the bus is silent, and becomes the *leading*
  coldstarter if its CAS went out uncontested; colliding coldstarters
  back off for a node-specific number of slots and retry.
- **Integrating nodes** listen for the leading coldstarter's startup
  frames, derive the schedule position from two consecutive ones, and
  join after a consistency check.

This module models that protocol at cycle granularity -- enough to
reproduce its observable properties (a unique leader emerges, startup
completes within a bounded number of cycles, a cluster without two
operational coldstart nodes never starts), which the tests assert.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.rng import RngStream

__all__ = ["StartupPhase", "StartupNode", "StartupSimulation",
           "StartupResult"]

#: Consecutive uncontested coldstart cycles required before the leader
#: declares the schedule consistent (spec: coldstart consistency check
#: spans several double cycles).
_COLDSTART_CONSISTENCY_CYCLES = 4

#: Startup frames an integrating node must observe before joining.
_INTEGRATION_FRAMES_NEEDED = 2


class StartupPhase(enum.Enum):
    """Per-node startup state."""

    LISTEN = "listen"
    COLDSTART_CAS = "coldstart-cas"
    COLDSTART_CHECK = "coldstart-check"
    INTEGRATING = "integrating"
    NORMAL_ACTIVE = "normal-active"
    FAILED = "failed"


@dataclass
class StartupNode:
    """One node participating in startup.

    Attributes:
        node_id: Cluster-wide index.
        coldstart_capable: Whether the node may initiate the schedule.
        operational: Dead nodes neither transmit nor join.
    """

    node_id: int
    coldstart_capable: bool = False
    operational: bool = True
    phase: StartupPhase = StartupPhase.LISTEN
    backoff: int = 0
    consistency_progress: int = 0
    frames_observed: int = 0


@dataclass(frozen=True)
class StartupResult:
    """Outcome of a startup simulation."""

    started: bool
    leader: Optional[int]
    cycles_taken: int
    joined: Sequence[int]

    @property
    def all_joined(self) -> bool:
        return self.started and len(self.joined) > 0


class StartupSimulation:
    """Cycle-granular startup protocol simulation.

    Args:
        nodes: The participating nodes.
        rng: Seeded stream for backoff draws.
        max_cycles: Give-up bound.
    """

    def __init__(self, nodes: Sequence[StartupNode], rng: RngStream,
                 max_cycles: int = 200) -> None:
        if not nodes:
            raise ValueError("startup needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids")
        self._nodes = list(nodes)
        self._rng = rng
        self._max_cycles = max_cycles
        self._leader: Optional[int] = None

    def _operational_coldstarters(self) -> List[StartupNode]:
        return [n for n in self._nodes
                if n.coldstart_capable and n.operational
                and n.phase is not StartupPhase.FAILED]

    def run(self) -> StartupResult:
        """Run startup to completion (or the give-up bound).

        Returns:
            A :class:`StartupResult`; ``started`` requires a leader to
            have passed its consistency check *and* at least one other
            coldstart node to have joined (the spec's requirement that a
            schedule be corroborated by a second coldstarter).
        """
        if len(self._operational_coldstarters()) < 2:
            # The spec requires two coldstart nodes to corroborate the
            # schedule; a lone coldstarter aborts startup.
            return StartupResult(started=False, leader=None,
                                 cycles_taken=0, joined=())

        for cycle in range(1, self._max_cycles + 1):
            if self._step(cycle):
                joined = tuple(
                    n.node_id for n in self._nodes
                    if n.phase is StartupPhase.NORMAL_ACTIVE
                )
                return StartupResult(
                    started=True, leader=self._leader,
                    cycles_taken=cycle, joined=joined,
                )
        return StartupResult(started=False, leader=self._leader,
                             cycles_taken=self._max_cycles, joined=())

    def _step(self, cycle: int) -> bool:
        """One cycle of the protocol; returns True when startup is done."""
        # Phase 1: contention while no leader exists.
        if self._leader is None:
            self._contend()
            return False

        # Phase 2: the leader transmits startup frames; others integrate.
        leader_node = self._nodes[self._find(self._leader)]
        if not leader_node.operational:
            # Leader died mid-startup: restart contention.
            self._leader = None
            for node in self._nodes:
                if node.phase is not StartupPhase.FAILED:
                    node.phase = StartupPhase.LISTEN
                    node.consistency_progress = 0
                    node.frames_observed = 0
            return False

        leader_node.consistency_progress += 1
        for node in self._nodes:
            if node is leader_node or not node.operational:
                continue
            if node.phase in (StartupPhase.LISTEN,
                              StartupPhase.COLDSTART_CAS,
                              StartupPhase.COLDSTART_CHECK):
                node.phase = StartupPhase.INTEGRATING
            if node.phase is StartupPhase.INTEGRATING:
                node.frames_observed += 1
                if node.frames_observed >= _INTEGRATION_FRAMES_NEEDED:
                    node.phase = StartupPhase.NORMAL_ACTIVE

        if leader_node.consistency_progress >= _COLDSTART_CONSISTENCY_CYCLES:
            # Leader needs a second coldstarter to have joined.
            corroborated = any(
                n.coldstart_capable
                and n.phase is StartupPhase.NORMAL_ACTIVE
                for n in self._nodes if n is not leader_node
            )
            if corroborated:
                leader_node.phase = StartupPhase.NORMAL_ACTIVE
                return True
        return False

    def _contend(self) -> None:
        """CAS contention among coldstart nodes."""
        transmitting: List[StartupNode] = []
        for node in self._operational_coldstarters():
            if node.backoff > 0:
                node.backoff -= 1
                continue
            node.phase = StartupPhase.COLDSTART_CAS
            transmitting.append(node)
        if len(transmitting) == 1:
            winner = transmitting[0]
            winner.phase = StartupPhase.COLDSTART_CHECK
            self._leader = winner.node_id
        elif len(transmitting) > 1:
            # Collision: everyone backs off for a distinct random count.
            for node in transmitting:
                node.phase = StartupPhase.LISTEN
                node.backoff = self._rng.randint(1, 2 + node.node_id)

    def _find(self, node_id: int) -> int:
        for index, node in enumerate(self._nodes):
            if node.node_id == node_id:
                return index
        raise KeyError(node_id)
