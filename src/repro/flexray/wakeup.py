"""FlexRay wakeup protocol.

Before startup can even begin, a sleeping cluster must be woken (spec
chapter 7.1): one node's host decides to wake the bus, its controller
transmits a **wakeup pattern** (WUP: repeated wakeup symbols) on *one*
channel, bus drivers on that channel detect it and wake their nodes,
and a second node then wakes the other channel -- a single faulty
channel must not be able to block cluster wakeup, and a wakeup must
never collide with ongoing traffic (the controller listens first).

This module models the observable protocol at symbol granularity:

- :class:`WakeupNode` -- per-node state (asleep / listening / sending
  WUP / awake) and which channels it can drive;
- :class:`WakeupSimulation` -- drives rounds in which initiating nodes
  listen, back off on detected traffic or a concurrent WUP, and wake
  the channels they reach; asserts the spec's invariants (no WUP is
  sent into detected traffic; both channels awake requires two
  single-channel wakeups or one dual-attached initiator acting twice).

The tests assert the protocol's guarantees: every operational node on a
woken channel wakes, a dead channel never blocks the other, and
concurrent initiators resolve without both transmitting into each
other indefinitely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.protocol.channel import Channel
from repro.sim.rng import RngStream

__all__ = ["WakeupState", "WakeupNode", "WakeupSimulation", "WakeupResult"]

#: Rounds a node transmits its wakeup pattern (WUP repetitions).
_WUP_ROUNDS = 2

#: Listen rounds before transmitting (wakeup collision avoidance).
_LISTEN_ROUNDS = 1

#: WUP attempts per channel before the initiator gives that channel up
#: (the spec's bounded wakeup attempts: a dead channel must not trap
#: the initiator forever).
_MAX_ATTEMPTS_PER_CHANNEL = 2


class WakeupState(enum.Enum):
    """Per-node wakeup phase."""

    ASLEEP = "asleep"
    LISTENING = "listening"
    SENDING_WUP = "sending-wup"
    AWAKE = "awake"
    ABORTED = "aborted"


@dataclass
class WakeupNode:
    """One node in the wakeup protocol.

    Attributes:
        node_id: Cluster-wide index.
        channels: Channels this node's bus drivers attach to.
        initiator: Whether the node's host wants to wake the cluster.
        operational: Dead nodes neither send nor detect.
    """

    node_id: int
    channels: Set[Channel] = field(
        default_factory=lambda: {Channel.A, Channel.B})
    initiator: bool = False
    operational: bool = True
    state: WakeupState = WakeupState.ASLEEP
    target_channel: Optional[Channel] = None
    listen_remaining: int = _LISTEN_ROUNDS
    wup_remaining: int = _WUP_ROUNDS
    backoff: int = 0
    attempts: Dict[Channel, int] = field(default_factory=dict)


@dataclass(frozen=True)
class WakeupResult:
    """Outcome of a wakeup simulation."""

    awake_channels: Set[Channel]
    awake_nodes: Sequence[int]
    rounds_taken: int
    collisions: int

    @property
    def cluster_awake(self) -> bool:
        """Both channels woken (full redundancy available)."""
        return self.awake_channels == {Channel.A, Channel.B}


class WakeupSimulation:
    """Symbol-round simulation of the wakeup protocol.

    Args:
        nodes: Participating nodes.
        rng: Seeded stream for backoff draws.
        dead_channels: Channels whose medium is physically broken (a WUP
            sent there is never detected by anyone).
        max_rounds: Give-up bound.
    """

    def __init__(self, nodes: Sequence[WakeupNode], rng: RngStream,
                 dead_channels: Optional[Set[Channel]] = None,
                 max_rounds: int = 100) -> None:
        if not nodes:
            raise ValueError("wakeup needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids")
        self._nodes = list(nodes)
        self._rng = rng.split("wakeup")
        self._dead = set(dead_channels or ())
        self._max_rounds = max_rounds
        self._awake_channels: Set[Channel] = set()
        self.collisions = 0

    def _pick_target(self, node: WakeupNode) -> Optional[Channel]:
        """The channel an initiator tries next: reachable, not yet
        awake, and with attempts remaining (the spec wakes one channel
        per WUP and bounds retries so a dead channel cannot trap it)."""
        for channel in (Channel.A, Channel.B):
            if (channel in node.channels
                    and channel not in self._awake_channels
                    and node.attempts.get(channel, 0)
                    < _MAX_ATTEMPTS_PER_CHANNEL):
                return channel
        return None

    def run(self) -> WakeupResult:
        """Run to quiescence (every initiator done or the bound hit)."""
        rounds = 0
        while rounds < self._max_rounds:
            rounds += 1
            if not self._step():
                break
        awake_nodes = [
            n.node_id for n in self._nodes
            if n.state is WakeupState.AWAKE
        ]
        return WakeupResult(
            awake_channels=set(self._awake_channels),
            awake_nodes=awake_nodes,
            rounds_taken=rounds,
            collisions=self.collisions,
        )

    def _step(self) -> bool:
        """One symbol round; returns False when nothing is in flight."""
        # 1. Who transmits a WUP symbol this round?
        transmitting: Dict[Channel, List[WakeupNode]] = {}
        for node in self._nodes:
            if not node.operational:
                continue
            if node.state is WakeupState.ASLEEP and node.initiator:
                target = self._pick_target(node)
                if target is None:
                    node.state = WakeupState.AWAKE
                    continue
                node.state = WakeupState.LISTENING
                node.target_channel = target
                node.listen_remaining = _LISTEN_ROUNDS
            if node.state is WakeupState.LISTENING:
                if node.backoff > 0:
                    node.backoff -= 1
                    continue
                if node.listen_remaining > 0:
                    node.listen_remaining -= 1
                    continue
                node.state = WakeupState.SENDING_WUP
                node.wup_remaining = _WUP_ROUNDS
            if node.state is WakeupState.SENDING_WUP:
                transmitting.setdefault(node.target_channel, []).append(node)

        if not transmitting:
            # Did any initiator still want channels? If none, quiesce.
            return any(
                n.operational and n.initiator
                and n.state in (WakeupState.ASLEEP, WakeupState.LISTENING)
                for n in self._nodes
            )

        # 2. Per channel: collision if two senders; detection otherwise.
        for channel, senders in transmitting.items():
            if len(senders) > 1:
                self.collisions += 1
                for node in senders:
                    node.state = WakeupState.LISTENING
                    node.backoff = self._rng.randint(1, 2 + node.node_id)
                    node.listen_remaining = _LISTEN_ROUNDS
                continue
            sender = senders[0]
            sender.wup_remaining -= 1
            if sender.wup_remaining > 0:
                continue
            # WUP complete: count the attempt; the channel wakes unless
            # physically dead.
            sender.attempts[channel] = sender.attempts.get(channel, 0) + 1
            if channel not in self._dead:
                self._awake_channels.add(channel)
                for node in self._nodes:
                    if (node.operational and channel in node.channels
                            and node.state is WakeupState.ASLEEP):
                        node.state = WakeupState.AWAKE
            # Sender proceeds: next channel, done, or aborted (nothing
            # reachable woke and all attempts are spent).
            next_target = self._pick_target(sender)
            if next_target is not None:
                sender.state = WakeupState.LISTENING
                sender.target_channel = next_target
                sender.listen_remaining = _LISTEN_ROUNDS
            elif sender.channels & self._awake_channels:
                sender.state = WakeupState.AWAKE
            else:
                sender.state = WakeupState.ABORTED
        return True
