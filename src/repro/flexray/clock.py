"""Back-compat shim: this module moved to ``repro.protocol.clock``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.clock``.
"""

from repro.protocol.clock import *  # noqa: F401,F403
from repro.protocol.clock import __all__  # noqa: F401
