"""Back-compat shim: this module moved to ``repro.protocol.static_segment``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.static_segment``.
"""

from repro.protocol.static_segment import *  # noqa: F401,F403
from repro.protocol.static_segment import __all__  # noqa: F401
