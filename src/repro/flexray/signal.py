"""Back-compat shim: this module moved to ``repro.protocol.signal``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.signal``.
"""

from repro.protocol.signal import *  # noqa: F401,F403
from repro.protocol.signal import __all__  # noqa: F401
