"""Back-compat shim: this module moved to ``repro.protocol.chi``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.chi``.
"""

from repro.protocol.chi import *  # noqa: F401,F403
from repro.protocol.chi import __all__  # noqa: F401
