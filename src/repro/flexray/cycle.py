"""Back-compat shim: this module moved to ``repro.protocol.cycle``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.cycle``.
"""

from repro.protocol.cycle import *  # noqa: F401,F403
from repro.protocol.cycle import __all__  # noqa: F401
