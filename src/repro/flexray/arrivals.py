"""Back-compat shim: this module moved to ``repro.protocol.arrivals``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.arrivals``.
"""

from repro.protocol.arrivals import *  # noqa: F401,F403
from repro.protocol.arrivals import __all__  # noqa: F401
