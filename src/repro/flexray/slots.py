"""Back-compat shim: this module moved to ``repro.protocol.slots``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.slots``.
"""

from repro.protocol.slots import *  # noqa: F401,F403
from repro.protocol.slots import __all__  # noqa: F401
