"""Back-compat shim: this module moved to ``repro.protocol.frame``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.frame``.
"""

from repro.flexray.params import (  # noqa: F401
    FRAME_HEADER_BITS,
    FRAME_OVERHEAD_BITS,
    FRAME_TRAILER_BITS,
    MAX_PAYLOAD_BITS,
)
from repro.protocol.frame import *  # noqa: F401,F403
from repro.protocol.frame import __all__ as _moved_all

__all__ = list(_moved_all) + [
    "FRAME_HEADER_BITS",
    "FRAME_OVERHEAD_BITS",
    "FRAME_TRAILER_BITS",
    "MAX_PAYLOAD_BITS",
]
