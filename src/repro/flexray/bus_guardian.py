"""Bus guardian and the babbling-idiot fault.

A TDMA bus has one catastrophic single-node failure mode the BER model
cannot express: a *babbling idiot* -- a node whose controller fails in a
way that transmits at arbitrary times, colliding with everyone's slots
and taking the whole channel down.  FlexRay's defence is the **bus
guardian** (spec chapter 9): an independent device between the
controller and the bus driver that knows the schedule and only enables
the transmitter during the node's own slots, containing the babble to
the slots the faulty node legitimately owns.

:class:`BabblingIdiotScenario` is a fault-oracle wrapper implementing
both sides:

- guardian *disabled*: while the faulty node babbles, every transmission
  on the affected channels collides (duty-cycled by
  ``babble_duty``) -- the catastrophic case;
- guardian *enabled*: only transmissions in slots the faulty node owns
  are corrupted -- the contained case, where the cluster keeps running
  minus the faulty node's own traffic.

The tests and the fault-injection example quantify the difference.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.protocol.channel import Channel
from repro.protocol.cycle import CycleLayout
from repro.flexray.params import FlexRayParams
from repro.protocol.schedule import ScheduleTable
from repro.sim.rng import RngStream

__all__ = ["BabblingIdiotScenario"]

FaultOracle = Callable[[Channel, int, int], bool]


def _clean_medium(channel: Channel, bits: int, time_mt: int) -> bool:
    return False


class BabblingIdiotScenario:
    """Fault oracle for a babbling node, with optional guardian.

    Args:
        params: Cluster configuration.
        table: The static schedule (slot ownership source).
        faulty_node: Producer ECU index of the babbling node.
        start_mt: When the babble begins.
        guardian: Whether the faulty node's bus guardian is present.
        babble_duty: Fraction of the time the faulty transmitter is
            actually driving the bus while babbling (collisions are
            drawn per transmission attempt).
        channels: Channels physically reachable by the faulty node
            (defaults to both).
        rng: Stream for the duty-cycle draws.
        inner: Underlying transient oracle consulted when the babble
            does not hit.
    """

    def __init__(
        self,
        params: FlexRayParams,
        table: ScheduleTable,
        faulty_node: int,
        start_mt: int = 0,
        guardian: bool = True,
        babble_duty: float = 1.0,
        channels: Optional[Set[Channel]] = None,
        rng: Optional[RngStream] = None,
        inner: FaultOracle = _clean_medium,
    ) -> None:
        if faulty_node < 0:
            raise ValueError("faulty_node must be >= 0")
        if start_mt < 0:
            raise ValueError("start_mt must be >= 0")
        if not 0.0 <= babble_duty <= 1.0:
            raise ValueError("babble_duty must be in [0, 1]")
        self._params = params
        self._layout = CycleLayout(params)
        self._table = table
        self._faulty_node = faulty_node
        self._start = start_mt
        self._guardian = guardian
        self._duty = babble_duty
        self._channels = channels if channels is not None \
            else {Channel.A, Channel.B}
        self._rng = (rng or RngStream(0, "babbling-idiot")).split("duty")
        self._inner = inner
        self.collisions = 0
        # Slots owned by the faulty node, per channel (any cycle).
        self._owned: Dict[Channel, Set[int]] = {}
        for channel in (Channel.A, Channel.B):
            owned = {
                assignment.slot_id
                for assignment in table.assignments(channel)
                if assignment.frame.producer_ecu == faulty_node
            }
            self._owned[channel] = owned

    def owned_slots(self, channel: Channel) -> Set[int]:
        """Static slots the faulty node owns on a channel."""
        return set(self._owned.get(channel, set()))

    def _slot_of(self, time_mt: int) -> Optional[int]:
        """Static slot ID containing a time, or ``None`` (dynamic/NIT)."""
        in_cycle = time_mt % self._params.gd_cycle_mt
        if in_cycle >= self._params.static_segment_mt:
            return None
        return in_cycle // self._params.gd_static_slot_mt + 1

    def __call__(self, channel: Channel, bits: int, time_mt: int) -> bool:
        """Fault oracle; see class docstring for the two regimes."""
        if time_mt >= self._start and channel in self._channels:
            if self._guardian:
                # Contained: only the faulty node's own slots carry its
                # garbage (its controller output is corrupt even there).
                slot = self._slot_of(time_mt)
                if slot is not None and slot in self._owned[channel]:
                    self.collisions += 1
                    return True
            else:
                # Uncontained: the babble collides with everything the
                # transmitter is driving over.
                if self._duty >= 1.0 or self._rng.bernoulli(self._duty):
                    self.collisions += 1
                    return True
        return self._inner(channel, bits, time_mt)
