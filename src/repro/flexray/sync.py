"""FlexRay clock synchronization service.

The protocol keeps every node's macrotick aligned through a two-step
correction loop (FlexRay 2.1 chapter 8):

1. During the static segment each node measures the arrival-time
   deviation of every *sync frame* against its own expectation.
2. At the end of each odd cycle it computes an **offset correction**
   from those deviations with the **fault-tolerant midpoint** (FTM)
   algorithm -- sort the measured deviations, discard the ``k`` largest
   and smallest (k determined by the sample count), and average the
   remaining extremes.  Across a double cycle it additionally derives a
   **rate correction** from the change in deviations.

The FTM's property, which :func:`fault_tolerant_midpoint` reproduces
and the tests verify, is Byzantine resilience: up to ``k`` arbitrarily
faulty measurements cannot pull the midpoint outside the range of the
correct ones.

:class:`ClockSyncService` ties this to the cluster model: it simulates
rounds of measurement and correction over a set of drifting node clocks
and reports the achieved *precision* (largest pairwise deviation),
which the parameter validation compares against the configured
action-point offset -- the slack that absorbs residual disagreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.protocol.clock import MacrotickClock

__all__ = ["fault_tolerant_midpoint", "ftm_discard_count",
           "ClockSyncService", "SyncRoundResult"]


def ftm_discard_count(sample_count: int) -> int:
    """The spec's k for a given number of deviation measurements.

    1-2 samples: keep all (k = 0); 3-7 samples: discard one from each
    end (k = 1); 8+ samples: discard two (k = 2).
    """
    if sample_count < 0:
        raise ValueError(f"sample count must be >= 0, got {sample_count}")
    if sample_count <= 2:
        return 0
    if sample_count <= 7:
        return 1
    return 2


def fault_tolerant_midpoint(values: Sequence[float],
                            discard: Optional[int] = None) -> float:
    """The FTM of a deviation sample.

    Args:
        values: Measured deviations (non-empty).
        discard: Values dropped from each end; defaults to the spec's
            :func:`ftm_discard_count`.

    Returns:
        The average of the smallest and largest surviving values.
    """
    if not values:
        raise ValueError("FTM of an empty sample")
    k = ftm_discard_count(len(values)) if discard is None else discard
    if k < 0 or 2 * k >= len(values):
        raise ValueError(
            f"cannot discard {k} from each end of {len(values)} samples"
        )
    ordered = sorted(values)
    trimmed = ordered[k:len(ordered) - k] if k else ordered
    return (trimmed[0] + trimmed[-1]) / 2.0


@dataclass(frozen=True)
class SyncRoundResult:
    """Outcome of one correction round."""

    round_index: int
    precision_before: float
    precision_after: float
    corrections: Dict[int, float]


class ClockSyncService:
    """Simulated cluster-wide clock synchronization.

    Each node's state is its current phase error (macroticks relative
    to global time) and its drift rate.  A round models one double
    cycle: errors grow by ``drift * interval``, every node measures
    every sync node's deviation (its own error minus theirs, plus
    optional measurement noise), applies the FTM offset correction, and
    -- every round, as a simplification of the spec's double-cycle rate
    correction -- trims a fraction of its rate error toward the FTM of
    observed rate differences.

    Args:
        clocks: Per-node clock models (index = node id).
        sync_nodes: Nodes transmitting sync frames (>= 2; defaults to
            all nodes).
        interval_mt: Macroticks between correction rounds.
        rate_correction_gain: Fraction of the measured rate error
            removed per round (0..1).
    """

    def __init__(self, clocks: Sequence[MacrotickClock],
                 sync_nodes: Optional[Sequence[int]] = None,
                 interval_mt: int = 10_000,
                 rate_correction_gain: float = 0.5) -> None:
        if len(clocks) < 2:
            raise ValueError("clock sync needs at least 2 nodes")
        if interval_mt <= 0:
            raise ValueError("interval must be positive")
        if not 0.0 <= rate_correction_gain <= 1.0:
            raise ValueError("rate gain must be in [0, 1]")
        self._clocks = list(clocks)
        self._sync_nodes = list(sync_nodes
                                if sync_nodes is not None
                                else range(len(clocks)))
        if len(self._sync_nodes) < 2:
            raise ValueError("need at least 2 sync nodes")
        for node in self._sync_nodes:
            if not 0 <= node < len(clocks):
                raise ValueError(f"sync node {node} out of range")
        self._interval = interval_mt
        self._gain = rate_correction_gain
        # Phase error (MT) and residual rate (ppm) per node.
        self._phase: List[float] = [0.0] * len(clocks)
        self._rate_ppm: List[float] = [c.drift_ppm for c in clocks]
        self._rounds = 0

    @property
    def rounds(self) -> int:
        """Correction rounds executed."""
        return self._rounds

    def precision(self) -> float:
        """Largest pairwise phase disagreement, in macroticks."""
        return max(self._phase) - min(self._phase)

    def phase_of(self, node: int) -> float:
        """Current phase error of a node (macroticks)."""
        return self._phase[node]

    def run_round(self, faulty_deviations: Optional[Dict[int, float]] = None
                  ) -> SyncRoundResult:
        """Advance one correction round.

        Args:
            faulty_deviations: Optional per-sync-node *lies*: node n's
                sync frames appear shifted by this many macroticks to
                every receiver (models a faulty sync node; the FTM must
                tolerate up to its discard count of these).

        Returns:
            A :class:`SyncRoundResult` with before/after precision.
        """
        lies = faulty_deviations or {}
        # 1. Drift accumulates.
        for node in range(len(self._clocks)):
            self._phase[node] += self._rate_ppm[node] * 1e-6 * self._interval
        precision_before = self.precision()

        # 2. Each node measures deviations against the sync frames and
        #    applies the FTM offset correction.
        corrections: Dict[int, float] = {}
        for node in range(len(self._clocks)):
            deviations = []
            for sync_node in self._sync_nodes:
                if sync_node == node:
                    continue
                observed = self._phase[node] - (
                    self._phase[sync_node] + lies.get(sync_node, 0.0)
                )
                deviations.append(observed)
            if not deviations:
                continue
            correction = fault_tolerant_midpoint(deviations)
            self._phase[node] -= correction
            corrections[node] = correction

        # 3. Rate correction: trim toward the cluster's FTM rate.
        midpoint_rate = fault_tolerant_midpoint(
            [self._rate_ppm[n] for n in self._sync_nodes]
        )
        for node in range(len(self._clocks)):
            error = self._rate_ppm[node] - midpoint_rate
            self._rate_ppm[node] -= self._gain * error

        self._rounds += 1
        return SyncRoundResult(
            round_index=self._rounds,
            precision_before=precision_before,
            precision_after=self.precision(),
            corrections=corrections,
        )

    def run(self, rounds: int) -> List[SyncRoundResult]:
        """Run several rounds, returning each result."""
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        return [self.run_round() for __ in range(rounds)]

    def steady_state_precision(self, rounds: int = 20) -> float:
        """Precision after the loop settles (runs ``rounds`` rounds)."""
        self.run(rounds)
        return self.precision()

    def validates_action_point(self, action_point_offset_mt: int,
                               rounds: int = 20) -> bool:
        """Whether the settled precision fits the action-point offset."""
        return self.steady_state_precision(rounds) <= action_point_offset_mt
