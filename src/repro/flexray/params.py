"""FlexRay cluster parameter set.

Names follow the FlexRay specification's Hungarian-style conventions used
throughout the paper: global cluster constants carry a ``gd`` (global,
duration) or ``g`` prefix, node-local constants a ``p`` prefix.

The paper's experimental configuration (Section IV-A) is captured in two
presets:

- :func:`paper_static_preset` -- the static-segment study configuration:
  5 ms communication cycle, 3 ms static segment;
- :func:`paper_dynamic_preset` -- the dynamic-segment study configuration:
  1 ms cycle, 0.75 ms static segment, plus the published parameter list
  (gdMacrotick = 1 us, gdMinislot = 8 MT, gdStaticSlot = 40 MT, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict

__all__ = [
    "FlexRayParams",
    "paper_static_preset",
    "paper_dynamic_preset",
]

#: FlexRay frame overhead: 5-byte header (frame ID, payload length,
#: header CRC, cycle count) + 3-byte trailer CRC.
FRAME_HEADER_BITS = 40
FRAME_TRAILER_BITS = 24
FRAME_OVERHEAD_BITS = FRAME_HEADER_BITS + FRAME_TRAILER_BITS

#: Maximum FlexRay payload: 254 bytes.
MAX_PAYLOAD_BITS = 254 * 8


@dataclass(frozen=True)
class FlexRayParams:
    """Validated, immutable cluster configuration.

    Attributes:
        gd_macrotick_us: Macrotick length in microseconds.
        gd_cycle_mt: Communication-cycle length in macroticks
            (= gdMacroPerCycle when gdMacrotick is 1 us).
        gd_static_slot_mt: Static slot length in macroticks.
        g_number_of_static_slots: Static slots per cycle (gNumberOfStaticSlots).
        gd_minislot_mt: Minislot length in macroticks (gdMinislot).
        g_number_of_minislots: Minislots per cycle (gNumberOfMinislots).
        gd_symbol_window_mt: Symbol-window length (gdSymbolWindow); the
            paper's configuration sets it to 0.
        gd_action_point_offset_mt: Static-slot action point offset.
        gd_minislot_action_point_offset_mt: Minislot action point offset
            (gdMinislotActionPointOffset).
        gd_dynamic_slot_idle_phase_minislots: Idle minislots appended after
            each dynamic transmission (gdDynamicSlotIdlePhase).
        p_latest_tx_minislot: Last minislot index at which a node may start
            a dynamic transmission (pLatestTx).  ``None`` derives the
            spec-conformant value from the largest expressible frame.
        bit_rate_mbps: Channel bit rate; FlexRay runs at 10 Mbit/s.
        channel_count: 1 (single channel) or 2 (dual channel).
    """

    gd_macrotick_us: float = 1.0
    gd_cycle_mt: int = 5000
    gd_static_slot_mt: int = 40
    g_number_of_static_slots: int = 80
    gd_minislot_mt: int = 8
    g_number_of_minislots: int = 100
    gd_symbol_window_mt: int = 0
    gd_action_point_offset_mt: int = 1
    gd_minislot_action_point_offset_mt: int = 2
    gd_dynamic_slot_idle_phase_minislots: int = 1
    p_latest_tx_minislot: int = 0
    bit_rate_mbps: float = 10.0
    channel_count: int = 2

    def __post_init__(self) -> None:
        if self.gd_macrotick_us <= 0:
            raise ValueError("gd_macrotick_us must be positive")
        if self.gd_cycle_mt <= 0:
            raise ValueError("gd_cycle_mt must be positive")
        if self.gd_static_slot_mt <= 0:
            raise ValueError("gd_static_slot_mt must be positive")
        if self.g_number_of_static_slots < 2:
            # The spec requires at least 2 static slots (sync frames).
            raise ValueError("g_number_of_static_slots must be >= 2")
        if self.gd_minislot_mt <= 0:
            raise ValueError("gd_minislot_mt must be positive")
        if self.g_number_of_minislots < 0:
            raise ValueError("g_number_of_minislots must be >= 0")
        if self.gd_symbol_window_mt < 0:
            raise ValueError("gd_symbol_window_mt must be >= 0")
        if self.bit_rate_mbps <= 0:
            raise ValueError("bit_rate_mbps must be positive")
        if self.channel_count not in (1, 2):
            raise ValueError("channel_count must be 1 or 2")
        used = (self.static_segment_mt + self.dynamic_segment_mt
                + self.gd_symbol_window_mt)
        if used > self.gd_cycle_mt:
            raise ValueError(
                f"segments ({used} MT) exceed the communication cycle "
                f"({self.gd_cycle_mt} MT)"
            )
        if not 0 <= self.p_latest_tx_minislot <= self.g_number_of_minislots:
            raise ValueError(
                "p_latest_tx_minislot must lie within the dynamic segment"
            )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def static_segment_mt(self) -> int:
        """Static-segment length in macroticks."""
        return self.gd_static_slot_mt * self.g_number_of_static_slots

    @property
    def dynamic_segment_mt(self) -> int:
        """Dynamic-segment length in macroticks."""
        return self.gd_minislot_mt * self.g_number_of_minislots

    @property
    def nit_mt(self) -> int:
        """Network idle time: cycle remainder after all segments."""
        return (self.gd_cycle_mt - self.static_segment_mt
                - self.dynamic_segment_mt - self.gd_symbol_window_mt)

    @property
    def cycle_us(self) -> float:
        """Communication-cycle length in microseconds (gdCycle)."""
        return self.gd_cycle_mt * self.gd_macrotick_us

    @property
    def cycle_ms(self) -> float:
        """Communication-cycle length in milliseconds."""
        return self.cycle_us / 1000.0

    @property
    def bits_per_macrotick(self) -> float:
        """Channel bits transferable in one macrotick."""
        return self.bit_rate_mbps * self.gd_macrotick_us

    @property
    def static_slot_capacity_bits(self) -> int:
        """Payload bits one static slot can carry.

        The action-point offset at both slot edges and the frame overhead
        (header + trailer CRC) are subtracted from the raw slot capacity.
        """
        usable_mt = self.gd_static_slot_mt - 2 * self.gd_action_point_offset_mt
        raw_bits = int(usable_mt * self.bits_per_macrotick)
        capacity = raw_bits - FRAME_OVERHEAD_BITS
        return max(0, min(capacity, MAX_PAYLOAD_BITS))

    @property
    def first_dynamic_slot_id(self) -> int:
        """Slot ID of the first dynamic slot (static IDs are 1-based)."""
        return self.g_number_of_static_slots + 1

    @property
    def last_dynamic_slot_id(self) -> int:
        """Largest usable dynamic slot ID (one per minislot at minimum)."""
        return self.g_number_of_static_slots + self.g_number_of_minislots

    @property
    def effective_latest_tx(self) -> int:
        """pLatestTx: latest minislot index at which a send may start.

        In a real cluster each *node* derives pLatestTx from its own
        largest dynamic frame, so a node with small frames may start
        late while one with a maximal frame must stop early.  The
        simulation engine enforces the underlying invariant directly --
        a transmission is held for the next cycle unless it fits the
        remaining minislots -- so the auto value (configured 0) imposes
        no extra gate.  Setting ``p_latest_tx_minislot`` explicitly
        models a cluster-wide conservative configuration.
        """
        if self.p_latest_tx_minislot > 0:
            return self.p_latest_tx_minislot
        return self.g_number_of_minislots

    # ------------------------------------------------------------------
    # Unit conversion helpers
    # ------------------------------------------------------------------

    def ms_to_mt(self, milliseconds: float) -> int:
        """Convert milliseconds to (rounded) macroticks."""
        return int(round(milliseconds * 1000.0 / self.gd_macrotick_us))

    def mt_to_ms(self, macroticks: int) -> float:
        """Convert macroticks to milliseconds."""
        return macroticks * self.gd_macrotick_us / 1000.0

    def transmission_mt(self, bits: int) -> int:
        """Macroticks needed to transfer ``bits`` on the channel."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return int(math.ceil(bits / self.bits_per_macrotick))

    def minislots_for_bits(self, payload_bits: int) -> int:
        """Minislots a dynamic transmission of ``payload_bits`` occupies.

        Includes frame overhead and the mandated dynamic-slot idle phase.
        """
        total_bits = payload_bits + FRAME_OVERHEAD_BITS
        tx_mt = self.transmission_mt(total_bits) \
            + self.gd_minislot_action_point_offset_mt
        slots = int(math.ceil(tx_mt / self.gd_minislot_mt))
        return max(1, slots) + self.gd_dynamic_slot_idle_phase_minislots

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    def with_minislots(self, count: int) -> "FlexRayParams":
        """Copy with a different gNumberOfMinislots (the Fig. 3/5 sweep axis)."""
        return replace(self, g_number_of_minislots=count)

    def with_static_slots(self, count: int) -> "FlexRayParams":
        """Copy with a different gNumberOfStaticSlots (80 vs 120 in Figs. 1-2)."""
        return replace(self, g_number_of_static_slots=count)

    def with_channels(self, count: int) -> "FlexRayParams":
        """Copy with a different channel count."""
        return replace(self, channel_count=count)

    def describe(self) -> Dict[str, float]:
        """Human-readable parameter summary (for experiment logs)."""
        return {
            "gdMacrotick_us": self.gd_macrotick_us,
            "gdCycle_us": self.cycle_us,
            "gdStaticSlot_mt": self.gd_static_slot_mt,
            "gNumberOfStaticSlots": self.g_number_of_static_slots,
            "gdMinislot_mt": self.gd_minislot_mt,
            "gNumberOfMinislots": self.g_number_of_minislots,
            "pLatestTx": self.effective_latest_tx,
            "staticSegment_mt": self.static_segment_mt,
            "dynamicSegment_mt": self.dynamic_segment_mt,
            "NIT_mt": self.nit_mt,
            "staticSlotCapacity_bits": self.static_slot_capacity_bits,
            "channels": self.channel_count,
        }


def paper_static_preset(static_slots: int = 80) -> FlexRayParams:
    """The paper's static-study configuration (Section IV-A).

    5 ms communication cycle with a 3 ms static segment: with 40 MT slots
    this is 75 slots of pure static timing; the paper sweeps
    gNumberOfStaticSlots over 80 and 120, so the cycle is dominated by the
    static segment and the remainder is dynamic.

    Args:
        static_slots: gNumberOfStaticSlots, 80 or 120 in the paper.
    """
    static_mt = static_slots * 40
    cycle_mt = max(5000, static_mt + 800)  # keep >= 100 minislots of dynamic room
    minislots = (cycle_mt - static_mt) // 8
    return FlexRayParams(
        gd_macrotick_us=1.0,
        gd_cycle_mt=cycle_mt,
        gd_static_slot_mt=40,
        g_number_of_static_slots=static_slots,
        gd_minislot_mt=8,
        g_number_of_minislots=minislots,
        gd_symbol_window_mt=0,
        gd_action_point_offset_mt=1,
        gd_minislot_action_point_offset_mt=2,
        gd_dynamic_slot_idle_phase_minislots=1,
        channel_count=2,
    )


def paper_dynamic_preset(minislots: int = 100) -> FlexRayParams:
    """The paper's dynamic-study configuration (Section IV-A/B).

    1 ms communication cycle, 0.75 ms static segment, dynamic segment
    swept over 25..100 minislots (Figures 3-5).  The static slot length is
    reduced so that 0.75 ms of static segment still offers a realistic
    number of slots.

    Args:
        minislots: gNumberOfMinislots, in {25, 50, 75, 100}.
    """
    static_slots = 25  # 25 slots x 30 MT = 750 MT = 0.75 ms
    static_slot_mt = 30
    dynamic_mt = minislots * 8
    cycle_mt = static_slots * static_slot_mt + dynamic_mt + 10  # small NIT
    return FlexRayParams(
        gd_macrotick_us=1.0,
        gd_cycle_mt=cycle_mt,
        gd_static_slot_mt=static_slot_mt,
        g_number_of_static_slots=static_slots,
        gd_minislot_mt=8,
        g_number_of_minislots=minislots,
        gd_symbol_window_mt=0,
        gd_action_point_offset_mt=1,
        gd_minislot_action_point_offset_mt=2,
        gd_dynamic_slot_idle_phase_minislots=1,
        channel_count=2,
    )
