"""FlexRay cluster parameter set (the FlexRay backend's geometry).

:class:`FlexRayParams` specializes the protocol-neutral
:class:`~repro.protocol.geometry.SegmentGeometry` with FlexRay's frame
overhead model and the paper's two experimental configurations
(Section IV-A):

- :func:`paper_static_preset` -- the static-segment study configuration:
  5 ms communication cycle, 3 ms static segment;
- :func:`paper_dynamic_preset` -- the dynamic-segment study configuration:
  1 ms cycle, 0.75 ms static segment, plus the published parameter list
  (gdMacrotick = 1 us, gdMinislot = 8 MT, gdStaticSlot = 40 MT, ...).

Names follow the FlexRay specification's Hungarian-style conventions used
throughout the paper: global cluster constants carry a ``gd`` (global,
duration) or ``g`` prefix, node-local constants a ``p`` prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.protocol.geometry import SegmentGeometry

__all__ = [
    "FRAME_HEADER_BITS",
    "FRAME_TRAILER_BITS",
    "FRAME_OVERHEAD_BITS",
    "MAX_PAYLOAD_BITS",
    "FlexRayParams",
    "paper_static_preset",
    "paper_dynamic_preset",
]

#: FlexRay frame overhead: 5-byte header (frame ID, payload length,
#: header CRC, cycle count) + 3-byte trailer CRC.
FRAME_HEADER_BITS = 40
FRAME_TRAILER_BITS = 24
FRAME_OVERHEAD_BITS = FRAME_HEADER_BITS + FRAME_TRAILER_BITS

#: Maximum FlexRay payload: 254 bytes.
MAX_PAYLOAD_BITS = 254 * 8


@dataclass(frozen=True)
class FlexRayParams(SegmentGeometry):
    """FlexRay 2.1 cluster configuration.

    Inherits every geometry field; the defaults already describe a
    FlexRay cluster (10 Mbit/s, 8-byte frame overhead, 254-byte maximum
    payload), so this subclass only pins the backend identity.
    """

    protocol: ClassVar[str] = "flexray"

    frame_overhead_bits: int = FRAME_OVERHEAD_BITS
    max_payload_bits: int = MAX_PAYLOAD_BITS


def paper_static_preset(static_slots: int = 80) -> FlexRayParams:
    """The paper's static-study configuration (Section IV-A).

    5 ms communication cycle with a 3 ms static segment: with 40 MT slots
    this is 75 slots of pure static timing; the paper sweeps
    gNumberOfStaticSlots over 80 and 120, so the cycle is dominated by the
    static segment and the remainder is dynamic.

    Args:
        static_slots: gNumberOfStaticSlots, 80 or 120 in the paper.
    """
    static_mt = static_slots * 40
    cycle_mt = max(5000, static_mt + 800)  # keep >= 100 minislots of dynamic room
    minislots = (cycle_mt - static_mt) // 8
    return FlexRayParams(
        gd_macrotick_us=1.0,
        gd_cycle_mt=cycle_mt,
        gd_static_slot_mt=40,
        g_number_of_static_slots=static_slots,
        gd_minislot_mt=8,
        g_number_of_minislots=minislots,
        gd_symbol_window_mt=0,
        gd_action_point_offset_mt=1,
        gd_minislot_action_point_offset_mt=2,
        gd_dynamic_slot_idle_phase_minislots=1,
        channel_count=2,
    )


def paper_dynamic_preset(minislots: int = 100) -> FlexRayParams:
    """The paper's dynamic-study configuration (Section IV-A/B).

    1 ms communication cycle, 0.75 ms static segment, dynamic segment
    swept over 25..100 minislots (Figures 3-5).  The static slot length is
    reduced so that 0.75 ms of static segment still offers a realistic
    number of slots.

    Args:
        minislots: gNumberOfMinislots, in {25, 50, 75, 100}.
    """
    static_slots = 25  # 25 slots x 30 MT = 750 MT = 0.75 ms
    static_slot_mt = 30
    dynamic_mt = minislots * 8
    cycle_mt = static_slots * static_slot_mt + dynamic_mt + 10  # small NIT
    return FlexRayParams(
        gd_macrotick_us=1.0,
        gd_cycle_mt=cycle_mt,
        gd_static_slot_mt=static_slot_mt,
        g_number_of_static_slots=static_slots,
        gd_minislot_mt=8,
        g_number_of_minislots=minislots,
        gd_symbol_window_mt=0,
        gd_action_point_offset_mt=1,
        gd_minislot_action_point_offset_mt=2,
        gd_dynamic_slot_idle_phase_minislots=1,
        channel_count=2,
    )
