"""Back-compat shim: this module moved to ``repro.protocol.dynamic_segment``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.dynamic_segment``.
"""

from repro.protocol.dynamic_segment import *  # noqa: F401,F403
from repro.protocol.dynamic_segment import __all__  # noqa: F401
