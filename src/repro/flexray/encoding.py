"""FlexRay frame coding: header/trailer CRCs and the bitstream layout.

The rest of the simulator models a frame as "payload + 64 overhead
bits"; this module implements the actual coding layer those 64 bits
abstract (FlexRay 2.1 chapters 4.3 and 3.2):

- the **header CRC**: 11 bits over the sync/startup indicators, frame
  ID and payload length, generator polynomial 0xB85 (x^11 + x^9 + x^8 +
  x^7 + x^2 + 1), init value 0x1A;
- the **frame CRC**: 24 bits over header + payload, generator 0x5D6DCB
  (x^24 + x^22 + x^20 + x^19 + x^18 + x^16 + x^14 + x^13 + x^11 + x^10
  + x^8 + x^7 + x^6 + x^3 + x + 1), init 0xFEDCBA on channel A and
  0xABCDEF on channel B (so a frame crossing channels is detected);
- the **physical bitstream length**: TSS + FSS, one Byte Start Sequence
  (2 bits) per byte, and FES, which is what a transmission actually
  occupies on the wire.

The module also quantifies what CRCs buy: :func:`undetected_error_probability`
bounds the probability that random corruption slips past the frame CRC
-- the residual the paper's reliability analysis implicitly treats as
zero (and at 2^-24 per corrupted frame, negligibly so).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "HEADER_CRC_POLY", "HEADER_CRC_INIT", "FRAME_CRC_POLY",
    "FRAME_CRC_INIT_A", "FRAME_CRC_INIT_B",
    "crc", "header_crc", "frame_crc",
    "encoded_frame_bits", "undetected_error_probability",
    "EncodedFrame",
]

#: Header CRC generator polynomial (11 bits), per FlexRay 2.1 §4.3.2.
HEADER_CRC_POLY = 0xB85
HEADER_CRC_INIT = 0x1A

#: Frame CRC generator polynomial (24 bits), per FlexRay 2.1 §4.3.3.
FRAME_CRC_POLY = 0x5D6DCB
FRAME_CRC_INIT_A = 0xFEDCBA
FRAME_CRC_INIT_B = 0xABCDEF

#: Physical-layer framing (§3.2): transmission start sequence (variable,
#: 3-15 bits low; we use the common 5), frame start sequence (1), byte
#: start sequence (2 per byte), frame end sequence (2).
_TSS_BITS = 5
_FSS_BITS = 1
_BSS_BITS_PER_BYTE = 2
_FES_BITS = 2


def crc(bits: Sequence[int], polynomial: int, width: int,
        init: int) -> int:
    """Bitwise CRC over a bit sequence (MSB-first).

    Args:
        bits: The message bits, each 0 or 1.
        polynomial: Generator polynomial *without* the leading x^width
            term (the conventional truncated representation).
        width: CRC width in bits.
        init: Initial register value.

    Returns:
        The CRC register after all bits, masked to ``width`` bits.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    register = init & ((1 << width) - 1)
    top = 1 << (width - 1)
    mask = (1 << width) - 1
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {bit!r}")
        feedback = ((register & top) >> (width - 1)) ^ bit
        register = ((register << 1) & mask)
        if feedback:
            register ^= polynomial & mask
    return register


def _int_to_bits(value: int, width: int) -> List[int]:
    if value < 0 or value >= (1 << width):
        raise ValueError(f"{value} does not fit {width} bits")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def header_crc(frame_id: int, payload_length_words: int,
               sync_frame: bool = False,
               startup_frame: bool = False) -> int:
    """The 11-bit header CRC of a frame.

    Covers, in order: the sync indicator, the startup indicator, the
    11-bit frame ID and the 7-bit payload length (§4.3.2).

    Args:
        frame_id: 1..2047.
        payload_length_words: Payload length in 2-byte words, 0..127.
        sync_frame: Sync-frame indicator bit.
        startup_frame: Startup-frame indicator bit.
    """
    if not 1 <= frame_id <= 2047:
        raise ValueError(f"frame_id must be in 1..2047, got {frame_id}")
    if not 0 <= payload_length_words <= 127:
        raise ValueError(
            f"payload length must be 0..127 words, got "
            f"{payload_length_words}"
        )
    bits: List[int] = [int(sync_frame), int(startup_frame)]
    bits += _int_to_bits(frame_id, 11)
    bits += _int_to_bits(payload_length_words, 7)
    return crc(bits, HEADER_CRC_POLY, 11, HEADER_CRC_INIT)


def frame_crc(header_and_payload_bits: Sequence[int],
              channel: str = "A") -> int:
    """The 24-bit frame CRC (channel-specific init value)."""
    if channel == "A":
        init = FRAME_CRC_INIT_A
    elif channel == "B":
        init = FRAME_CRC_INIT_B
    else:
        raise ValueError(f"channel must be 'A' or 'B', got {channel!r}")
    return crc(header_and_payload_bits, FRAME_CRC_POLY, 24, init)


def encoded_frame_bits(payload_bytes: int) -> int:
    """Wire bits of a frame after physical-layer encoding.

    Header (5 bytes) + payload + trailer (3 bytes), each byte prefixed
    by a Byte Start Sequence, plus TSS/FSS/FES framing (§3.2).

    Args:
        payload_bytes: Payload length in bytes (0..254).
    """
    if not 0 <= payload_bytes <= 254:
        raise ValueError(
            f"payload must be 0..254 bytes, got {payload_bytes}"
        )
    total_bytes = 5 + payload_bytes + 3
    return (_TSS_BITS + _FSS_BITS
            + total_bytes * (8 + _BSS_BITS_PER_BYTE)
            + _FES_BITS)


def undetected_error_probability(corrupted: bool = True) -> float:
    """Probability random corruption passes the 24-bit frame CRC.

    For corruption patterns beyond the CRC's guaranteed detection
    classes (burst length <= 24, Hamming distance 6 within one frame),
    a random corrupted frame matches its CRC with probability 2^-24.
    The simulator treats every corrupted frame as *detected* (the
    receiver drops it); this function quantifies the approximation.
    """
    return 2.0 ** -24 if corrupted else 0.0


@dataclass(frozen=True)
class EncodedFrame:
    """A fully coded frame, for the codec round-trip tests.

    Attributes:
        frame_id: Slot/frame ID.
        payload: Payload bytes.
        sync_frame: Sync indicator.
        startup_frame: Startup indicator.
        channel: ``"A"`` or ``"B"``.
    """

    frame_id: int
    payload: bytes
    sync_frame: bool = False
    startup_frame: bool = False
    channel: str = "A"

    def __post_init__(self) -> None:
        if len(self.payload) % 2:
            raise ValueError("FlexRay payloads are whole 2-byte words")
        if len(self.payload) > 254:
            raise ValueError("payload exceeds 254 bytes")

    @property
    def payload_length_words(self) -> int:
        return len(self.payload) // 2

    def header_bits(self) -> List[int]:
        """The 40 header bits: 5 indicators (reserved, payload preamble,
        null frame, sync, startup), 11-bit ID, 7-bit length, 11-bit
        header CRC, 6-bit cycle count placeholder (0)."""
        bits: List[int] = [0, 0, 1]  # reserved, preamble, null=1 (data)
        bits += [int(self.sync_frame), int(self.startup_frame)]
        bits += _int_to_bits(self.frame_id, 11)
        bits += _int_to_bits(self.payload_length_words, 7)
        bits += _int_to_bits(
            header_crc(self.frame_id, self.payload_length_words,
                       self.sync_frame, self.startup_frame), 11)
        bits += _int_to_bits(0, 6)  # cycle count filled at send time
        assert len(bits) == 40
        return bits

    def payload_bits(self) -> List[int]:
        out: List[int] = []
        for byte in self.payload:
            out += _int_to_bits(byte, 8)
        return out

    def crc_bits(self) -> List[int]:
        value = frame_crc(self.header_bits() + self.payload_bits(),
                          self.channel)
        return _int_to_bits(value, 24)

    def all_bits(self) -> List[int]:
        """Header + payload + frame CRC (before physical encoding)."""
        return self.header_bits() + self.payload_bits() + self.crc_bits()

    def wire_bits(self) -> int:
        """Physical-layer length of this frame."""
        return encoded_frame_bits(len(self.payload))

    def verify(self, bits: Sequence[int]) -> bool:
        """Receiver-side check: do these bits carry a valid frame CRC?

        Args:
            bits: header + payload + CRC bits as transmitted (possibly
                corrupted).
        """
        if len(bits) != 40 + len(self.payload) * 8 + 24:
            return False
        body, received_crc = bits[:-24], bits[-24:]
        expected = frame_crc(body, self.channel)
        return list(received_crc) == _int_to_bits(expected, 24)
