"""Back-compat shim: this module moved to ``repro.protocol.policy``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.policy``.
"""

from repro.protocol.policy import *  # noqa: F401,F403
from repro.protocol.policy import __all__  # noqa: F401
