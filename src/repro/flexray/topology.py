"""Back-compat shim: this module moved to ``repro.protocol.topology``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.topology``.
"""

from repro.protocol.topology import *  # noqa: F401,F403
from repro.protocol.topology import __all__  # noqa: F401
