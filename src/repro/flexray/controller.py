"""Back-compat shim: this module moved to ``repro.protocol.controller``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.controller``.
"""

from repro.protocol.controller import *  # noqa: F401,F403
from repro.protocol.controller import __all__  # noqa: F401
