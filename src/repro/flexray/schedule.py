"""Back-compat shim: this module moved to ``repro.protocol.schedule``.

The engine is protocol-neutral; ``repro.flexray`` re-exports it so
existing imports keep working.  New code should import from
``repro.protocol.schedule``.
"""

from repro.protocol.schedule import *  # noqa: F401,F403
from repro.protocol.schedule import __all__  # noqa: F401
