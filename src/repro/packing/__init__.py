"""Signal-to-frame packing substrate.

FlexRay transmits frames, but automotive workloads are specified as
signals; the packing layer bridges the two (the "frame packing" substrate
of the paper's related work [9], [31]):

- small signals from the same ECU with the same period are *merged* into
  one frame (first-fit decreasing bin packing), reducing per-frame header
  overhead and slot count;
- signals larger than one frame's payload are *split* into chunk frames;
- sub-cycle-period messages are expanded into per-phase *groups*, each
  owning its own slot, because the TDMA static segment sends at cycle
  granularity.
"""

from repro.packing.frame_packing import (
    PackedMessage,
    PackingResult,
    derive_params_for,
    pack_signals,
)
from repro.packing.optimizer import (
    ScheduleObjective,
    ScheduleOptimizer,
    schedule_cost,
)

__all__ = [
    "PackedMessage",
    "PackingResult",
    "ScheduleObjective",
    "ScheduleOptimizer",
    "derive_params_for",
    "pack_signals",
    "schedule_cost",
]
