"""Static-schedule optimization (local search).

The paper's related work optimizes static-segment schedules offline
(Zeng et al. [3], Lukasiewycz et al. [15], both cited in Section V-B);
the greedy builder in :mod:`repro.protocol.schedule` is fast but
first-fit.  This module adds a seeded hill-climbing optimizer over slot
assignments with a three-part objective:

1. **Expected release-to-slot latency** -- for each frame, the in-cycle
   wait from its preferred phase to its slot's action point, weighted by
   the frame's firing rate;
2. **Channel balance** -- the absolute difference of per-channel static
   load (unbalanced channels starve one channel's slack pool);
3. **Slack contiguity** -- fewer, longer idle runs (long runs can host
   consecutive retransmission copies of chunked messages back-to-back).

Moves relocate one frame to another feasible (channel, slot, base)
triple; first-improvement acceptance keeps the search deterministic for
a given seed.  The optimizer is exposed both standalone and through the
policies' ``optimize_iterations`` knob.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.protocol.channel import Channel
from repro.protocol.frame import Frame
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.schedule import (
    ScheduleTable,
    SlotAssignment,
    patterns_conflict,
)
from repro.sim.rng import RngStream

__all__ = ["ScheduleObjective", "ScheduleOptimizer", "schedule_cost"]


@dataclass(frozen=True)
class ScheduleObjective:
    """Weights of the three cost terms (see module docstring)."""

    latency_weight: float = 1.0
    balance_weight: float = 0.2
    contiguity_weight: float = 0.05

    def __post_init__(self) -> None:
        for name in ("latency_weight", "balance_weight",
                     "contiguity_weight"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass
class _Placement:
    """One frame's mutable placement during the search."""

    frame: Frame
    channel: Channel
    slot_id: int
    base_cycle: int


def _slot_action_point(slot_id: int, params: SegmentGeometry) -> int:
    return ((slot_id - 1) * params.gd_static_slot_mt
            + params.gd_action_point_offset_mt)


def _placement_latency(placement: _Placement,
                       params: SegmentGeometry) -> float:
    """Rate-weighted expected wait from release phase to slot fire."""
    frame = placement.frame
    phase = frame.preferred_phase_mt
    if phase is None:
        phase = 0
    action = _slot_action_point(placement.slot_id, params)
    wait = (action - phase) % params.gd_cycle_mt
    # A shifted base adds whole cycles of wait.
    shift = (placement.base_cycle - frame.base_cycle) \
        % frame.cycle_repetition
    wait += shift * params.gd_cycle_mt
    rate = 1.0 / frame.cycle_repetition
    return wait * rate


def _cost(placements: Sequence[_Placement], params: SegmentGeometry,
          objective: ScheduleObjective) -> float:
    """Full objective over a placement set."""
    latency = sum(_placement_latency(p, params) for p in placements)

    load: Dict[Channel, float] = {Channel.A: 0.0, Channel.B: 0.0}
    for placement in placements:
        load[placement.channel] += 1.0 / placement.frame.cycle_repetition
    balance = abs(load[Channel.A] - load[Channel.B])

    # Contiguity over cycle 0: count idle runs per channel.
    runs = 0
    for channel in (Channel.A, Channel.B):
        busy = {p.slot_id for p in placements
                if p.channel is channel and p.base_cycle == 0}
        in_run = False
        for slot in range(1, params.g_number_of_static_slots + 1):
            idle = slot not in busy
            if idle and not in_run:
                runs += 1
            in_run = idle
    return (objective.latency_weight * latency
            + objective.balance_weight * balance
            * params.gd_cycle_mt
            + objective.contiguity_weight * runs
            * params.gd_static_slot_mt)


def schedule_cost(table: ScheduleTable, params: SegmentGeometry,
                  objective: Optional[ScheduleObjective] = None) -> float:
    """Objective value of an existing schedule table."""
    objective = objective or ScheduleObjective()
    placements = [
        _Placement(frame=assignment.frame, channel=channel,
                   slot_id=assignment.slot_id,
                   base_cycle=assignment.frame.base_cycle)
        for channel in (Channel.A, Channel.B)
        for assignment in table.assignments(channel)
    ]
    return _cost(placements, params, objective)


class ScheduleOptimizer:
    """Seeded first-improvement hill climbing over slot assignments.

    Args:
        params: Cluster configuration.
        objective: Cost weights.
        rng: Seeded stream driving the proposal sequence.
    """

    def __init__(self, params: SegmentGeometry,
                 objective: Optional[ScheduleObjective] = None,
                 rng: Optional[RngStream] = None) -> None:
        self._params = params
        self._objective = objective or ScheduleObjective()
        self._rng = rng or RngStream(0, "schedule-optimizer")
        self.proposals = 0
        self.improvements = 0

    # ------------------------------------------------------------------

    def _feasible(self, placements: List[_Placement], index: int,
                  channel: Channel, slot_id: int, base: int) -> bool:
        """Would moving placement ``index`` there keep the table valid?"""
        candidate = placements[index]
        for other_index, other in enumerate(placements):
            if other_index == index:
                continue
            if other.channel is not channel or other.slot_id != slot_id:
                continue
            if patterns_conflict(other.base_cycle,
                                 other.frame.cycle_repetition,
                                 base, candidate.frame.cycle_repetition):
                return False
        return True

    def optimize_table(self, table: ScheduleTable,
                       iterations: int = 500) -> ScheduleTable:
        """Improve an existing table; returns a new one.

        Args:
            table: Starting point (e.g. the greedy builder's output).
            iterations: Random proposals to evaluate.
        """
        if iterations < 0:
            raise ValueError("iterations must be >= 0")
        params = self._params
        placements: List[_Placement] = [
            _Placement(frame=assignment.frame, channel=channel,
                       slot_id=assignment.slot_id,
                       base_cycle=assignment.frame.base_cycle)
            for channel in (Channel.A, Channel.B)
            for assignment in table.assignments(channel)
        ]
        if not placements:
            return table

        channels = [Channel.A]
        if params.channel_count == 2:
            channels.append(Channel.B)
        current_cost = _cost(placements, params, self._objective)

        for __ in range(iterations):
            self.proposals += 1
            index = self._rng.randint(0, len(placements) - 1)
            placement = placements[index]
            new_channel = self._rng.choice(channels)
            new_slot = self._rng.randint(
                1, params.g_number_of_static_slots)
            repetition = placement.frame.cycle_repetition
            max_shift = min(placement.frame.base_flexibility,
                            repetition - 1)
            shift = self._rng.randint(0, max_shift) if max_shift else 0
            new_base = (placement.frame.base_cycle + shift) % repetition
            if (new_channel is placement.channel
                    and new_slot == placement.slot_id
                    and new_base == placement.base_cycle):
                continue
            if not self._feasible(placements, index, new_channel,
                                  new_slot, new_base):
                continue
            old = (placement.channel, placement.slot_id,
                   placement.base_cycle)
            placement.channel = new_channel
            placement.slot_id = new_slot
            placement.base_cycle = new_base
            new_cost = _cost(placements, params, self._objective)
            if new_cost < current_cost:
                current_cost = new_cost
                self.improvements += 1
            else:
                (placement.channel, placement.slot_id,
                 placement.base_cycle) = old

        return self._to_table(placements)

    def _to_table(self, placements: Sequence[_Placement]) -> ScheduleTable:
        table = ScheduleTable(self._params)
        for placement in placements:
            bound = dataclasses.replace(
                placement.frame,
                frame_id=placement.slot_id,
                base_cycle=placement.base_cycle,
            )
            table.assign(placement.channel, SlotAssignment(
                slot_id=placement.slot_id, frame=bound))
        return table
