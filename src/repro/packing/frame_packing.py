"""Frame packing: signals -> schedulable packed messages.

The packer performs three transformations, in order:

1. **Merge** (bin packing): periodic signals from the same ECU with the
   same period are first-fit-decreasing packed into frames bounded by the
   static slot's payload capacity.  A packed frame's offset is the
   *maximum* member offset (the instant all member values exist) and its
   deadline the *minimum* member deadline (conservative on both ends).
2. **Split** (chunking): a signal larger than one payload becomes a
   multi-chunk message; the instance is delivered when all chunks are.
3. **Group expansion**: a packed message with period < communication
   cycle is expanded into ``m = ceil(cycle / period)`` groups; group
   ``g`` carries instances ``g, g+m, g+2m, ...`` with period ``m x
   period`` and offset ``offset + g x period``, each group owning its own
   static slot.  This is how production FlexRay tooling maps
   sub-cycle-period signals onto the cycle raster.

The result knows how to emit the two artifacts schedulers need: the
chunk :class:`~repro.protocol.frame.Frame` templates (for schedule-table
construction) and the message sources (for the hosts).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.protocol.arrivals import MessageSource, PeriodicSource, SporadicSource
from repro.protocol.frame import Frame, FrameKind
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.signal import Signal, SignalSet
from repro.sim.rng import RngStream

__all__ = ["PackedMessage", "PackingResult", "pack_signals",
           "derive_params_for"]


@dataclass(frozen=True)
class PackedMessage:
    """One schedulable message produced by the packer.

    Attributes:
        message_id: Unique ID; merged frames are named after their
            members (``"pack:E0:P8:0"``), group expansions carry an
            ``@g<i>`` suffix.
        chunks: Chunk frame templates (one per chunk; slot IDs unbound).
        period_ms: Effective period (group-expanded when applicable).
        offset_ms: Effective first-release offset.
        deadline_ms: Relative deadline.
        priority: Deadline-monotonic priority (smaller = more urgent).
        aperiodic: Whether this is an event-triggered (dynamic) message.
        member_signals: Names of the original signals carried.
    """

    message_id: str
    chunks: Tuple[Frame, ...]
    period_ms: float
    offset_ms: float
    deadline_ms: float
    priority: int
    aperiodic: bool = False
    member_signals: Tuple[str, ...] = ()

    @property
    def payload_bits(self) -> int:
        """Total payload carried per instance, summed over chunks."""
        return sum(chunk.payload_bits for chunk in self.chunks)

    @property
    def chunk_count(self) -> int:
        """Number of chunk frames per instance."""
        return len(self.chunks)


@dataclass
class PackingResult:
    """The packer's full output for one workload.

    Attributes:
        messages: All packed messages (periodic groups and aperiodics).
        params: The cluster parameters packing was performed against.
        unpackable: Signals that could not be packed (empty on success;
            populated only when ``strict=False``).
    """

    messages: List[PackedMessage]
    params: SegmentGeometry
    unpackable: List[str] = field(default_factory=list)

    def periodic_messages(self) -> List[PackedMessage]:
        """Time-triggered messages, deadline-monotonic order."""
        periodic = [m for m in self.messages if not m.aperiodic]
        return sorted(periodic, key=lambda m: (m.deadline_ms, m.message_id))

    def aperiodic_messages(self) -> List[PackedMessage]:
        """Event-triggered messages, priority order."""
        aperiodic = [m for m in self.messages if m.aperiodic]
        return sorted(aperiodic, key=lambda m: (m.priority, m.message_id))

    def static_frames(self) -> List[Frame]:
        """All periodic chunk templates in placement-priority order."""
        frames: List[Frame] = []
        for message in self.periodic_messages():
            frames.extend(message.chunks)
        return frames

    def dynamic_frame_ids(self) -> Dict[str, int]:
        """Frame-ID assignment for aperiodic messages (priority order).

        Lower frame IDs arbitrate earlier in the dynamic segment, so
        higher-priority messages get lower IDs, starting right after the
        static slots -- the ID ranges the paper quotes (81-110 for 80
        static slots) fall out of exactly this rule.
        """
        first = self.params.first_dynamic_slot_id
        return {
            message.message_id: first + index
            for index, message in enumerate(self.aperiodic_messages())
        }

    def build_sources(
        self,
        rng: RngStream,
        instance_limit: Optional[int] = None,
        aperiodic_jitter: float = 0.2,
    ) -> List[MessageSource]:
        """Instantiate host sources for every packed message.

        Args:
            rng: Experiment stream (sporadic jitter draws split from it).
            instance_limit: Per-message instance cap (running-time
                experiments); ``None`` = unbounded.
            aperiodic_jitter: Relative jitter on sporadic inter-arrivals.
        """
        params = self.params
        sources: List[MessageSource] = []
        id_of = self.dynamic_frame_ids()
        for message in self.messages:
            if message.aperiodic:
                frame_id = id_of[message.message_id]
                chunks = tuple(
                    dataclasses.replace(chunk, frame_id=frame_id)
                    for chunk in message.chunks
                )
                sources.append(SporadicSource(
                    chunks=chunks,
                    min_interarrival_mt=params.ms_to_mt(message.period_ms),
                    offset_mt=params.ms_to_mt(message.offset_ms),
                    deadline_mt=params.ms_to_mt(message.deadline_ms),
                    priority=message.priority,
                    rng=rng.split(f"sporadic/{message.message_id}"),
                    jitter=aperiodic_jitter,
                    limit=instance_limit,
                ))
            else:
                sources.append(PeriodicSource(
                    chunks=message.chunks,
                    period_mt=params.ms_to_mt(message.period_ms),
                    offset_mt=params.ms_to_mt(message.offset_ms),
                    deadline_mt=params.ms_to_mt(message.deadline_ms),
                    priority=message.priority,
                    limit=instance_limit,
                ))
        return sources

    def summary(self) -> Dict[str, float]:
        """Headline packing statistics."""
        periodic = self.periodic_messages()
        return {
            "messages": len(self.messages),
            "periodic": len(periodic),
            "aperiodic": len(self.aperiodic_messages()),
            "static_frames": len(self.static_frames()),
            "payload_bits_per_cycle": sum(
                m.payload_bits * (self.params.cycle_ms / m.period_ms)
                for m in periodic
            ),
        }


def _bin_pack_signals(signals: List[Signal],
                      capacity_bits: int) -> List[List[Signal]]:
    """First-fit decreasing bin packing of signals into frame payloads."""
    bins: List[Tuple[int, List[Signal]]] = []  # (used_bits, members)
    for signal in sorted(signals, key=lambda s: (-s.size_bits, s.name)):
        placed = False
        for index, (used, members) in enumerate(bins):
            if used + signal.size_bits <= capacity_bits:
                bins[index] = (used + signal.size_bits, members + [signal])
                placed = True
                break
        if not placed:
            bins.append((signal.size_bits, [signal]))
    return [members for __, members in bins]


def _split_into_chunks(payload_bits: int, capacity_bits: int) -> List[int]:
    """Even chunk sizes for a payload exceeding one frame."""
    count = math.ceil(payload_bits / capacity_bits)
    base = payload_bits // count
    remainder = payload_bits - base * count
    return [base + (1 if index < remainder else 0) for index in range(count)]


def _message_priority(deadline_ms: float) -> int:
    """Deadline-monotonic priority (microsecond resolution)."""
    return int(round(deadline_ms * 1000))


def _select_repetition(period_ms: float, deadline_ms: float,
                       cycle_ms: float) -> int:
    """Cycle repetition for a message, preferring phase alignment.

    The service interval ``repetition * cycle`` must not exceed the
    period (never under-serve) nor -- when the deadline allows slack --
    the deadline.  Among admissible powers of two, the largest one that
    *divides* the period is preferred: then every release lands in a
    firing cycle and the release-to-slot delay stays sub-cycle.  When no
    repetition > 1 divides the period, fall back to 1 (fire every cycle;
    the buffer's overwrite semantics keep this correct, merely using
    more slots).
    """
    limit = min(period_ms, max(cycle_ms, deadline_ms))
    best = 1
    repetition = 1
    while repetition * 2 * cycle_ms <= limit and repetition < 64:
        repetition *= 2
        quotient = period_ms / (repetition * cycle_ms)
        if abs(quotient - round(quotient)) < 1e-9:
            best = repetition
    return best


def pack_signals(
    signals: SignalSet,
    params: SegmentGeometry,
    merge: bool = True,
    strict: bool = True,
) -> PackingResult:
    """Pack a signal set into schedulable messages.

    Args:
        signals: The workload.
        params: Cluster configuration (slot capacity, cycle length).
        merge: Whether to bin-pack small same-ECU same-period signals
            together; disabling gives one message per signal (used by the
            packing ablation).
        strict: Raise on unpackable aperiodic signals instead of
            reporting them in ``PackingResult.unpackable``.

    Returns:
        A :class:`PackingResult`.

    Raises:
        ValueError: If a signal cannot be packed and ``strict`` is set,
            or if the static slot capacity is zero.
    """
    capacity = params.static_slot_capacity_bits
    if capacity <= 0:
        raise ValueError(
            "static slot capacity is zero -- slots are too short for any "
            "payload at this bit rate"
        )
    cycle_ms = params.cycle_ms
    messages: List[PackedMessage] = []
    unpackable: List[str] = []

    # ------------------------------------------------------------------
    # Periodic signals: merge + split + group-expand.
    # ------------------------------------------------------------------
    periodic = signals.periodic().signals
    partitions: Dict[Tuple[int, float], List[Signal]] = {}
    oversized: List[Signal] = []
    for signal in periodic:
        if signal.size_bits > capacity:
            oversized.append(signal)
        else:
            partitions.setdefault((signal.ecu, signal.period_ms), []).append(signal)

    packed_frames: List[Tuple[str, int, int, float, float, float, Tuple[str, ...], List[int]]] = []
    # Each entry: (message_id, ecu, __, period, offset, deadline, members, chunk_sizes)

    for (ecu, period_ms), members in sorted(partitions.items()):
        groups = _bin_pack_signals(members, capacity) if merge \
            else [[signal] for signal in members]
        for index, group in enumerate(groups):
            payload = sum(s.size_bits for s in group)
            offset = max(s.offset_ms for s in group)
            deadline = min(s.deadline_ms for s in group)
            if len(group) == 1:
                message_id = group[0].name
            else:
                message_id = f"pack:E{ecu}:P{period_ms:g}:{index}"
            packed_frames.append((
                message_id, ecu, payload, period_ms, offset, deadline,
                tuple(s.name for s in group), [payload],
            ))

    for signal in oversized:
        chunk_sizes = _split_into_chunks(signal.size_bits, capacity)
        packed_frames.append((
            signal.name, signal.ecu, signal.size_bits, signal.period_ms,
            signal.offset_ms, signal.deadline_ms, (signal.name,),
            chunk_sizes,
        ))

    for (message_id, ecu, __, period_ms, offset_ms, deadline_ms,
         member_names, chunk_sizes) in packed_frames:
        group_count = max(1, math.ceil(cycle_ms / period_ms - 1e-9)) \
            if period_ms < cycle_ms else 1
        group_period = period_ms * group_count
        repetition = _select_repetition(group_period, deadline_ms, cycle_ms)
        # The slot allocator may shift the base cycle to share slots, at
        # one cycle of worst-case latency per shifted cycle; bound the
        # shift by what the deadline can absorb.
        flexibility = min(
            repetition - 1,
            max(0, int(deadline_ms / cycle_ms) - 1),
        )
        for group in range(group_count):
            group_offset = offset_ms + group * period_ms
            group_id = message_id if group_count == 1 \
                else f"{message_id}@g{group}"
            base_cycle = int(group_offset // cycle_ms) % repetition
            phase_mt = params.ms_to_mt(group_offset % cycle_ms)
            chunks = tuple(
                Frame(
                    frame_id=1,  # bound to a slot by the schedule builder
                    message_id=group_id,
                    payload_bits=size,
                    producer_ecu=ecu,
                    base_cycle=base_cycle,
                    cycle_repetition=repetition,
                    kind=FrameKind.STATIC,
                    chunk=chunk_index,
                    chunk_count=len(chunk_sizes),
                    preferred_phase_mt=phase_mt,
                    base_flexibility=flexibility,
                    overhead_bits=params.frame_overhead_bits,
                )
                for chunk_index, size in enumerate(chunk_sizes)
            )
            messages.append(PackedMessage(
                message_id=group_id,
                chunks=chunks,
                period_ms=group_period,
                offset_ms=group_offset,
                deadline_ms=deadline_ms,
                priority=_message_priority(deadline_ms),
                aperiodic=False,
                member_signals=member_names,
            ))

    # ------------------------------------------------------------------
    # Aperiodic signals: one message each (dynamic frames are already
    # variable-length, so merging buys nothing and costs latency).
    # ------------------------------------------------------------------
    for signal in signals.aperiodic().signals:
        if signal.size_bits > params.max_payload_bits:
            if strict:
                raise ValueError(
                    f"aperiodic signal {signal.name} "
                    f"({signal.size_bits} bits) exceeds the protocol "
                    f"payload maximum {params.max_payload_bits}"
                )
            unpackable.append(signal.name)
            continue
        interarrival = signal.min_interarrival_ms or signal.period_ms
        chunk = Frame(
            frame_id=params.first_dynamic_slot_id,  # final ID set later
            message_id=signal.name,
            payload_bits=signal.size_bits,
            producer_ecu=signal.ecu,
            kind=FrameKind.DYNAMIC,
            overhead_bits=params.frame_overhead_bits,
        )
        messages.append(PackedMessage(
            message_id=signal.name,
            chunks=(chunk,),
            period_ms=interarrival,
            offset_ms=signal.offset_ms,
            deadline_ms=signal.deadline_ms,
            priority=signal.effective_priority,
            aperiodic=True,
            member_signals=(signal.name,),
        ))

    return PackingResult(messages=messages, params=params,
                         unpackable=unpackable)


def derive_params_for(
    signals: SignalSet,
    cycle_ms: float = 5.0,
    minislots: int = 100,
    macrotick_us: float = 1.0,
    channel_count: int = 2,
    slot_headroom: float = 1.0,
    template: Optional[SegmentGeometry] = None,
) -> SegmentGeometry:
    """Derive a feasible parameter set for a workload.

    The paper's published gdStaticSlot (40 MT) cannot physically carry
    its own case-study message sizes at FlexRay's 10 Mbit/s, so the
    case-study experiments derive the slot length from the workload: the
    slot is sized to the largest *packed* frame, and the static-slot
    count to what the packed frames demand (plus the requested dynamic
    segment).  DESIGN.md documents this substitution.

    Args:
        signals: The workload the parameters must carry.
        cycle_ms: Communication-cycle length.
        minislots: Dynamic-segment length in minislots.
        macrotick_us: Macrotick length.
        channel_count: 1 or 2.
        slot_headroom: Multiplier (>= 1) on the required static slot
            count, leaving idle slots -- the slack CoEfficient exploits.
        template: Backend geometry the derivation specializes: supplies
            the bit rate, frame overhead, payload cap and minislot
            length, and fixes the *type* of the returned parameter set
            (via :func:`dataclasses.replace`).  Defaults to the FlexRay
            backend's template, preserving the pre-refactor behaviour.

    Returns:
        A validated parameter set of the template's type.

    Raises:
        ValueError: If the workload cannot fit the cycle at all.
    """
    if slot_headroom < 1.0:
        raise ValueError(f"slot_headroom must be >= 1, got {slot_headroom}")
    if template is None:
        from repro.protocol.backend import get_backend
        template = get_backend("flexray").geometry_template()
    bits_per_mt = template.bit_rate_mbps * macrotick_us
    overhead = template.frame_overhead_bits
    minislot_mt = template.gd_minislot_mt
    cycle_mt = int(cycle_ms * 1000 / macrotick_us)

    def _probe(slot_mt: int, slots: int,
               probe_minislots: int) -> SegmentGeometry:
        return dataclasses.replace(
            template,
            gd_macrotick_us=macrotick_us,
            gd_cycle_mt=cycle_mt,
            gd_static_slot_mt=slot_mt,
            g_number_of_static_slots=slots,
            gd_minislot_mt=minislot_mt,
            g_number_of_minislots=probe_minislots,
            p_latest_tx_minislot=0,
            channel_count=channel_count,
        )

    # Iterate: slot size determines packing, packing determines slot size.
    # Start from the largest single signal, converge in a few rounds.
    periodic_sizes = [s.size_bits for s in signals.periodic().signals]
    if not periodic_sizes:
        periodic_sizes = [64]
    largest = min(max(periodic_sizes), template.max_payload_bits)
    slot_mt = int(math.ceil((largest + overhead) / bits_per_mt)) + 2

    for __ in range(4):
        packing = pack_signals(signals, _probe(slot_mt, 2, 0))
        frames = packing.static_frames()
        if not frames:
            break
        required = max(f.payload_bits for f in frames) + overhead
        new_slot_mt = int(math.ceil(required / bits_per_mt)) + 2
        if new_slot_mt == slot_mt:
            break
        slot_mt = new_slot_mt

    # Demand: slots per cycle per channel, accounting for repetition
    # sharing.  Each frame with repetition r claims 1/r of a slot.
    packing = pack_signals(signals, _probe(slot_mt, 2, 0))
    demand = sum(1.0 / f.cycle_repetition for f in packing.static_frames())
    slots_needed = max(2, math.ceil(demand * slot_headroom / channel_count))

    dynamic_mt = minislots * minislot_mt
    static_mt = slots_needed * slot_mt
    if static_mt + dynamic_mt > cycle_mt:
        raise ValueError(
            f"workload needs {static_mt} MT static + {dynamic_mt} MT "
            f"dynamic but the cycle is only {cycle_mt} MT; use a longer "
            f"cycle or fewer minislots"
        )
    return _probe(slot_mt, slots_needed, minislots)
