"""Protocol-neutral segment geometry for time-triggered rounds.

The scheduling core operates on one abstraction: a *communication
round* of ``gd_cycle_mt`` macroticks containing a TDMA static segment
(fixed-length windows with static ownership), an optional
minislot-arbitrated dynamic segment, an optional symbol window, and
idle time.  FlexRay cycles and time-triggered-Ethernet integration
cycles are both instances of this geometry; each backend package
subclasses :class:`SegmentGeometry` with its own field defaults,
frame-overhead model, presets and schedule-construction policy.

Field names retain the FlexRay specification's Hungarian-style ``gd``/
``g``/``p`` prefixes: they are the vocabulary the source paper (and the
whole repo) speaks, and they map one-to-one onto time-triggered
Ethernet concepts (static slot <-> scheduled traffic window, minislot
<-> rate-constrained quantum, communication cycle <-> integration
cycle, NIT <-> guard band).  ``docs/backends.md`` tabulates the
mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, ClassVar, Dict, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocol.frame import Frame
    from repro.protocol.schedule import ScheduleTable

__all__ = ["SegmentGeometry"]


@dataclass(frozen=True)
class SegmentGeometry:
    """Validated, immutable round geometry (the protocol-neutral contract).

    Attributes:
        gd_macrotick_us: Macrotick length in microseconds.
        gd_cycle_mt: Communication-cycle length in macroticks
            (= gdMacroPerCycle when gdMacrotick is 1 us).
        gd_static_slot_mt: Static slot length in macroticks.
        g_number_of_static_slots: Static slots per cycle (gNumberOfStaticSlots).
        gd_minislot_mt: Minislot length in macroticks (gdMinislot).
        g_number_of_minislots: Minislots per cycle (gNumberOfMinislots).
        gd_symbol_window_mt: Symbol-window length (gdSymbolWindow); the
            paper's configuration sets it to 0.
        gd_action_point_offset_mt: Static-slot action point offset.
        gd_minislot_action_point_offset_mt: Minislot action point offset
            (gdMinislotActionPointOffset).
        gd_dynamic_slot_idle_phase_minislots: Idle minislots appended after
            each dynamic transmission (gdDynamicSlotIdlePhase).
        p_latest_tx_minislot: Last minislot index at which a node may start
            a dynamic transmission (pLatestTx).  ``None`` derives the
            spec-conformant value from the largest expressible frame.
        bit_rate_mbps: Channel bit rate; FlexRay runs at 10 Mbit/s.
        channel_count: 1 (single channel) or 2 (dual channel).
        frame_overhead_bits: Wire overhead (header + trailer) added to
            every frame payload by the backend protocol.
        max_payload_bits: Largest payload one frame of the backend
            protocol can carry.
    """

    #: Backend identity: stamped into cache keys, result-store run
    #: identity and canonical trace bytes so runs of different
    #: protocols can never alias.
    protocol: ClassVar[str] = "generic"

    gd_macrotick_us: float = 1.0
    gd_cycle_mt: int = 5000
    gd_static_slot_mt: int = 40
    g_number_of_static_slots: int = 80
    gd_minislot_mt: int = 8
    g_number_of_minislots: int = 100
    gd_symbol_window_mt: int = 0
    gd_action_point_offset_mt: int = 1
    gd_minislot_action_point_offset_mt: int = 2
    gd_dynamic_slot_idle_phase_minislots: int = 1
    p_latest_tx_minislot: int = 0
    bit_rate_mbps: float = 10.0
    channel_count: int = 2
    frame_overhead_bits: int = 64
    max_payload_bits: int = 254 * 8

    def __post_init__(self) -> None:
        if self.gd_macrotick_us <= 0:
            raise ValueError("gd_macrotick_us must be positive")
        if self.gd_cycle_mt <= 0:
            raise ValueError("gd_cycle_mt must be positive")
        if self.gd_static_slot_mt <= 0:
            raise ValueError("gd_static_slot_mt must be positive")
        if self.g_number_of_static_slots < 2:
            # The spec requires at least 2 static slots (sync frames).
            raise ValueError("g_number_of_static_slots must be >= 2")
        if self.gd_minislot_mt <= 0:
            raise ValueError("gd_minislot_mt must be positive")
        if self.g_number_of_minislots < 0:
            raise ValueError("g_number_of_minislots must be >= 0")
        if self.gd_symbol_window_mt < 0:
            raise ValueError("gd_symbol_window_mt must be >= 0")
        if self.bit_rate_mbps <= 0:
            raise ValueError("bit_rate_mbps must be positive")
        if self.channel_count not in (1, 2):
            raise ValueError("channel_count must be 1 or 2")
        if self.frame_overhead_bits < 0:
            raise ValueError("frame_overhead_bits must be >= 0")
        if self.max_payload_bits <= 0:
            raise ValueError("max_payload_bits must be positive")
        used = (self.static_segment_mt + self.dynamic_segment_mt
                + self.gd_symbol_window_mt)
        if used > self.gd_cycle_mt:
            raise ValueError(
                f"segments ({used} MT) exceed the communication cycle "
                f"({self.gd_cycle_mt} MT)"
            )
        if not 0 <= self.p_latest_tx_minislot <= self.g_number_of_minislots:
            raise ValueError(
                "p_latest_tx_minislot must lie within the dynamic segment"
            )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def static_segment_mt(self) -> int:
        """Static-segment length in macroticks."""
        return self.gd_static_slot_mt * self.g_number_of_static_slots

    @property
    def dynamic_segment_mt(self) -> int:
        """Dynamic-segment length in macroticks."""
        return self.gd_minislot_mt * self.g_number_of_minislots

    @property
    def nit_mt(self) -> int:
        """Network idle time: cycle remainder after all segments."""
        return (self.gd_cycle_mt - self.static_segment_mt
                - self.dynamic_segment_mt - self.gd_symbol_window_mt)

    @property
    def cycle_us(self) -> float:
        """Communication-cycle length in microseconds (gdCycle)."""
        return self.gd_cycle_mt * self.gd_macrotick_us

    @property
    def cycle_ms(self) -> float:
        """Communication-cycle length in milliseconds."""
        return self.cycle_us / 1000.0

    @property
    def bits_per_macrotick(self) -> float:
        """Channel bits transferable in one macrotick."""
        return self.bit_rate_mbps * self.gd_macrotick_us

    @property
    def static_slot_capacity_bits(self) -> int:
        """Payload bits one static slot can carry.

        The action-point offset at both slot edges and the frame overhead
        (header + trailer CRC) are subtracted from the raw slot capacity.
        """
        usable_mt = self.gd_static_slot_mt - 2 * self.gd_action_point_offset_mt
        raw_bits = int(usable_mt * self.bits_per_macrotick)
        capacity = raw_bits - self.frame_overhead_bits
        return max(0, min(capacity, self.max_payload_bits))

    @property
    def first_dynamic_slot_id(self) -> int:
        """Slot ID of the first dynamic slot (static IDs are 1-based)."""
        return self.g_number_of_static_slots + 1

    @property
    def last_dynamic_slot_id(self) -> int:
        """Largest usable dynamic slot ID (one per minislot at minimum)."""
        return self.g_number_of_static_slots + self.g_number_of_minislots

    @property
    def effective_latest_tx(self) -> int:
        """pLatestTx: latest minislot index at which a send may start.

        In a real cluster each *node* derives pLatestTx from its own
        largest dynamic frame, so a node with small frames may start
        late while one with a maximal frame must stop early.  The
        simulation engine enforces the underlying invariant directly --
        a transmission is held for the next cycle unless it fits the
        remaining minislots -- so the auto value (configured 0) imposes
        no extra gate.  Setting ``p_latest_tx_minislot`` explicitly
        models a cluster-wide conservative configuration.
        """
        if self.p_latest_tx_minislot > 0:
            return self.p_latest_tx_minislot
        return self.g_number_of_minislots

    # ------------------------------------------------------------------
    # Unit conversion helpers
    # ------------------------------------------------------------------

    def ms_to_mt(self, milliseconds: float) -> int:
        """Convert milliseconds to (rounded) macroticks."""
        return int(round(milliseconds * 1000.0 / self.gd_macrotick_us))

    def mt_to_ms(self, macroticks: int) -> float:
        """Convert macroticks to milliseconds."""
        return macroticks * self.gd_macrotick_us / 1000.0

    def transmission_mt(self, bits: int) -> int:
        """Macroticks needed to transfer ``bits`` on the channel."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return int(math.ceil(bits / self.bits_per_macrotick))

    def minislots_for_bits(self, payload_bits: int) -> int:
        """Minislots a dynamic transmission of ``payload_bits`` occupies.

        Includes frame overhead and the mandated dynamic-slot idle phase.
        """
        total_bits = payload_bits + self.frame_overhead_bits
        tx_mt = self.transmission_mt(total_bits) \
            + self.gd_minislot_action_point_offset_mt
        slots = int(math.ceil(tx_mt / self.gd_minislot_mt))
        return max(1, slots) + self.gd_dynamic_slot_idle_phase_minislots

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    def with_minislots(self, count: int) -> "SegmentGeometry":
        """Copy with a different gNumberOfMinislots (the Fig. 3/5 sweep axis)."""
        return replace(self, g_number_of_minislots=count)

    def with_static_slots(self, count: int) -> "SegmentGeometry":
        """Copy with a different gNumberOfStaticSlots (80 vs 120 in Figs. 1-2)."""
        return replace(self, g_number_of_static_slots=count)

    def with_channels(self, count: int) -> "SegmentGeometry":
        """Copy with a different channel count."""
        return replace(self, channel_count=count)

    def describe(self) -> Dict[str, float]:
        """Human-readable parameter summary (for experiment logs)."""
        return {
            "gdMacrotick_us": self.gd_macrotick_us,
            "gdCycle_us": self.cycle_us,
            "gdStaticSlot_mt": self.gd_static_slot_mt,
            "gNumberOfStaticSlots": self.g_number_of_static_slots,
            "gdMinislot_mt": self.gd_minislot_mt,
            "gNumberOfMinislots": self.g_number_of_minislots,
            "pLatestTx": self.effective_latest_tx,
            "staticSegment_mt": self.static_segment_mt,
            "dynamicSegment_mt": self.dynamic_segment_mt,
            "NIT_mt": self.nit_mt,
            "staticSlotCapacity_bits": self.static_slot_capacity_bits,
            "channels": self.channel_count,
        }


    # ------------------------------------------------------------------
    # Backend seam
    # ------------------------------------------------------------------

    def build_schedule(self, frames: Sequence["Frame"],
                       strategy: str = "distribute") -> "ScheduleTable":
        """Construct the static-segment schedule for ``frames``.

        The neutral implementation is the greedy dual-channel allocator
        in :mod:`repro.protocol.schedule`; backends override this to
        impose protocol-specific placement policy (e.g. the
        time-triggered-Ethernet backend adds jitter-constrained window
        placement on top of it).
        """
        from repro.protocol.schedule import build_dual_schedule

        return build_dual_schedule(frames, self, strategy)
