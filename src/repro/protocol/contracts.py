"""Structural contracts of the protocol-neutral core.

The scheduling core (``repro.core``), the timeline engines
(``repro.timeline``), the verifier (``repro.verify``), the analysis
layer and the service depend on the *shapes* documented here, not on
any backend package.  The contracts are expressed as
:class:`typing.Protocol` classes so they can be checked structurally
(``isinstance`` with ``runtime_checkable``) and by mypy without
inheriting from them.

Five contracts define a backend:

==================  ====================================================
Contract            Carried by
==================  ====================================================
segment geometry    :class:`repro.protocol.geometry.SegmentGeometry`
window ownership    :class:`repro.protocol.schedule.ScheduleTable`
capacity / slack    ``static_slot_capacity_bits`` / ``minislots_for_bits``
                    on the geometry plus the compiled round's idle maps
fault model         :data:`FaultOracle` (``(channel, bits, time) -> bool``)
trace identity      :data:`TraceIdentity` -- the ``protocol`` string
                    stamped into cache keys, result-store run identity
                    and canonical trace bytes
==================  ====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocol.channel import Channel
    from repro.protocol.frame import Frame
    from repro.protocol.schedule import ScheduleTable

__all__ = ["FaultOracle", "GeometryContract", "TraceIdentity"]

#: The fault model: a predicate deciding whether a transmission of
#: ``bits`` wire bits on ``channel`` starting at macrotick ``time`` is
#: corrupted.  Backends and fault injectors provide implementations;
#: the segment engines only ever call it.
FaultOracle = Callable[["Channel", int, int], bool]


@runtime_checkable
class TraceIdentity(Protocol):
    """Anything that declares which protocol produced it.

    The ``protocol`` string is the backend identity token: it flows
    into :func:`repro.experiments.cache.run_key`, the result store's
    run identity and the header line of
    :func:`repro.sim.trace.canonical_trace_bytes`, so artifacts from
    different backends can never alias.
    """

    @property
    def protocol(self) -> str: ...


@runtime_checkable
class GeometryContract(Protocol):
    """The slice of :class:`~repro.protocol.geometry.SegmentGeometry`
    the core layers actually consume.

    Kept deliberately small: a backend geometry may add fields, but the
    core must not require more than this.
    """

    @property
    def gd_macrotick_us(self) -> float: ...
    @property
    def gd_cycle_mt(self) -> int: ...
    @property
    def gd_static_slot_mt(self) -> int: ...
    @property
    def g_number_of_static_slots(self) -> int: ...
    @property
    def gd_minislot_mt(self) -> int: ...
    @property
    def g_number_of_minislots(self) -> int: ...
    @property
    def channel_count(self) -> int: ...
    @property
    def frame_overhead_bits(self) -> int: ...
    @property
    def max_payload_bits(self) -> int: ...
    @property
    def static_slot_capacity_bits(self) -> int: ...

    def ms_to_mt(self, milliseconds: float) -> int: ...
    def mt_to_ms(self, macroticks: int) -> float: ...
    def transmission_mt(self, bits: int) -> int: ...
    def minislots_for_bits(self, payload_bits: int) -> int: ...
    def build_schedule(self, frames: Sequence["Frame"],
                       strategy: str = "distribute") -> "ScheduleTable": ...
