"""Static-segment schedule table construction.

Section II-B: "each node contains a schedule table [that] maintains the
scheduling sequences of transmitting the messages within the static
segments" -- a mapping from (cycle, slot) to frame.

FlexRay's static segment sends at communication-cycle granularity, so a
message's period is mapped onto the cycle raster:

- ``period >= cycle``: the frame uses *cycle multiplexing* -- it occupies
  its slot only in cycles where ``cycle % repetition == base_cycle``,
  with ``repetition`` the largest power of two (<= 64) such that
  ``repetition * cycle_length <= period``.  (Rounding the service
  interval *down* never under-serves the message.)
- ``period < cycle``: the message needs ``ceil(cycle / period)`` slot
  instances per cycle, spread evenly across the static segment so
  consecutive instances see similar queueing delay.

Slot sharing: two frames may own the same slot ID if their
(base_cycle, repetition) patterns never coincide; for power-of-two
repetitions the patterns collide iff the base cycles are congruent modulo
the smaller repetition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.protocol.channel import Channel
from repro.protocol.frame import Frame
from repro.protocol.geometry import SegmentGeometry

__all__ = ["SlotAssignment", "ScheduleTable", "build_schedule",
           "build_dual_schedule", "ChannelStrategy",
           "repetition_for_period", "patterns_conflict",
           "ScheduleInfeasibleError"]


def repetition_for_period(period_ms: float, cycle_ms: float) -> int:
    """Largest power-of-two repetition serving ``period_ms`` on the raster.

    Returns 1 when the period is shorter than the cycle (the caller must
    then allocate multiple slots per cycle instead).
    """
    if period_ms <= 0 or cycle_ms <= 0:
        raise ValueError("period and cycle must be positive")
    repetition = 1
    while repetition * 2 * cycle_ms <= period_ms and repetition < 64:
        repetition *= 2
    return repetition


def patterns_conflict(base_a: int, rep_a: int, base_b: int, rep_b: int) -> bool:
    """Whether two (base, repetition) cycle patterns ever share a cycle.

    For power-of-two repetitions, pattern A fires at cycles
    ``{base_a + k * rep_a}``; the sets intersect iff the bases agree
    modulo ``gcd(rep_a, rep_b)`` (= the smaller repetition here).
    """
    modulus = math.gcd(rep_a, rep_b)
    return base_a % modulus == base_b % modulus


@dataclass(frozen=True)
class SlotAssignment:
    """One frame's claim on a static slot."""

    slot_id: int
    frame: Frame

    def fires_in(self, cycle: int) -> bool:
        """Whether this assignment transmits in communication cycle ``cycle``."""
        return self.frame.sends_in_cycle(cycle)


class ScheduleTable:
    """Per-channel static-segment schedule.

    The table answers the one question the static engine asks each slot:
    *which frame (if any) owns channel X, cycle c, slot s?*
    """

    def __init__(self, params: SegmentGeometry) -> None:
        self._params = params
        self._assignments: Dict[Channel, Dict[int, List[SlotAssignment]]] = {}

    @property
    def params(self) -> SegmentGeometry:
        """Cluster parameters the table was built for."""
        return self._params

    def assign(self, channel: Channel, assignment: SlotAssignment) -> None:
        """Add an assignment, enforcing slot-sharing compatibility.

        Raises:
            ValueError: If the slot ID is outside the static segment or
                the cycle pattern collides with an existing assignment.
        """
        slot_id = assignment.slot_id
        if not 1 <= slot_id <= self._params.g_number_of_static_slots:
            raise ValueError(
                f"slot {slot_id} outside static segment "
                f"[1, {self._params.g_number_of_static_slots}]"
            )
        per_slot = self._assignments.setdefault(channel, {}).setdefault(slot_id, [])
        for existing in per_slot:
            if patterns_conflict(
                existing.frame.base_cycle, existing.frame.cycle_repetition,
                assignment.frame.base_cycle, assignment.frame.cycle_repetition,
            ):
                raise ValueError(
                    f"slot {slot_id} channel {channel}: cycle pattern of "
                    f"{assignment.frame.message_id} collides with "
                    f"{existing.frame.message_id}"
                )
        per_slot.append(assignment)

    def lookup(self, channel: Channel, cycle: int, slot_id: int) -> Optional[Frame]:
        """The frame owning (channel, cycle, slot), or ``None`` (idle slot)."""
        per_slot = self._assignments.get(channel, {}).get(slot_id, ())
        for assignment in per_slot:
            if assignment.fires_in(cycle):
                return assignment.frame
        return None

    def assignments(self, channel: Channel) -> List[SlotAssignment]:
        """All assignments on a channel, ordered by slot."""
        per_channel = self._assignments.get(channel, {})
        out: List[SlotAssignment] = []
        for slot_id in sorted(per_channel):
            out.extend(per_channel[slot_id])
        return out

    def owned_slots(self, channel: Channel) -> List[int]:
        """Slot IDs with at least one assignment on a channel."""
        return sorted(self._assignments.get(channel, {}))

    def frames(self, channel: Channel) -> List[Frame]:
        """All frames scheduled on a channel."""
        return [a.frame for a in self.assignments(channel)]

    def idle_slot_count(self, channel: Channel, cycle: int) -> int:
        """Slots with no transmission on ``channel`` in ``cycle``."""
        total = self._params.g_number_of_static_slots
        busy = sum(
            1 for slot_id in range(1, total + 1)
            if self.lookup(channel, cycle, slot_id) is not None
        )
        return total - busy

    def utilization_over(self, channel: Channel, cycles: int) -> float:
        """Fraction of (slot, cycle) pairs carrying a frame."""
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        total = self._params.g_number_of_static_slots * cycles
        busy = sum(
            self._params.g_number_of_static_slots
            - self.idle_slot_count(channel, cycle)
            for cycle in range(cycles)
        )
        return busy / total


class ScheduleInfeasibleError(ValueError):
    """Raised when the static segment cannot hold the periodic workload."""


def _first_slot_at_or_after(phase_mt: int, params: SegmentGeometry) -> int:
    """First slot whose *action point* is at or after an in-cycle phase.

    Slot s transmits at ``(s-1) * gdStaticSlot + actionPointOffset``; a
    frame released at ``phase_mt`` can only ride slots satisfying that
    bound, so the allocator's rotation must start there (starting one
    slot early silently costs a whole period of latency).
    """
    slot_mt = params.gd_static_slot_mt
    offset = params.gd_action_point_offset_mt
    if phase_mt <= offset:
        return 1
    return (phase_mt - offset + slot_mt - 1) // slot_mt + 1


def build_schedule(
    frames: Sequence[Frame],
    params: SegmentGeometry,
    channels: Sequence[Channel],
) -> ScheduleTable:
    """Greedy slot allocation with cycle-multiplexed slot sharing.

    Frames are placed in the order given (callers sort by priority:
    deadline-monotonic order means urgent messages get early slots, which
    minimizes their in-cycle queuing delay).  Each frame is packed into
    the lowest slot whose existing cycle patterns admit it.

    Args:
        frames: Configured frames; their ``base_cycle``/``cycle_repetition``
            fields are honoured, and ``frame_id`` is *reassigned* to the
            allocated slot (the returned table's frames carry final IDs).
        params: Cluster parameters.
        channels: Channels to replicate the schedule onto (identical slot
            ownership on each, as the spec requires).

    Returns:
        A populated :class:`ScheduleTable`.

    Raises:
        ScheduleInfeasibleError: If the static segment runs out of slots.
    """
    import dataclasses

    table = ScheduleTable(params)
    # Track per-slot patterns once; replicate assignment across channels.
    slot_patterns: Dict[int, List[Tuple[int, int]]] = {}
    total_slots = params.g_number_of_static_slots

    def fits(slot_id: int, frame: Frame) -> bool:
        patterns = slot_patterns.setdefault(slot_id, [])
        return not any(
            patterns_conflict(base, rep, frame.base_cycle,
                              frame.cycle_repetition)
            for base, rep in patterns
        )

    def candidate_order(frame: Frame) -> List[int]:
        """Slots to try, lowest first, rotated past the preferred phase.

        When the frame's payload becomes available ``preferred_phase_mt``
        into the cycle, any slot whose *action point* precedes that phase
        would carry the value only in the *next* cycle; trying the slots
        whose action point is at or after the phase first keeps
        release-to-slot delay small.
        """
        all_slots = list(range(1, total_slots + 1))
        phase = frame.preferred_phase_mt
        if phase is None:
            return all_slots
        first_usable = _first_slot_at_or_after(phase, params)
        if first_usable > total_slots:
            return all_slots
        return all_slots[first_usable - 1:] + all_slots[:first_usable - 1]

    for frame in frames:
        placed = False
        for slot_id in candidate_order(frame):
            if not fits(slot_id, frame):
                continue
            bound = dataclasses.replace(frame, frame_id=slot_id)
            slot_patterns[slot_id].append(
                (frame.base_cycle, frame.cycle_repetition)
            )
            for channel in channels:
                table.assign(channel, SlotAssignment(slot_id=slot_id, frame=bound))
            placed = True
            break
        if not placed:
            raise ScheduleInfeasibleError(
                f"no static slot can host {frame.message_id} "
                f"(base={frame.base_cycle}, rep={frame.cycle_repetition}); "
                f"static segment has {total_slots} slots"
            )
    return table


class ChannelStrategy:
    """How static frames are spread over the dual channels.

    Attributes (class constants used as enum values):
        REPLICATE: Every frame transmits on both channels in the same
            slot -- full redundancy, half the aggregate capacity.  This
            is the FlexRay-specification default the paper calls
            "best-effort" redundancy.
        DISTRIBUTE: Each frame transmits once; channel A is filled first
            and channel B receives the spill.  This is the cooperative
            use of the dual channels CoEfficient builds on: channel B's
            remaining slots become a slack pool.
        DUPLICATE_BEST_EFFORT: Single-copy placement first (as
            DISTRIBUTE), then duplicates are added on the *other* channel
            wherever a compatible slot remains -- redundancy for as many
            frames as capacity allows.
    """

    REPLICATE = "replicate"
    DISTRIBUTE = "distribute"
    DUPLICATE_BEST_EFFORT = "duplicate-best-effort"

    ALL = (REPLICATE, DISTRIBUTE, DUPLICATE_BEST_EFFORT)


@dataclass
class _ChannelAllocator:
    """Per-channel slot-pattern bookkeeping for the dual builder."""

    params: SegmentGeometry
    patterns: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)

    def fits(self, slot_id: int, base: int, repetition: int) -> bool:
        existing = self.patterns.setdefault(slot_id, [])
        return not any(
            patterns_conflict(existing_base, existing_rep, base, repetition)
            for existing_base, existing_rep in existing
        )

    def claim(self, slot_id: int, base: int, repetition: int) -> None:
        self.patterns.setdefault(slot_id, []).append((base, repetition))

    def place(self, frame: Frame) -> Optional[Tuple[int, int]]:
        """Find and claim the best (slot, base_cycle) for ``frame``.

        Tries the frame's preferred base first across all slots (in
        phase-preferred order), then -- within the frame's declared
        ``base_flexibility`` -- later bases, each costing one cycle of
        worst-case latency but enabling slot sharing when every frame
        wants the same base (the common all-offsets-near-zero case).

        Returns:
            ``(slot_id, base_cycle)`` or ``None`` if nothing fits.
        """
        total = self.params.g_number_of_static_slots
        order = list(range(1, total + 1))
        phase = frame.preferred_phase_mt
        if phase is not None:
            first = min(total, _first_slot_at_or_after(phase, self.params))
            order = order[first - 1:] + order[:first - 1]
        repetition = frame.cycle_repetition
        max_shift = min(frame.base_flexibility, repetition - 1)
        for shift in range(max_shift + 1):
            base = (frame.base_cycle + shift) % repetition
            for slot_id in order:
                if self.fits(slot_id, base, repetition):
                    self.claim(slot_id, base, repetition)
                    return slot_id, base
        return None


def build_dual_schedule(
    frames: Sequence[Frame],
    params: SegmentGeometry,
    strategy: str = ChannelStrategy.DISTRIBUTE,
) -> ScheduleTable:
    """Build a dual-channel schedule table under a channel strategy.

    Args:
        frames: Frames in placement-priority order (most urgent first).
        params: Cluster parameters; ``channel_count`` selects whether
            channel B exists at all.
        strategy: One of :class:`ChannelStrategy`'s constants.

    Returns:
        A :class:`ScheduleTable` with per-channel assignments.  Frames
        that could not be placed at all raise; frames whose *duplicate*
        could not be placed under ``DUPLICATE_BEST_EFFORT`` are silently
        left single-copy (that is the "best effort").

    Raises:
        ScheduleInfeasibleError: If a primary copy cannot be placed on
            any channel.
        ValueError: If the strategy is unknown.
    """
    import dataclasses

    if strategy not in ChannelStrategy.ALL:
        raise ValueError(f"unknown channel strategy {strategy!r}")

    table = ScheduleTable(params)
    channels = [Channel.A]
    if params.channel_count == 2:
        channels.append(Channel.B)
    allocators = {channel: _ChannelAllocator(params) for channel in channels}

    if strategy == ChannelStrategy.REPLICATE:
        # One combined placement, mirrored on every channel: a slot must be
        # free on all channels simultaneously.
        combined = _ChannelAllocator(params)
        for frame in frames:
            placement = combined.place(frame)
            if placement is None:
                raise ScheduleInfeasibleError(
                    f"replicated schedule cannot host {frame.message_id}"
                )
            slot_id, base = placement
            bound = dataclasses.replace(frame, frame_id=slot_id,
                                        base_cycle=base)
            for channel in channels:
                table.assign(channel, SlotAssignment(slot_id=slot_id, frame=bound))
        return table

    # DISTRIBUTE and DUPLICATE_BEST_EFFORT share the primary placement.
    bound_primary: List[Tuple[Channel, Frame]] = []
    for frame in frames:
        placed_on: Optional[Channel] = None
        placement: Optional[Tuple[int, int]] = None
        for channel in channels:
            placement = allocators[channel].place(frame)
            if placement is not None:
                placed_on = channel
                break
        if placed_on is None or placement is None:
            raise ScheduleInfeasibleError(
                f"distributed schedule cannot host {frame.message_id} "
                f"on any channel"
            )
        slot_id, base = placement
        bound = dataclasses.replace(frame, frame_id=slot_id, base_cycle=base)
        table.assign(placed_on, SlotAssignment(slot_id=slot_id, frame=bound))
        bound_primary.append((placed_on, bound))

    if strategy == ChannelStrategy.DUPLICATE_BEST_EFFORT and len(channels) == 2:
        for primary_channel, bound in bound_primary:
            other = Channel.B if primary_channel is Channel.A else Channel.A
            duplicate_placement = allocators[other].place(bound)
            if duplicate_placement is None:
                continue
            duplicate_slot, duplicate_base = duplicate_placement
            duplicate = dataclasses.replace(bound, frame_id=duplicate_slot,
                                            base_cycle=duplicate_base)
            table.assign(other, SlotAssignment(slot_id=duplicate_slot,
                                               frame=duplicate))
    return table
