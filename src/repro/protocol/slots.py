"""Slot and minislot counters.

Section III-D of the paper: each channel maintains its own slot counter
(``SlotCounter(A)``, ``SlotCounter(B)``), initialized to 1 at the start of
every communication cycle and incremented at each slot boundary.  The
dynamic segment additionally counts minislots (``vSlotCounter`` advances
once per *dynamic slot*, whose length is one minislot when idle or the
frame's length when transmitting).

These counters are deliberately small, dumb state machines -- the protocol
correctness lives in how the segment engines drive them, and keeping them
separate makes that logic directly testable.
"""

from __future__ import annotations


__all__ = ["SlotCounter", "MinislotCounter"]


class SlotCounter:
    """Per-channel slot ID counter (vSlotCounter).

    The counter starts at 1 each communication cycle; static slots consume
    IDs ``1..gNumberOfStaticSlots`` and dynamic slots continue from there.
    """

    def __init__(self) -> None:
        self._value = 1

    @property
    def value(self) -> int:
        """Current slot ID (1-based)."""
        return self._value

    def reset(self) -> None:
        """Reset to 1 (start of a communication cycle)."""
        self._value = 1

    def advance(self) -> int:
        """Move to the next slot ID and return the new value."""
        self._value += 1
        return self._value

    def jump_to(self, slot_id: int) -> None:
        """Set the counter (used when entering the dynamic segment)."""
        if slot_id < 1:
            raise ValueError(f"slot_id must be >= 1, got {slot_id}")
        self._value = slot_id


class MinislotCounter:
    """Dynamic-segment minislot counter.

    Tracks how many minislots of the dynamic segment have elapsed.  The
    FTDMA rule gating transmission starts (pLatestTx) is evaluated against
    this counter.
    """

    def __init__(self, total_minislots: int) -> None:
        if total_minislots < 0:
            raise ValueError(
                f"total_minislots must be >= 0, got {total_minislots}"
            )
        self._total = total_minislots
        self._elapsed = 0

    @property
    def elapsed(self) -> int:
        """Minislots consumed so far this cycle."""
        return self._elapsed

    @property
    def remaining(self) -> int:
        """Minislots left in the dynamic segment."""
        return self._total - self._elapsed

    @property
    def exhausted(self) -> bool:
        """Whether the dynamic segment has ended."""
        return self._elapsed >= self._total

    def reset(self) -> None:
        """Reset at the start of each communication cycle."""
        self._elapsed = 0

    def consume(self, minislots: int) -> int:
        """Consume ``minislots`` (clamped to what remains).

        Returns:
            The number actually consumed.
        """
        if minislots < 0:
            raise ValueError(f"minislots must be >= 0, got {minislots}")
        consumed = min(minislots, self.remaining)
        self._elapsed += consumed
        return consumed

    def can_start_transmission(self, latest_tx: int) -> bool:
        """pLatestTx gate: a send may only *start* at or before it.

        FlexRay compares the current minislot counter with pLatestTx; a
        node whose slot arrives later must hold the message for the next
        cycle even if the frame would physically fit.
        """
        return not self.exhausted and self._elapsed < latest_tx
