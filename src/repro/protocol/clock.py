"""Macrotick clock with a drift-and-correction model.

Every FlexRay node derives its macrotick from a local oscillator; the
protocol's clock-synchronization service measures sync-frame arrival
offsets and applies rate/offset correction each double-cycle so that all
nodes agree on slot boundaries within a precision bound.

The cluster simulation itself runs on the *global* (perfect) timebase --
the protocol guarantees all nodes stay within the precision window, so
slot boundary disagreement never reorders transmissions.  This module
models the node-local view: given drift parts-per-million and the
correction cadence, it reports the worst-case deviation, which the
parameter validation uses to check that the configured action-point
offsets actually cover the precision window (the real reason those
offsets exist).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MacrotickClock"]


@dataclass
class MacrotickClock:
    """Node-local clock model.

    Attributes:
        drift_ppm: Oscillator deviation from nominal, parts per million.
            Automotive-grade crystals are within +/-200 ppm; the FlexRay
            spec bounds tolerated drift at 1500 ppm.
        correction_interval_mt: Macroticks between rate corrections (one
            double-cycle in a real cluster).
    """

    drift_ppm: float = 100.0
    correction_interval_mt: int = 10000

    def __post_init__(self) -> None:
        if abs(self.drift_ppm) > 1500.0:
            raise ValueError(
                f"drift of {self.drift_ppm} ppm exceeds the FlexRay "
                f"tolerated bound of 1500 ppm"
            )
        if self.correction_interval_mt <= 0:
            raise ValueError("correction_interval_mt must be positive")

    def worst_case_deviation_mt(self) -> float:
        """Largest offset (in macroticks) accumulated between corrections."""
        return abs(self.drift_ppm) * 1e-6 * self.correction_interval_mt

    def local_time(self, global_time_mt: int) -> int:
        """This node's clock reading at a global instant, in macroticks.

        Deviation grows linearly within each correction interval and is
        zeroed at every correction point (ideal offset correction).

        A node-local clock *counts macroticks* -- an integer -- so the
        continuous drifted reading is quantized.  Rounding rule:
        round-half-up (``floor(x + 0.5)``), chosen over banker's
        rounding so the quantized clock is a monotone step function of
        the exact reading and two readings exactly half a tick apart
        never collapse.  The simulation kernel rejects float times
        outright (``SimulationEngine.schedule`` raises ``TypeError``),
        so every time that reaches the event queue has passed through
        this rule -- the int/float seam lives here and only here.
        Use :meth:`local_time_exact` for the unquantized model.
        """
        return math.floor(self.local_time_exact(global_time_mt) + 0.5)

    def local_time_exact(self, global_time_mt: int) -> float:
        """Unquantized drifted clock reading (analysis/plotting only)."""
        if global_time_mt < 0:
            raise ValueError(f"time must be >= 0, got {global_time_mt}")
        into_interval = global_time_mt % self.correction_interval_mt
        deviation = self.drift_ppm * 1e-6 * into_interval
        return global_time_mt + deviation

    def required_action_point_offset_mt(self) -> int:
        """Smallest action-point offset covering the precision window.

        A transmission must not start before all receivers believe the
        slot has begun, so the action-point offset must exceed the
        worst-case pairwise clock deviation (twice the single-clock
        deviation, as two nodes may drift in opposite directions).
        """
        pairwise = 2.0 * self.worst_case_deviation_mt()
        return max(1, int(pairwise + 0.999999))

    def validate_against(self, action_point_offset_mt: int) -> bool:
        """Whether a configured action-point offset covers this clock."""
        return action_point_offset_mt >= self.required_action_point_offset_mt()
