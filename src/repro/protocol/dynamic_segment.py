"""FTDMA dynamic-segment engine.

Implements FlexRay's minislot-counting arbitration (Section II-A of the
paper, derived from ByteFlight):

- the slot counter continues past the static slots
  (``gNumberOfStaticSlots + 1``, ``+2``, ...);
- at each dynamic slot, if the owning node has a message queued *and* the
  minislot counter has not passed pLatestTx, the node transmits; the
  dynamic slot then spans the frame's length in minislots (plus the
  dynamic-slot idle phase);
- otherwise the dynamic slot collapses to exactly one minislot;
- the segment ends when all minislots are consumed.

Lower frame IDs therefore get both earlier access and better odds of
fitting before the segment ends -- the priority-based scheme whose
low-priority starvation the paper's cooperative scheduling addresses.

Each channel arbitrates independently (dual-channel FTDMA).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.protocol.channel import Channel, ChannelSet
from repro.protocol.cycle import CycleLayout
from repro.protocol.frame import PendingFrame, frame_duration_mt
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.policy import SchedulerPolicy
from repro.protocol.slots import MinislotCounter
from repro.sim.trace import FrameRecord, TraceRecorder, TransmissionOutcome

__all__ = ["DynamicSegmentEngine", "DynamicSlotResult"]


@dataclass(frozen=True)
class DynamicSlotResult:
    """What happened in one dynamic slot (exposed for tests/inspection)."""

    channel: Channel
    slot_id: int
    transmitted: bool
    minislots_consumed: int
    message_id: Optional[str] = None


class DynamicSegmentEngine:
    """Executes dynamic segments cycle by cycle.

    Args:
        params: Cluster parameters.
        layout: Cycle time geometry.
        channels: Configured channel set.
        policy: The scheduling policy under test.
        corrupts: Fault oracle ``(channel, total_bits, start_mt) -> bool``.
        trace: Trace recorder all attempts are written to.
    """

    def __init__(
        self,
        params: SegmentGeometry,
        layout: CycleLayout,
        channels: ChannelSet,
        policy: SchedulerPolicy,
        corrupts: Callable[[Channel, int, int], bool],
        trace: TraceRecorder,
    ) -> None:
        self._params = params
        self._layout = layout
        self._channels = channels
        self._policy = policy
        self._corrupts = corrupts
        self._trace = trace
        self.last_cycle_results: List[DynamicSlotResult] = []

    def execute_cycle(
        self,
        cycle: int,
        deliver_arrivals_until: Callable[[int], None],
    ) -> None:
        """Run the dynamic segment of ``cycle`` on every channel."""
        self.last_cycle_results = []
        if self._params.g_number_of_minislots == 0:
            return
        segment_start, __ = self._layout.dynamic_segment_window(cycle)
        deliver_arrivals_until(segment_start)
        for channel, slot_counter in self._channels.pairs():
            slot_counter.jump_to(self._params.first_dynamic_slot_id)
            self._arbitrate_channel(channel, cycle)

    def _arbitrate_channel(self, channel: Channel, cycle: int) -> None:
        """Minislot-counting loop for one channel."""
        params = self._params
        minislots = MinislotCounter(params.g_number_of_minislots)
        latest_tx = params.effective_latest_tx
        slot_id = params.first_dynamic_slot_id

        while not minislots.exhausted and slot_id <= params.last_dynamic_slot_id:
            start_mt = self._layout.minislot_start(cycle, minislots.elapsed)
            pending: Optional[PendingFrame] = None
            if minislots.can_start_transmission(latest_tx):
                pending = self._policy.dynamic_frame_for(
                    channel, slot_id, start_mt, minislots.remaining
                )
            if pending is None:
                minislots.consume(1)
                self.last_cycle_results.append(DynamicSlotResult(
                    channel=channel, slot_id=slot_id, transmitted=False,
                    minislots_consumed=1,
                ))
                slot_id += 1
                continue

            needed = params.minislots_for_bits(pending.payload_bits)
            if needed > minislots.remaining:
                # The frame no longer fits this cycle: FlexRay holds it for
                # the next cycle; the dynamic slot still consumes one
                # minislot.  The policy is told nothing -- the frame stays
                # at the head of its queue (the engine never popped it;
                # see SchedulerPolicy.dynamic_frame_for contract).
                self._policy.on_dynamic_hold(pending, channel)
                minislots.consume(1)
                self.last_cycle_results.append(DynamicSlotResult(
                    channel=channel, slot_id=slot_id, transmitted=False,
                    minislots_consumed=1,
                ))
                slot_id += 1
                continue

            self._transmit(channel, cycle, slot_id, start_mt, pending)
            minislots.consume(needed)
            self.last_cycle_results.append(DynamicSlotResult(
                channel=channel, slot_id=slot_id, transmitted=True,
                minislots_consumed=needed, message_id=pending.message_id,
            ))
            slot_id += 1

    def _transmit(self, channel: Channel, cycle: int, slot_id: int,
                  start_mt: int, pending: PendingFrame) -> None:
        """Record one dynamic transmission and report its outcome."""
        action_start = start_mt + self._params.gd_minislot_action_point_offset_mt
        duration = frame_duration_mt(pending.payload_bits, self._params)
        end = action_start + duration
        corrupted = self._corrupts(channel, pending.total_bits, action_start)
        outcome = (TransmissionOutcome.CORRUPTED if corrupted
                   else TransmissionOutcome.DELIVERED)
        self._trace.record(FrameRecord(
            message_id=pending.message_id,
            instance=pending.instance,
            channel=channel.value,
            slot_id=slot_id,
            cycle=cycle,
            start=action_start,
            end=end,
            bits=pending.total_bits,
            payload_bits=pending.payload_bits,
            segment="dynamic",
            outcome=outcome,
            is_retransmission=pending.is_retransmission,
            generation_time=pending.generation_time_mt,
            deadline=pending.deadline_mt,
            chunk=pending.frame.chunk,
        ))
        self._policy.on_outcome(pending, channel, "dynamic", outcome, end)
