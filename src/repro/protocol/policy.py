"""Scheduler policy interface.

The cluster mechanics (slot timing, minislot counting, fault injection,
trace recording) are policy-free; everything the paper compares --
CoEfficient versus the standard FSPEC behaviour -- is expressed as a
:class:`SchedulerPolicy`.  The engines ask the policy exactly three
questions:

1. At each static slot's action point: *which pending frame (if any)
   transmits on this channel, in this cycle, in this slot?*
2. At each dynamic slot: *which pending frame (if any) is at the head of
   this frame ID's queue on this channel?*
3. After every attempt: *here is the outcome* (so the policy can plan
   retransmissions).

This narrow interface is what lets CoEfficient steal static slack: the
engine does not care whether the frame it is handed was the slot's
schedule-table owner or a slack-stolen retransmission -- the policy is
accountable for hard-deadline safety, and the analysis modules give it
the tools to be.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from repro.protocol.channel import Channel
from repro.protocol.frame import PendingFrame
from repro.obs import NULL_OBS, ObsLike
from repro.sim.trace import TransmissionOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocol.cluster import Cluster
    from repro.timeline.compiler import CompiledRound

__all__ = ["SchedulerPolicy"]


class SchedulerPolicy(abc.ABC):
    """Strategy object deciding what transmits when.

    Lifecycle: ``bind`` once (offline planning: schedule tables,
    retransmission budgets), then per cycle ``on_cycle_start`` followed by
    the engines' per-slot queries, with ``on_arrival`` interleaved as the
    hosts produce messages.
    """

    #: Human-readable policy name used in experiment tables.
    name: str = "abstract"

    #: Observability context; the shared no-op by default.  Hot-path
    #: instrumentation in policies must guard on ``self.obs.enabled``.
    obs = NULL_OBS

    def attach_observability(self, obs: "ObsLike") -> None:
        """Attach an observability context (before ``bind``).

        Attaching is observation-only by contract: counters, hook events
        and timings are recorded, but scheduling decisions are
        unchanged -- the determinism tests compare instrumented and
        bare runs event-for-event.
        """
        self.obs = obs

    @abc.abstractmethod
    def bind(self, cluster: "Cluster") -> None:
        """Offline planning against a concrete cluster.

        Called exactly once before the first cycle.  Implementations
        build schedule tables, compute retransmission budgets, and size
        their queues here.
        """

    @abc.abstractmethod
    def on_arrival(self, pending: PendingFrame) -> None:
        """A host produced a message instance (one call per chunk)."""

    @abc.abstractmethod
    def on_cycle_start(self, cycle: int, start_mt: int) -> None:
        """A communication cycle begins."""

    @abc.abstractmethod
    def static_frame_for(self, channel: Channel, cycle: int, slot_id: int,
                         action_point_mt: int) -> Optional[PendingFrame]:
        """The frame to transmit in a static slot, or ``None`` (idle).

        The returned frame's wire duration must fit the static slot; the
        engine enforces this and treats an oversized frame as a policy
        bug (raises), not as a protocol drop.
        """

    @abc.abstractmethod
    def dynamic_frame_for(self, channel: Channel, slot_id: int,
                          start_mt: int,
                          minislots_remaining: int) -> Optional[PendingFrame]:
        """The frame at the head of ``slot_id``'s dynamic queue, or ``None``.

        The engine has already verified the pLatestTx gate *for starting*;
        the policy should return a frame only if it wants this slot ID to
        transmit now.  Returning a frame that needs more minislots than
        ``minislots_remaining`` is allowed -- the engine will hold it
        (FlexRay keeps the message for the next cycle) and charge one
        idle minislot.

        Contract: this method must *peek*, not pop.  The frame leaves its
        queue only in ``on_outcome`` (the engine transmitted it) --
        ``on_dynamic_hold`` means it stayed queued.
        """

    def on_dynamic_hold(self, pending: PendingFrame, channel: Channel) -> None:
        """The offered dynamic frame did not fit this cycle's remainder.

        FlexRay holds the message for the next communication cycle.  The
        default does nothing because ``dynamic_frame_for`` peeks -- the
        frame is still at the head of its queue.
        """

    @abc.abstractmethod
    def on_outcome(self, pending: PendingFrame, channel: Channel,
                   segment: str, outcome: TransmissionOutcome,
                   end_mt: int) -> None:
        """Feedback after an attempt (the sender monitors the bus)."""

    def compiled_round(self) -> Optional["CompiledRound"]:
        """The policy's compiled communication round, if it has one.

        The cluster's :class:`~repro.timeline.stepper.TimelineStepper`
        fast path is only engaged when this returns a round; the default
        (``None``) keeps custom policies on the event interpreter.
        Must only be called after ``bind``.
        """
        return None

    def static_idle_is_noop(self) -> bool:
        """Whether an idle-slot ``static_frame_for`` is provably a no-op.

        ``True`` promises that, in the policy's *current* state, querying
        any static (channel, slot) pair the compiled round marks idle
        would return ``None`` without side effects -- the licence the
        stepper needs to skip the query.  The promise is checkpointed:
        the stepper re-asks after every arrival delivery and every
        transmission outcome, so the answer may freely flip to ``False``
        the moment retransmission or slack-stealing work appears.

        The default (``False``) is always safe: it pins the policy to
        the exact event interpreter.
        """
        return False

    def dynamic_idle_is_noop(self) -> bool:
        """Whether this cycle's dynamic arbitration is provably idle.

        ``True`` promises that every ``dynamic_frame_for`` query of the
        upcoming dynamic segment would return ``None`` without side
        effects (empty dynamic backlog, no dynamic retransmissions), so
        the stepper may skip the minislot-counting loop entirely.  Asked
        after the segment-start arrival delivery.  The default
        (``False``) always runs the interpreter loop.
        """
        return False

    def decisions_are_outcome_free(self) -> bool:
        """Whether transmission decisions ignore same-segment outcomes.

        ``True`` promises that, in the policy's current configuration,
        no ``static_frame_for`` / ``dynamic_frame_for`` /
        ``on_dynamic_hold`` decision made inside one segment reads any
        state that ``on_outcome`` mutates -- so the vectorized engine
        may ask every question of a segment first (phase A) and feed all
        outcomes back afterwards (phase B) without changing a single
        answer.  This is a *configuration-level* promise, not a
        per-cycle one: it must hold for the whole run (open-loop
        policies qualify; feedback ARQ does not, because a corrupted
        frame re-enters the queues mid-segment).

        The default (``False``) is always safe: it keeps the policy on
        the stepper/interpreter paths, where outcomes are applied
        between queries exactly as the oracle does.
        """
        return False

    def note_time(self, now_mt: int) -> None:
        """Clock sync from the compiled-timeline fast path.

        The interpreter advances policy-visible time as a side effect of
        its per-slot queries.  When the stepper proves a run of queries
        skippable, it still reports the time the *last skipped query*
        would have carried, so time-dependent accounting (e.g. the
        retransmission-liveness filter in ``pending_work``) cannot
        observe the difference between modes.  Default: no-op.
        """

    def pending_work(self) -> int:
        """Frames still queued or awaiting retransmission.

        ``run_until_complete`` uses this to distinguish "everything that
        can be delivered has been" from "the policy still has work".  The
        default (0) is safe for stateless policies.
        """
        return 0

    def on_horizon_end(self, now_mt: int) -> None:
        """Called once when the simulation horizon is reached.

        Default: nothing.  Policies may flush statistics here.
        """
