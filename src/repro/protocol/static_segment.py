"""TDMA static-segment engine.

Executes the static segment of one communication cycle: for every channel
and every static slot, the engine asks the policy for the slot's frame,
transmits it at the slot's action point, rolls the fault dice, records the
attempt, and feeds the outcome back to the policy.

The engine enforces the physical rules the policy cannot be trusted with:

- a frame must fit inside the static slot (action-point offsets included);
- a frame may not be transmitted before it was generated;
- slot counters advance exactly once per slot per channel.
"""

from __future__ import annotations

from typing import Callable

from repro.protocol.channel import Channel, ChannelSet
from repro.protocol.cycle import CycleLayout
from repro.protocol.frame import frame_duration_mt
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.policy import SchedulerPolicy
from repro.sim.trace import FrameRecord, TraceRecorder, TransmissionOutcome

__all__ = ["StaticSegmentEngine"]


class StaticSegmentEngine:
    """Executes static segments cycle by cycle.

    Args:
        params: Cluster parameters.
        layout: Cycle time geometry.
        channels: Configured channel set.
        policy: The scheduling policy under test.
        corrupts: Fault oracle ``(channel, total_bits, start_mt) -> bool``.
        trace: Trace recorder all attempts are written to.
    """

    def __init__(
        self,
        params: SegmentGeometry,
        layout: CycleLayout,
        channels: ChannelSet,
        policy: SchedulerPolicy,
        corrupts: Callable[[Channel, int, int], bool],
        trace: TraceRecorder,
    ) -> None:
        self._params = params
        self._layout = layout
        self._channels = channels
        self._policy = policy
        self._corrupts = corrupts
        self._trace = trace

    def execute_cycle(
        self,
        cycle: int,
        deliver_arrivals_until: Callable[[int], None],
        first_slot: int = 1,
    ) -> None:
        """Run static slots ``first_slot..N`` of ``cycle`` on every channel.

        Slots are processed in time order; before each slot's action
        point, host arrivals up to that instant are delivered so that a
        message produced mid-cycle can ride a later slot of the same
        cycle (the behaviour the paper's sub-cycle-period messages need).

        Args:
            cycle: Communication-cycle counter (0-based).
            deliver_arrivals_until: Callback flushing host arrivals with
                generation time <= its argument into the policy.
            first_slot: Slot to start from; > 1 when the compiled-round
                stepper hands the remainder of a segment back to the
                interpreter (the skipped prefix is then already
                accounted for).
        """
        if first_slot <= 1:
            self._channels.reset_counters()
        else:
            for __, counter in self._channels.pairs():
                counter.jump_to(first_slot)
        for slot_id in range(first_slot,
                             self._params.g_number_of_static_slots + 1):
            action_point = self._layout.static_action_point(cycle, slot_id)
            deliver_arrivals_until(action_point)
            for channel, counter in self._channels.pairs():
                if counter.value != slot_id:
                    raise RuntimeError(
                        f"slot counter desync on channel {channel}: "
                        f"expected {slot_id}, got {counter.value}"
                    )
                self.execute_slot(channel, cycle, slot_id, action_point)
            for __, counter in self._channels.pairs():
                counter.advance()

    def execute_slot(self, channel: Channel, cycle: int, slot_id: int,
                     action_point: int) -> None:
        """Transmit (or idle) one (channel, slot) pair."""
        pending = self._policy.static_frame_for(
            channel, cycle, slot_id, action_point
        )
        if pending is None:
            return

        duration = frame_duration_mt(pending.payload_bits, self._params)
        slot_start, slot_end = self._layout.static_slot_window(cycle, slot_id)
        if action_point + duration > slot_end:
            raise ValueError(
                f"policy bug: frame {pending.message_id} "
                f"({pending.total_bits} bits, {duration} MT) does not fit "
                f"static slot {slot_id} "
                f"({self._params.gd_static_slot_mt} MT)"
            )
        if pending.generation_time_mt > action_point:
            raise ValueError(
                f"policy bug: frame {pending.message_id}#{pending.instance} "
                f"transmitted at t={action_point} before its generation "
                f"at t={pending.generation_time_mt}"
            )

        corrupted = self._corrupts(channel, pending.total_bits, action_point)
        outcome = (TransmissionOutcome.CORRUPTED if corrupted
                   else TransmissionOutcome.DELIVERED)
        end = action_point + duration
        self._trace.record(FrameRecord(
            message_id=pending.message_id,
            instance=pending.instance,
            channel=channel.value,
            slot_id=slot_id,
            cycle=cycle,
            start=action_point,
            end=end,
            bits=pending.total_bits,
            payload_bits=pending.payload_bits,
            segment="static",
            outcome=outcome,
            is_retransmission=pending.is_retransmission,
            generation_time=pending.generation_time_mt,
            deadline=pending.deadline_mt,
            chunk=pending.frame.chunk,
        ))
        self._policy.on_outcome(pending, channel, "static", outcome, end)
