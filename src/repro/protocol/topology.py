"""Cluster topology models.

Section II-B: "a FlexRay cluster consists of multiple nodes ... the
topology includes bus, star or hybrid connection."  Topology has no
influence on slot timing (the TDMA schedule is global), but it determines
which node pairs share a fault domain: a passive bus stub fault hits every
node, while a star-coupler branch fault is isolated to one branch.

The fault injector uses :meth:`Topology.fault_domain_of` to scope
injected faults, and cluster construction validates node counts and
connectivity through these classes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Set

__all__ = ["Topology", "BusTopology", "StarTopology", "HybridTopology"]


class Topology(abc.ABC):
    """Abstract cluster interconnect."""

    @abc.abstractmethod
    def node_count(self) -> int:
        """Number of nodes attached."""

    @abc.abstractmethod
    def fault_domain_of(self, node: int) -> FrozenSet[int]:
        """Nodes sharing a physical fault domain with ``node`` (inclusive)."""

    @abc.abstractmethod
    def validate(self) -> None:
        """Raise ``ValueError`` on an ill-formed configuration."""

    def nodes(self) -> List[int]:
        """All node indices."""
        return list(range(self.node_count()))

    def reachable(self, source: int, target: int) -> bool:
        """Whether two nodes can communicate.

        All FlexRay topologies are single broadcast domains, so any two
        attached nodes can communicate; subclasses only override this if
        they model partitioned/degraded operation.
        """
        count = self.node_count()
        return 0 <= source < count and 0 <= target < count


@dataclass
class BusTopology(Topology):
    """A passive linear bus: one shared fault domain.

    Attributes:
        nodes_attached: Number of nodes on the bus (2..64 per channel,
            per the FlexRay electrical limits).
    """

    nodes_attached: int

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not 2 <= self.nodes_attached <= 64:
            raise ValueError(
                f"a FlexRay bus supports 2..64 nodes, got {self.nodes_attached}"
            )

    def node_count(self) -> int:
        return self.nodes_attached

    def fault_domain_of(self, node: int) -> FrozenSet[int]:
        if not 0 <= node < self.nodes_attached:
            raise ValueError(f"node {node} not attached")
        return frozenset(range(self.nodes_attached))


@dataclass
class StarTopology(Topology):
    """An active star: each branch is its own fault domain.

    Attributes:
        branches: For each star-coupler branch, the node indices attached
            to it.  Node indices must partition ``0..n-1``.
    """

    branches: Sequence[Sequence[int]]

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        seen: Set[int] = set()
        if not self.branches:
            raise ValueError("a star needs at least one branch")
        for branch in self.branches:
            if not branch:
                raise ValueError("empty star branch")
            overlap = seen.intersection(branch)
            if overlap:
                raise ValueError(f"nodes {sorted(overlap)} appear in two branches")
            seen.update(branch)
        expected = set(range(len(seen)))
        if seen != expected:
            raise ValueError(
                f"branch node indices must partition 0..{len(seen) - 1}, "
                f"got {sorted(seen)}"
            )

    def node_count(self) -> int:
        return sum(len(branch) for branch in self.branches)

    def fault_domain_of(self, node: int) -> FrozenSet[int]:
        for branch in self.branches:
            if node in branch:
                return frozenset(branch)
        raise ValueError(f"node {node} not attached")


@dataclass
class HybridTopology(Topology):
    """A star whose branches may be multi-node bus stubs.

    This is the common production automotive layout: a central active
    star with short passive stubs hanging off each branch.  Structurally
    identical to :class:`StarTopology` (branches are fault domains), but
    kept as its own class so configuration code reads naturally and so
    per-branch electrical limits can be validated.
    """

    branches: Sequence[Sequence[int]]
    max_stub_nodes: int = 22

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        star = StarTopology.__new__(StarTopology)
        star.branches = self.branches
        star.validate()
        for branch in self.branches:
            if len(branch) > self.max_stub_nodes:
                raise ValueError(
                    f"bus stub of {len(branch)} nodes exceeds the electrical "
                    f"limit of {self.max_stub_nodes}"
                )

    def node_count(self) -> int:
        return sum(len(branch) for branch in self.branches)

    def fault_domain_of(self, node: int) -> FrozenSet[int]:
        for branch in self.branches:
            if node in branch:
                return frozenset(branch)
        raise ValueError(f"node {node} not attached")
