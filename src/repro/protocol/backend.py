"""Backend registry: named protocol implementations behind one interface.

A *backend* packages a concrete protocol (FlexRay, time-triggered
Ethernet, ...) behind the neutral :class:`ProtocolBackend` interface:
its geometry subclass, its presets, and its scenario/case-study
parameter derivations.  The CLI's ``--backend`` flag, the workload
generator and the campaign planner all resolve backends through
:func:`get_backend`, so no core module ever imports a backend package
by name.

Registration is by *module path string*, resolved lazily with
:mod:`importlib` -- deliberately not an ``import`` statement, so the
core's import hygiene (no static imports of backend packages outside
the backends themselves, enforced by ``tests/protocol/test_import_lint``)
holds by construction.
"""

from __future__ import annotations

import abc
import importlib
from typing import TYPE_CHECKING, ClassVar, Dict, Tuple

from repro.protocol.geometry import SegmentGeometry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocol.signal import SignalSet

__all__ = [
    "ProtocolBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]


class ProtocolBackend(abc.ABC):
    """One protocol implementation: geometry factory + parameter policy.

    Subclasses live inside their backend package (``repro.flexray``,
    ``repro.ttethernet``) and are the only sanctioned way for core code
    to obtain backend-specific parameter sets.
    """

    #: Registry key and geometry ``protocol`` tag; must match the
    #: backend geometry class's ``protocol`` ClassVar.
    name: ClassVar[str] = "generic"

    # -- geometry factories -------------------------------------------

    @abc.abstractmethod
    def geometry_template(self) -> SegmentGeometry:
        """A minimal valid geometry of this backend's subclass.

        Parameter-derivation code (:func:`repro.packing.frame_packing.
        derive_params_for`) uses it with :func:`dataclasses.replace` so
        derived parameter sets keep the backend's type, bit rate and
        frame-overhead model.
        """

    @abc.abstractmethod
    def dynamic_preset(self, minislots: int = 100) -> SegmentGeometry:
        """The dynamic-study configuration (paper Figs. 3-5 analogue)."""

    @abc.abstractmethod
    def static_preset(self, static_slots: int = 80) -> SegmentGeometry:
        """The static-study configuration (paper Figs. 1-2 analogue)."""

    @abc.abstractmethod
    def scenario_geometry(
        self,
        *,
        static_slots: int,
        minislots: int,
        p_latest_tx_minislot: int = 0,
        channel_count: int = 2,
    ) -> SegmentGeometry:
        """Geometry for one seeded fuzz scenario.

        The workload generator draws the *counts* from its RNG (in a
        fixed order, backend-independent, so one seed names the same
        abstract scenario everywhere) and the backend supplies the
        per-protocol window/quantum lengths.
        """

    # -- derived parameter policy -------------------------------------

    def case_study_params(self, workload: str,
                          minislots: int = 50) -> SegmentGeometry:
        """Derived cluster parameters for a case-study workload.

        Args:
            workload: ``"bbw"`` or ``"acc"``.
            minislots: Dynamic-segment length.
        """
        from repro.packing.frame_packing import derive_params_for
        from repro.workloads.acc import acc_signals
        from repro.workloads.bbw import bbw_signals

        if workload == "bbw":
            # BBW nearly fills a 4 ms cycle; the smaller headroom still
            # leaves idle slots without overflowing the cycle.
            return derive_params_for(
                bbw_signals(), cycle_ms=4.0, minislots=minislots,
                slot_headroom=1.1, template=self.geometry_template(),
            )
        if workload == "acc":
            # The larger headroom provisions the slack a SIL-grade
            # reliability goal's redundancy copies ride in.
            return derive_params_for(
                acc_signals(), cycle_ms=4.0, minislots=minislots,
                slot_headroom=1.6, template=self.geometry_template(),
            )
        raise ValueError(f"unknown case study {workload!r}")

    def derive_params(self, signals: "SignalSet",
                      **kwargs: object) -> SegmentGeometry:
        """Derive a feasible parameter set of this backend for a workload."""
        from repro.packing.frame_packing import derive_params_for

        kwargs.setdefault("template", self.geometry_template())
        return derive_params_for(signals, **kwargs)


#: name -> "module.path:ClassName"; resolved lazily so core modules can
#: import this registry without importing any backend package.
_BACKEND_PATHS: Dict[str, str] = {
    "flexray": "repro.flexray.backend:FlexRayBackend",
    "ttethernet": "repro.ttethernet.backend:TTEthernetBackend",
}

_INSTANCES: Dict[str, ProtocolBackend] = {}


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKEND_PATHS))


def register_backend(name: str, path: str) -> None:
    """Register (or re-point) a backend under ``name``.

    Args:
        name: Registry key (the geometry's ``protocol`` tag).
        path: ``"module.path:ClassName"`` of the ProtocolBackend subclass.
    """
    if ":" not in path:
        raise ValueError(f"backend path must be 'module:Class', got {path!r}")
    _BACKEND_PATHS[name] = path
    _INSTANCES.pop(name, None)


def get_backend(name: "str | ProtocolBackend") -> ProtocolBackend:
    """Resolve a backend by name (instances are cached).

    An already-resolved :class:`ProtocolBackend` passes through
    unchanged, so call sites can accept either form.

    Raises:
        ValueError: For an unregistered name.
    """
    if isinstance(name, ProtocolBackend):
        return name
    if name not in _BACKEND_PATHS:
        raise ValueError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        )
    if name not in _INSTANCES:
        module_path, _, class_name = _BACKEND_PATHS[name].partition(":")
        module = importlib.import_module(module_path)
        backend = getattr(module, class_name)()
        if not isinstance(backend, ProtocolBackend):
            raise TypeError(f"{_BACKEND_PATHS[name]} is not a ProtocolBackend")
        if backend.name != name:
            raise ValueError(
                f"backend {_BACKEND_PATHS[name]} declares name "
                f"{backend.name!r} but is registered as {name!r}"
            )
        _INSTANCES[name] = backend
    return _INSTANCES[name]
