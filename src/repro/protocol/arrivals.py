"""Message sources: the host side of the cluster.

A source turns a message description into a stream of *releases*; each
release is one message instance, possibly split into several chunk
frames by the packer.  Two source types cover the paper's task taxonomy:

- :class:`PeriodicSource` -- time-triggered signals (static segment);
  releases at ``offset + k * period`` exactly.
- :class:`SporadicSource` -- event-triggered signals (dynamic segment);
  releases separated by the minimum inter-arrival time plus seeded
  jitter, modelling the paper's interrupt-routine generators.

Sources may be *limited* to a fixed number of instances, which is how the
running-time experiments (Figures 1-2) define their workload: release N
instances, then measure the simulated time until the last is delivered.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.protocol.frame import Frame, PendingFrame
from repro.sim.rng import RngStream

__all__ = ["Release", "MessageSource", "PeriodicSource", "SporadicSource",
           "ArrivalMultiplexer"]


@dataclass(frozen=True, slots=True)
class Release:
    """One message-instance release.

    Attributes:
        message_id: Logical message identifier.
        instance: Job index (0-based).
        generation_time_mt: Absolute release time.
        deadline_mt: Absolute deadline.
        pendings: One :class:`PendingFrame` per chunk.
    """

    message_id: str
    instance: int
    generation_time_mt: int
    deadline_mt: int
    pendings: Sequence[PendingFrame]

    @property
    def chunks(self) -> int:
        """Number of chunk frames in this release."""
        return len(self.pendings)


class MessageSource(abc.ABC):
    """A stream of releases in nondecreasing time order."""

    @abc.abstractmethod
    def next_release_mt(self) -> Optional[int]:
        """Time of the next release, or ``None`` when exhausted."""

    @abc.abstractmethod
    def pop_release(self) -> Release:
        """Produce the next release and advance the source."""

    @property
    @abc.abstractmethod
    def message_id(self) -> str:
        """Logical message this source generates."""

    @property
    @abc.abstractmethod
    def expected_instances(self) -> Optional[int]:
        """Instance limit, or ``None`` for an unbounded source."""


class PeriodicSource(MessageSource):
    """Deterministic periodic releases of a (possibly chunked) message.

    Args:
        chunks: Chunk frame templates produced by the packer; all share
            the message ID.
        period_mt: Release period in macroticks.
        offset_mt: First-release offset.
        deadline_mt: Relative deadline.
        priority: Queue priority for the pending frames.
        limit: Stop after this many instances (``None`` = unbounded).
    """

    def __init__(self, chunks: Sequence[Frame], period_mt: int, offset_mt: int,
                 deadline_mt: int, priority: int,
                 limit: Optional[int] = None) -> None:
        if not chunks:
            raise ValueError("a periodic source needs at least one chunk frame")
        ids = {frame.message_id for frame in chunks}
        if len(ids) != 1:
            raise ValueError(f"chunk frames must share a message id, got {ids}")
        if period_mt <= 0:
            raise ValueError(f"period must be positive, got {period_mt}")
        if offset_mt < 0:
            raise ValueError(f"offset must be >= 0, got {offset_mt}")
        if deadline_mt <= 0:
            raise ValueError(f"deadline must be positive, got {deadline_mt}")
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        self._chunks = list(chunks)
        self._period = period_mt
        self._offset = offset_mt
        self._deadline = deadline_mt
        self._priority = priority
        self._limit = limit
        self._next_instance = 0

    @property
    def message_id(self) -> str:
        return self._chunks[0].message_id

    @property
    def expected_instances(self) -> Optional[int]:
        return self._limit

    def next_release_mt(self) -> Optional[int]:
        if self._limit is not None and self._next_instance >= self._limit:
            return None
        return self._offset + self._next_instance * self._period

    def pop_release(self) -> Release:
        release_time = self.next_release_mt()
        if release_time is None:
            raise RuntimeError(f"source {self.message_id} is exhausted")
        instance = self._next_instance
        self._next_instance += 1
        deadline = release_time + self._deadline
        pendings = [
            PendingFrame(
                frame=chunk,
                instance=instance,
                generation_time_mt=release_time,
                deadline_mt=deadline,
                priority=self._priority,
                kind=chunk.kind,
            )
            for chunk in self._chunks
        ]
        return Release(
            message_id=self.message_id,
            instance=instance,
            generation_time_mt=release_time,
            deadline_mt=deadline,
            pendings=pendings,
        )


class SporadicSource(MessageSource):
    """Jittered sporadic releases of an event-triggered message.

    Inter-arrival times are ``min_interarrival * (1 + U[0, jitter])``
    drawn from a seeded stream, so the arrival pattern is reproducible.

    Args:
        chunks: Chunk frame templates (usually one for dynamic messages).
        min_interarrival_mt: Sporadic minimum inter-arrival time.
        offset_mt: First-release offset.
        deadline_mt: Relative (soft) deadline.
        priority: Queue priority.
        rng: Seeded stream for the jitter draws.
        jitter: Upper bound of the relative jitter (0 = strictly periodic).
        limit: Stop after this many instances (``None`` = unbounded).
    """

    def __init__(self, chunks: Sequence[Frame], min_interarrival_mt: int,
                 offset_mt: int, deadline_mt: int, priority: int,
                 rng: RngStream, jitter: float = 0.2,
                 limit: Optional[int] = None) -> None:
        if not chunks:
            raise ValueError("a sporadic source needs at least one chunk frame")
        if min_interarrival_mt <= 0:
            raise ValueError("min_interarrival must be positive")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        self._chunks = list(chunks)
        self._interarrival = min_interarrival_mt
        self._deadline = deadline_mt
        self._priority = priority
        self._rng = rng
        self._jitter = jitter
        self._limit = limit
        self._next_instance = 0
        self._next_time = offset_mt

    @property
    def message_id(self) -> str:
        return self._chunks[0].message_id

    @property
    def expected_instances(self) -> Optional[int]:
        return self._limit

    def next_release_mt(self) -> Optional[int]:
        if self._limit is not None and self._next_instance >= self._limit:
            return None
        return self._next_time

    def pop_release(self) -> Release:
        release_time = self.next_release_mt()
        if release_time is None:
            raise RuntimeError(f"source {self.message_id} is exhausted")
        instance = self._next_instance
        self._next_instance += 1
        gap = self._interarrival
        if self._jitter > 0:
            gap = int(gap * (1.0 + self._rng.uniform(0.0, self._jitter)))
        self._next_time = release_time + max(1, gap)
        deadline = release_time + self._deadline
        pendings = [
            PendingFrame(
                frame=chunk,
                instance=instance,
                generation_time_mt=release_time,
                deadline_mt=deadline,
                priority=self._priority,
                kind=chunk.kind,
            )
            for chunk in self._chunks
        ]
        return Release(
            message_id=self.message_id,
            instance=instance,
            generation_time_mt=release_time,
            deadline_mt=deadline,
            pendings=pendings,
        )


class ArrivalMultiplexer:
    """Merges many sources into one time-ordered release stream.

    A binary heap keyed by ``(next_release, message_id)`` keeps the merge
    deterministic when several sources release at the same instant.
    """

    def __init__(self, sources: Sequence[MessageSource]) -> None:
        self._sources = list(sources)
        self._heap: List[tuple] = []
        for index, source in enumerate(self._sources):
            release_time = source.next_release_mt()
            if release_time is not None:
                heapq.heappush(
                    self._heap, (release_time, source.message_id, index)
                )

    @property
    def exhausted(self) -> bool:
        """Whether every source has run dry."""
        return not self._heap

    def total_expected_instances(self) -> Optional[int]:
        """Sum of instance limits, or ``None`` if any source is unbounded."""
        total = 0
        for source in self._sources:
            expected = source.expected_instances
            if expected is None:
                return None
            total += expected
        return total

    def next_release_mt(self) -> Optional[int]:
        """Time of the earliest pending release across all sources."""
        return self._heap[0][0] if self._heap else None

    def pop_until(self, time_mt: int) -> List[Release]:
        """Pop every release with time <= ``time_mt``, in time order."""
        releases: List[Release] = []
        while self._heap and self._heap[0][0] <= time_mt:
            __, __, index = heapq.heappop(self._heap)
            source = self._sources[index]
            releases.append(source.pop_release())
            next_time = source.next_release_mt()
            if next_time is not None:
                heapq.heappush(
                    self._heap, (next_time, source.message_id, index)
                )
        return releases
