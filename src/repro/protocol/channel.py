"""Dual-channel abstraction.

FlexRay offers up to two physical channels, A and B.  The paper's central
architectural claim is that the channels should be scheduled
*cooperatively* (CoEfficient) rather than as naive mirrors (FSPEC's
best-effort duplication).  The channel abstraction therefore carries a
per-channel slot counter and an independent fault stream, but no policy:
which frame goes on which channel is entirely the scheduler's decision.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Tuple

from repro.protocol.slots import SlotCounter

__all__ = ["Channel", "ChannelSet"]


class Channel(enum.Enum):
    """Physical channel identifier."""

    A = "A"
    B = "B"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ChannelSet:
    """The channels a cluster is configured with, plus their counters.

    Args:
        count: 1 (channel A only) or 2 (A and B).
    """

    def __init__(self, count: int = 2) -> None:
        if count not in (1, 2):
            raise ValueError(f"channel count must be 1 or 2, got {count}")
        self._channels: List[Channel] = [Channel.A]
        if count == 2:
            self._channels.append(Channel.B)
        self._slot_counters: Dict[Channel, SlotCounter] = {
            channel: SlotCounter() for channel in self._channels
        }

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._channels)

    def __contains__(self, channel: Channel) -> bool:
        return channel in self._channels

    @property
    def channels(self) -> List[Channel]:
        """Configured channels, A first."""
        return list(self._channels)

    def slot_counter(self, channel: Channel) -> SlotCounter:
        """The per-channel slot counter (SlotCounter(A) / SlotCounter(B))."""
        if channel not in self._slot_counters:
            raise KeyError(f"channel {channel} not configured")
        return self._slot_counters[channel]

    def reset_counters(self) -> None:
        """Reset all slot counters (start of a communication cycle)."""
        for counter in self._slot_counters.values():
            counter.reset()

    def pairs(self) -> List[Tuple[Channel, SlotCounter]]:
        """(channel, counter) pairs in channel order."""
        return [(channel, self._slot_counters[channel])
                for channel in self._channels]
