"""Protocol-neutral frame model.

A frame is ``protocol overhead | payload``; the overhead (headers,
CRCs, inter-frame gaps) is a per-backend constant carried on the frame
itself (FlexRay: 8 bytes; time-triggered Ethernet: MAC header + FCS +
preamble + IFG).  The model carries the fields the scheduler and fault
analysis need -- frame ID, payload size, cycle filtering -- and the
duration arithmetic that the segment engines use.

Two classes exist at different levels:

- :class:`Frame` -- a *configured* frame: the static description bound to
  a slot ID (what a schedule table holds).
- :class:`PendingFrame` -- one *instance* of a frame waiting to be sent:
  carries its generation time, absolute deadline, and retransmission
  status (what queues hold).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.protocol.geometry import SegmentGeometry

__all__ = ["HARD_MAX_PAYLOAD_BITS", "FrameKind", "Frame", "PendingFrame",
           "frame_duration_mt"]

#: Structural upper bound on any backend's frame payload (a maximal
#: 1518-byte Ethernet frame).  The *protocol* limit is the geometry's
#: ``max_payload_bits``, enforced wherever a parameter set is in hand
#: (:func:`frame_duration_mt`, the packer, the verifier).
HARD_MAX_PAYLOAD_BITS = 1518 * 8

_pending_sequence = itertools.count()


class FrameKind(enum.Enum):
    """Scheduling class of a frame, mirroring the paper's task taxonomy."""

    STATIC = "static"
    """Hard-deadline periodic (static-segment primary transmission)."""

    RETRANSMISSION = "retransmission"
    """Hard-deadline aperiodic (selective retransmission)."""

    DYNAMIC = "dynamic"
    """Soft-deadline aperiodic (dynamic-segment event message)."""


def frame_duration_mt(payload_bits: int, params: SegmentGeometry) -> int:
    """Wire duration of a frame in macroticks (overhead included).

    Args:
        payload_bits: Payload length in bits (0..params.max_payload_bits).
        params: Cluster configuration (bit rate, macrotick length,
            frame overhead).
    """
    if payload_bits < 0:
        raise ValueError(f"payload_bits must be >= 0, got {payload_bits}")
    if payload_bits > params.max_payload_bits:
        raise ValueError(
            f"payload of {payload_bits} bits exceeds the protocol maximum "
            f"of {params.max_payload_bits}"
        )
    return params.transmission_mt(payload_bits + params.frame_overhead_bits)


@dataclass(frozen=True, slots=True)
class Frame:
    """A configured FlexRay frame.

    Attributes:
        frame_id: Slot ID this frame transmits in (1-based; dynamic frame
            IDs start after the static slots).
        message_id: Logical message the frame carries (one message may be
            split over several frames by the packer).
        payload_bits: Payload length in bits.
        producer_ecu: Index of the sending ECU.
        base_cycle: First cycle (within the 64-cycle matrix) the frame is
            sent in; used for cycle multiplexing.
        cycle_repetition: Send every ``cycle_repetition`` cycles (power of
            two in {1, 2, 4, 8, 16, 32, 64} per the spec).
        kind: The frame's :class:`FrameKind`.
        chunk: Index of this frame within its message when the packer
            split a large message over several frames (0-based).
        chunk_count: Total frames the message is split over.
        preferred_phase_mt: Planning hint: the in-cycle macrotick offset
            after which this frame's payload becomes available, so the
            slot allocator can place the slot just after it (minimizes
            release-to-slot queueing delay).  ``None`` means no
            preference.
        overhead_bits: Wire overhead this frame's protocol adds to the
            payload (the packer stamps it from the geometry's
            ``frame_overhead_bits``); part of the fault model's exposed
            bit count.
        base_flexibility: Planning hint: how many cycles past
            ``base_cycle`` the allocator may shift this frame's base
            when slots run short.  Each shifted cycle adds one cycle of
            worst-case latency, so the packer bounds it by the deadline;
            0 pins the base.
    """

    frame_id: int
    message_id: str
    payload_bits: int
    producer_ecu: int
    base_cycle: int = 0
    cycle_repetition: int = 1
    kind: FrameKind = FrameKind.STATIC
    chunk: int = 0
    chunk_count: int = 1
    preferred_phase_mt: Optional[int] = None
    base_flexibility: int = 0
    overhead_bits: int = 64

    def __post_init__(self) -> None:
        if self.frame_id < 1:
            raise ValueError(f"frame_id must be >= 1, got {self.frame_id}")
        if not 0 < self.payload_bits <= HARD_MAX_PAYLOAD_BITS:
            raise ValueError(
                f"payload_bits must be in (0, {HARD_MAX_PAYLOAD_BITS}], "
                f"got {self.payload_bits}"
            )
        if self.overhead_bits < 0:
            raise ValueError(
                f"overhead_bits must be >= 0, got {self.overhead_bits}"
            )
        if self.cycle_repetition not in (1, 2, 4, 8, 16, 32, 64):
            raise ValueError(
                f"cycle_repetition must be a power of two <= 64, "
                f"got {self.cycle_repetition}"
            )
        if not 0 <= self.base_cycle < self.cycle_repetition:
            raise ValueError(
                f"base_cycle must be in [0, {self.cycle_repetition}), "
                f"got {self.base_cycle}"
            )
        if not 0 <= self.chunk < self.chunk_count:
            raise ValueError(
                f"chunk must be in [0, {self.chunk_count}), got {self.chunk}"
            )
        if self.base_flexibility < 0:
            raise ValueError(
                f"base_flexibility must be >= 0, got {self.base_flexibility}"
            )

    @property
    def total_bits(self) -> int:
        """Wire size: payload plus the protocol's per-frame overhead."""
        return self.payload_bits + self.overhead_bits

    def sends_in_cycle(self, cycle: int) -> bool:
        """Whether cycle multiplexing selects this frame in ``cycle``."""
        return cycle % self.cycle_repetition == self.base_cycle

    def duration_mt(self, params: SegmentGeometry) -> int:
        """Wire duration in macroticks."""
        return frame_duration_mt(self.payload_bits, params)


@dataclass(frozen=True, slots=True)
class PendingFrame:
    """One frame instance waiting for (re)transmission.

    Instances are ordered by ``(priority, sequence)``: the sequence number
    is a global monotone counter, so equal-priority instances are FIFO --
    the ordering the paper's dynamic-segment queues use.

    Attributes:
        frame: The configured frame being instantiated.
        instance: Periodic job index, or arrival index for aperiodics.
        generation_time_mt: Absolute production time in macroticks.
        deadline_mt: Absolute deadline in macroticks.
        priority: Smaller is more urgent.
        kind: Scheduling class; distinguishes a retransmission instance
            from the original static instance of the same frame.
        attempt: 0 for the first transmission, k for the k-th retry.
        sequence: Global tie-breaking counter (assigned automatically).
    """

    frame: Frame
    instance: int
    generation_time_mt: int
    deadline_mt: int
    priority: int
    kind: FrameKind = FrameKind.STATIC
    attempt: int = 0
    sequence: int = field(default_factory=lambda: next(_pending_sequence))

    def __post_init__(self) -> None:
        if self.instance < 0:
            raise ValueError(f"instance must be >= 0, got {self.instance}")
        if self.deadline_mt < self.generation_time_mt:
            raise ValueError(
                f"{self.frame.message_id}#{self.instance}: deadline "
                f"{self.deadline_mt} precedes generation "
                f"{self.generation_time_mt}"
            )
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")

    @property
    def message_id(self) -> str:
        """Logical message identifier (delegates to the frame)."""
        return self.frame.message_id

    @property
    def payload_bits(self) -> int:
        """Payload bits (delegates to the frame)."""
        return self.frame.payload_bits

    @property
    def total_bits(self) -> int:
        """Wire bits including overhead (delegates to the frame)."""
        return self.frame.total_bits

    @property
    def is_retransmission(self) -> bool:
        """Whether this instance is a retry."""
        return self.attempt > 0 or self.kind is FrameKind.RETRANSMISSION

    def queue_key(self) -> tuple:
        """Ordering key for priority queues: urgency then FIFO."""
        return (self.priority, self.generation_time_mt, self.sequence)

    def retry(self, now_mt: int) -> "PendingFrame":
        """Create the next retransmission attempt of this instance.

        The retry keeps the original generation time and deadline (latency
        is measured from first production) but is reclassified as a
        hard-deadline aperiodic, per the paper's task model.
        """
        # Direct construction rather than dataclasses.replace(): retries
        # are minted on the retransmission hot path and replace() pays
        # per-call field introspection for the same result.
        return PendingFrame(
            frame=self.frame,
            instance=self.instance,
            generation_time_mt=self.generation_time_mt,
            deadline_mt=self.deadline_mt,
            priority=self.priority,
            kind=FrameKind.RETRANSMISSION,
            attempt=self.attempt + 1,
            sequence=next(_pending_sequence),
        )

    def slack_at(self, now_mt: int, duration_mt: int) -> int:
        """Laxity if transmission started now: deadline - now - duration."""
        return self.deadline_mt - now_mt - duration_mt
