"""ECU signal model.

Section II-A of the paper: each ECU ``E_i`` produces signals
``s^i_j = (period, offset, deadline, length)``.  Signals are the unit the
case-study tables (BBW, ACC) are given in; the frame-packing substrate
(:mod:`repro.packing`) turns them into FlexRay frames.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

__all__ = ["Signal", "SignalSet"]


@dataclass(frozen=True)
class Signal:
    """One real-time signal.

    Attributes:
        name: Unique signal identifier (e.g. ``"bbw-03"``).
        ecu: Index of the producing ECU (0-based).
        period_ms: Production period P in milliseconds; ``None`` marks an
            aperiodic (event-triggered) signal whose period field then
            denotes its minimum inter-arrival time via
            ``min_interarrival_ms``.
        offset_ms: Release offset O of the first instance.
        deadline_ms: Relative deadline D (D <= P for periodic signals).
        size_bits: Signal length W in bits.
        priority: Smaller = more urgent; used for dynamic-segment frame
            ID assignment.  Defaults derive from the deadline (deadline-
            monotonic), matching the paper's "tasks with smaller d_i are
            allocated higher priority".
        aperiodic: True for event-triggered signals (dynamic segment).
        min_interarrival_ms: Sporadic minimum inter-arrival time for
            aperiodic signals (defaults to the period field semantics used
            by the paper's SAE set: 50 ms).
    """

    name: str
    ecu: int
    period_ms: float
    offset_ms: float
    deadline_ms: float
    size_bits: int
    priority: Optional[int] = None
    aperiodic: bool = False
    min_interarrival_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("signal name must be non-empty")
        if self.ecu < 0:
            raise ValueError(f"{self.name}: ecu index must be >= 0")
        if self.period_ms <= 0:
            raise ValueError(f"{self.name}: period must be positive")
        if self.offset_ms < 0:
            raise ValueError(f"{self.name}: offset must be >= 0")
        if self.deadline_ms <= 0:
            raise ValueError(f"{self.name}: deadline must be positive")
        if self.size_bits <= 0:
            raise ValueError(f"{self.name}: size must be positive")
        if not self.aperiodic and self.deadline_ms > self.period_ms:
            raise ValueError(
                f"{self.name}: constrained-deadline model requires "
                f"deadline ({self.deadline_ms} ms) <= period ({self.period_ms} ms)"
            )
        if not self.aperiodic and self.offset_ms > self.period_ms:
            raise ValueError(
                f"{self.name}: offset ({self.offset_ms} ms) must not exceed "
                f"the period ({self.period_ms} ms)"
            )

    @property
    def effective_priority(self) -> int:
        """Deadline-monotonic default priority when none is assigned.

        Priorities are compared numerically: smaller wins.  Scaling the
        deadline by 1000 keeps sub-millisecond deadline differences
        distinguishable as integers.
        """
        if self.priority is not None:
            return self.priority
        return int(round(self.deadline_ms * 1000))

    @property
    def utilization(self) -> float:
        """Signal bandwidth demand as bits per millisecond."""
        return self.size_bits / self.period_ms

    def instances_in(self, horizon_ms: float) -> int:
        """Number of instances released in ``[0, horizon_ms)``."""
        if horizon_ms <= self.offset_ms:
            return 0
        return int(math.ceil((horizon_ms - self.offset_ms) / self.period_ms))

    def release_time_ms(self, instance: int) -> float:
        """Absolute release time of the ``instance``-th job (0-based)."""
        if instance < 0:
            raise ValueError(f"instance must be >= 0, got {instance}")
        return self.offset_ms + instance * self.period_ms

    def absolute_deadline_ms(self, instance: int) -> float:
        """Absolute deadline of the ``instance``-th job (0-based)."""
        return self.release_time_ms(instance) + self.deadline_ms


class SignalSet:
    """An ordered collection of signals with lookup and summary helpers.

    Signal sets are the workload currency of the whole reproduction:
    workload generators produce them, packers consume them, and schedulers
    plan over the resulting frames.
    """

    def __init__(self, signals: Sequence[Signal], name: str = "unnamed") -> None:
        names = [s.name for s in signals]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate signal names: {sorted(duplicates)}")
        self._signals: List[Signal] = list(signals)
        self._by_name: Dict[str, Signal] = {s.name: s for s in signals}
        self.name = name

    def __len__(self) -> int:
        return len(self._signals)

    def __iter__(self) -> Iterator[Signal]:
        return iter(self._signals)

    def __getitem__(self, name: str) -> Signal:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def signals(self) -> List[Signal]:
        """Signals in declaration order."""
        return list(self._signals)

    def periodic(self) -> "SignalSet":
        """Subset of time-triggered (static-segment) signals."""
        return SignalSet([s for s in self._signals if not s.aperiodic],
                         name=f"{self.name}/periodic")

    def aperiodic(self) -> "SignalSet":
        """Subset of event-triggered (dynamic-segment) signals."""
        return SignalSet([s for s in self._signals if s.aperiodic],
                         name=f"{self.name}/aperiodic")

    def by_ecu(self) -> Dict[int, List[Signal]]:
        """Signals grouped by producing ECU."""
        grouped: Dict[int, List[Signal]] = {}
        for signal in self._signals:
            grouped.setdefault(signal.ecu, []).append(signal)
        return grouped

    def ecu_count(self) -> int:
        """Number of distinct producing ECUs."""
        return len({s.ecu for s in self._signals})

    def hyperperiod_ms(self) -> float:
        """Least common multiple of periodic-signal periods (milliseconds).

        Periods are scaled to microsecond integers first, so fractional
        millisecond periods are handled exactly.
        """
        periodic = [s for s in self._signals if not s.aperiodic]
        if not periodic:
            return 0.0
        scaled = [int(round(s.period_ms * 1000)) for s in periodic]
        lcm = scaled[0]
        for value in scaled[1:]:
            lcm = lcm * value // math.gcd(lcm, value)
        return lcm / 1000.0

    def total_utilization(self) -> float:
        """Aggregate bandwidth demand in bits per millisecond."""
        return sum(s.utilization for s in self._signals)

    def merged_with(self, other: "SignalSet", name: Optional[str] = None) -> "SignalSet":
        """Union of two signal sets (names must not collide)."""
        return SignalSet(self._signals + other.signals,
                         name=name or f"{self.name}+{other.name}")

    def summary(self) -> Dict[str, float]:
        """Headline statistics for experiment logs."""
        periodic = self.periodic()
        aperiodic = self.aperiodic()
        return {
            "signals": len(self),
            "periodic": len(periodic),
            "aperiodic": len(aperiodic),
            "ecus": self.ecu_count(),
            "hyperperiod_ms": self.hyperperiod_ms(),
            "utilization_bits_per_ms": round(self.total_utilization(), 2),
        }
