"""Controller-Host Interface (CHI) buffering.

Section II-B of the paper: "each node in a FlexRay cluster contains a host
and a Communication Controller (CC).  These two components are connected
by a Controller-Host Interface (CHI).  CHI becomes a buffer between the
host and CC."  Two buffer types exist:

- :class:`StaticBuffer` -- single-message buffers keyed by static slot;
  the host *overwrites* the buffer each period (sensor semantics: the
  freshest value wins), the CC reads at the slot's action point.
- :class:`PriorityOutputQueue` -- the per-frame-ID priority queues serving
  the dynamic segment; messages with the same frame ID queue FIFO within
  a priority level, and the head of the queue is sent in the current bus
  cycle.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.protocol.frame import PendingFrame

__all__ = ["StaticBuffer", "PriorityOutputQueue", "ControllerHostInterface"]


class StaticBuffer:
    """Single-slot message buffer with overwrite semantics.

    FlexRay static buffers hold exactly one message: writing a new
    instance before the old one was transmitted *replaces* it (and the
    displaced instance is reported so the trace can count it as dropped).
    """

    def __init__(self, slot_id: int) -> None:
        if slot_id < 1:
            raise ValueError(f"slot_id must be >= 1, got {slot_id}")
        self._slot_id = slot_id
        self._current: Optional[PendingFrame] = None

    @property
    def slot_id(self) -> int:
        """Static slot this buffer feeds."""
        return self._slot_id

    @property
    def occupied(self) -> bool:
        """Whether a message instance is waiting."""
        return self._current is not None

    def write(self, pending: PendingFrame) -> Optional[PendingFrame]:
        """Host write: store an instance, returning any displaced one."""
        displaced = self._current
        self._current = pending
        return displaced

    def peek(self) -> Optional[PendingFrame]:
        """CC read without consuming."""
        return self._current

    def take(self) -> Optional[PendingFrame]:
        """CC read-and-clear at the slot action point."""
        current = self._current
        self._current = None
        return current


class PriorityOutputQueue:
    """Priority queue of pending dynamic frames for one frame ID.

    Ordered by :meth:`PendingFrame.queue_key` -- priority, then
    generation time, then a global sequence number -- so the dequeue
    order is deterministic and FIFO within a priority level, matching the
    paper's description of the dynamic-segment local output queues.
    """

    def __init__(self, frame_id: int) -> None:
        if frame_id < 1:
            raise ValueError(f"frame_id must be >= 1, got {frame_id}")
        self._frame_id = frame_id
        self._heap: List[tuple] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def frame_id(self) -> int:
        """Dynamic frame ID this queue serves."""
        return self._frame_id

    @property
    def empty(self) -> bool:
        """Whether no message is waiting."""
        return not self._heap

    def push(self, pending: PendingFrame) -> None:
        """Enqueue an instance."""
        heapq.heappush(self._heap, (pending.queue_key(), pending))

    def peek(self) -> Optional[PendingFrame]:
        """Head of the queue without consuming."""
        return self._heap[0][1] if self._heap else None

    def pop(self) -> Optional[PendingFrame]:
        """Dequeue the head (the message sent in the current bus cycle)."""
        if not self._heap:
            return None
        __, pending = heapq.heappop(self._heap)
        return pending

    def drop_expired(self, now_mt: int) -> List[PendingFrame]:
        """Remove and return instances whose deadline already passed.

        A dynamic message whose deadline expired while queued can no
        longer meet its timing requirement; real controllers would still
        send it, but for metric purposes the instance has already missed.
        We keep it queued only if the caller opts not to call this.
        """
        keep: List[tuple] = []
        expired: List[PendingFrame] = []
        for key, pending in self._heap:
            if pending.deadline_mt < now_mt:
                expired.append(pending)
            else:
                keep.append((key, pending))
        if expired:
            heapq.heapify(keep)
            self._heap = keep
        return expired


class ControllerHostInterface:
    """The full CHI of one node: static buffers plus dynamic queues."""

    def __init__(self) -> None:
        self._static_buffers: Dict[int, StaticBuffer] = {}
        self._dynamic_queues: Dict[int, PriorityOutputQueue] = {}

    def static_buffer(self, slot_id: int) -> StaticBuffer:
        """Get (or lazily create) the static buffer for a slot."""
        if slot_id not in self._static_buffers:
            self._static_buffers[slot_id] = StaticBuffer(slot_id)
        return self._static_buffers[slot_id]

    def dynamic_queue(self, frame_id: int) -> PriorityOutputQueue:
        """Get (or lazily create) the dynamic queue for a frame ID."""
        if frame_id not in self._dynamic_queues:
            self._dynamic_queues[frame_id] = PriorityOutputQueue(frame_id)
        return self._dynamic_queues[frame_id]

    def static_slots(self) -> List[int]:
        """Slot IDs with configured static buffers."""
        return sorted(self._static_buffers)

    def dynamic_frame_ids(self) -> List[int]:
        """Frame IDs with configured dynamic queues."""
        return sorted(self._dynamic_queues)

    def pending_dynamic_count(self) -> int:
        """Total messages waiting across all dynamic queues."""
        return sum(len(q) for q in self._dynamic_queues.values())
