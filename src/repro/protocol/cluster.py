"""The simulated cluster: nodes + channels + segment engines + policy.

This is the top of the protocol substrate.  A cluster is assembled from:

- a validated :class:`~repro.protocol.geometry.SegmentGeometry`;
- a :class:`~repro.protocol.topology.Topology` with one
  :class:`~repro.protocol.node.EcuNode` per attached ECU;
- an :class:`~repro.protocol.arrivals.ArrivalMultiplexer` of message
  sources (the hosts);
- a :class:`~repro.protocol.policy.SchedulerPolicy` (the system under
  test: CoEfficient or a baseline);
- a fault oracle (``(channel, bits, time) -> bool``), normally a
  :class:`repro.faults.injector.TransientFaultInjector`.

Running the cluster advances communication cycles; each cycle executes
the static segment (TDMA) then the dynamic segment (FTDMA), delivering
host arrivals to the policy in exact time order between slots.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.protocol.arrivals import ArrivalMultiplexer, MessageSource
from repro.protocol.channel import Channel, ChannelSet
from repro.protocol.cycle import CycleLayout
from repro.protocol.dynamic_segment import DynamicSegmentEngine
from repro.protocol.node import EcuNode
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.policy import SchedulerPolicy
from repro.protocol.static_segment import StaticSegmentEngine
from repro.protocol.topology import BusTopology, Topology
from repro.obs import NULL_OBS, ObsLike
from repro.sim.engine import EngineMode
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.trace import TraceRecorder
from repro.timeline.stepper import TimelineStepper
from repro.timeline.vectorized import VectorizedStepper

__all__ = ["Cluster"]

FaultOracle = Callable[[Channel, int, int], bool]


def _never_corrupts(channel: Channel, bits: int, time_mt: int) -> bool:
    """Default fault oracle: a perfect medium."""
    return False


class Cluster:
    """A runnable time-triggered cluster simulation.

    Args:
        params: Cluster configuration.
        policy: Scheduling policy under test.
        sources: Host message sources.
        corrupts: Fault oracle; defaults to a fault-free medium.
        topology: Interconnect; defaults to a bus sized to the sources'
            producing ECUs (minimum 2 nodes).
        node_count: Explicit node count override (>= max producer index).
        obs: Observability context; when enabled, the cluster records
            ``engine.*`` counters and per-segment profiler sections.
        mode: :class:`~repro.sim.engine.EngineMode` (or its string
            value).  ``STEPPER`` (the default) advances over the
            policy's compiled round when it offers one, falling back to
            per-slot events for aperiodic work; ``VECTORIZED`` further
            evaluates whole segments as phase-split batches (batched
            fault draws, batched trace appends) whenever the policy's
            decisions are provably outcome-free; ``INTERPRETER`` is the
            pure event-list oracle.  All modes produce byte-identical
            traces (``tests/sim/test_trace_equivalence.py``,
            ``tests/sim/test_engine_fuzz.py``).
    """

    def __init__(
        self,
        params: SegmentGeometry,
        policy: SchedulerPolicy,
        sources: Sequence[MessageSource],
        corrupts: Optional[FaultOracle] = None,
        topology: Optional[Topology] = None,
        node_count: Optional[int] = None,
        obs: ObsLike = NULL_OBS,
        mode: Union[str, EngineMode] = EngineMode.STEPPER,
    ) -> None:
        self.params = params
        self.policy = policy
        self._obs = obs
        self._observed = obs.enabled
        self.layout = CycleLayout(params)
        self.channels = ChannelSet(params.channel_count)
        self.trace = TraceRecorder(protocol=type(params).protocol)
        self._corrupts: FaultOracle = corrupts or _never_corrupts
        self._multiplexer = ArrivalMultiplexer(sources)
        self._sources = list(sources)

        required_nodes = max(node_count or 0, 2)
        self.topology = topology or BusTopology(required_nodes)
        self.nodes: List[EcuNode] = [
            EcuNode(node_id) for node_id in self.topology.nodes()
        ]

        self._static_engine = StaticSegmentEngine(
            params, self.layout, self.channels, policy,
            self._corrupts, self.trace,
        )
        self._dynamic_engine = DynamicSegmentEngine(
            params, self.layout, self.channels, policy,
            self._corrupts, self.trace,
        )
        self._mode = EngineMode.parse(mode)
        self._stepper: Optional[TimelineStepper] = None
        self._cycle = 0
        self._bound = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Next communication cycle to execute (0-based)."""
        return self._cycle

    @property
    def now_mt(self) -> int:
        """Start time of the next cycle (the cluster's logical clock)."""
        return self.layout.cycle_start(self._cycle)

    def node(self, node_id: int) -> EcuNode:
        """Look up a node by index."""
        return self.nodes[node_id]

    @property
    def mode(self) -> EngineMode:
        """The configured engine mode."""
        return self._mode

    @property
    def stepper_active(self) -> bool:
        """Whether the compiled-timeline fast path is engaged."""
        return self._stepper is not None

    @property
    def vectorized_active(self) -> bool:
        """Whether the phase-split batch engine is engaged."""
        return isinstance(self._stepper, VectorizedStepper)

    def _ensure_bound(self) -> None:
        if not self._bound:
            self.policy.bind(self)
            for node in self.nodes:
                node.start()
            if self._mode in (EngineMode.STEPPER, EngineMode.VECTORIZED):
                compiled = self.policy.compiled_round()
                if compiled is not None:
                    if self._mode is EngineMode.VECTORIZED:
                        self._stepper = VectorizedStepper(
                            compiled=compiled,
                            params=self.params,
                            layout=self.layout,
                            channels=self.channels,
                            policy=self.policy,
                            static_engine=self._static_engine,
                            dynamic_engine=self._dynamic_engine,
                            next_release_mt=self._multiplexer.next_release_mt,
                            corrupts=self._corrupts,
                            trace=self.trace,
                            obs=self._obs,
                        )
                    else:
                        self._stepper = TimelineStepper(
                            compiled=compiled,
                            params=self.params,
                            layout=self.layout,
                            channels=self.channels,
                            policy=self.policy,
                            static_engine=self._static_engine,
                            dynamic_engine=self._dynamic_engine,
                            next_release_mt=self._multiplexer.next_release_mt,
                            obs=self._obs,
                        )
            self._bound = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_cycles(self, count: int) -> None:
        """Execute ``count`` communication cycles.

        Args:
            count: Number of cycles (> 0).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._ensure_bound()
        for __ in range(count):
            self._execute_one_cycle()

    def run_for_ms(self, milliseconds: float) -> int:
        """Execute whole cycles spanning at least ``milliseconds``.

        Returns:
            The number of cycles executed.
        """
        if milliseconds <= 0:
            raise ValueError(f"milliseconds must be positive, got {milliseconds}")
        horizon_mt = self.params.ms_to_mt(milliseconds)
        cycles = max(1, -(-horizon_mt // self.params.gd_cycle_mt))
        self.run_cycles(cycles)
        return cycles

    def run_until_complete(self, max_cycles: int = 200_000,
                           settle_cycles: int = 8) -> int:
        """Run until the whole transmission workload completes (or stalls).

        Used by the running-time experiments: sources are instance-
        limited and the run continues until every produced instance has
        been delivered *and* the policy has drained its planned work
        (redundancy copies included) -- the paper's "completes the
        message transmission" includes the transmissions its reliability
        scheme requires, not just first deliveries.

        Args:
            max_cycles: Hard cap on executed cycles.
            settle_cycles: Extra cycles allowed with no progress (neither
                deliveries nor pending-work reduction) before declaring a
                stall and stopping.

        Returns:
            The number of cycles executed.
        """
        self._ensure_bound()
        executed = 0
        stagnant = 0
        last_progress = (-1, -1)
        while executed < max_cycles:
            if self._multiplexer.exhausted:
                produced = self.trace.instance_count()
                delivered = self.trace.delivered_count()
                pending = self.policy.pending_work()
                if produced and delivered >= produced and pending == 0:
                    break
                progress = (delivered, pending)
                if progress == last_progress:
                    stagnant += 1
                    if stagnant > settle_cycles:
                        break
                else:
                    stagnant = 0
                last_progress = progress
            self._execute_one_cycle()
            executed += 1
        return executed

    def _execute_one_cycle(self) -> None:
        """Run one full communication cycle (static + dynamic segments)."""
        cycle = self._cycle
        start_mt = self.layout.cycle_start(cycle)
        if self._observed:
            self._execute_one_cycle_observed(cycle, start_mt)
        elif self._stepper is not None:
            self._deliver_arrivals_until(start_mt)
            self.policy.on_cycle_start(cycle, start_mt)
            self._stepper.run_static_segment(
                cycle, self._deliver_arrivals_until)
            self._stepper.run_dynamic_segment(
                cycle, self._deliver_arrivals_until)
        else:
            self._deliver_arrivals_until(start_mt)
            self.policy.on_cycle_start(cycle, start_mt)
            self._static_engine.execute_cycle(
                cycle, self._deliver_arrivals_until)
            self._dynamic_engine.execute_cycle(
                cycle, self._deliver_arrivals_until)
        # Arrivals landing in the symbol window / NIT wait for the next
        # cycle's delivery pass by construction.
        self._cycle = cycle + 1

    def _execute_one_cycle_observed(self, cycle: int, start_mt: int) -> None:
        """The same cycle walk, with per-segment timing and counters."""
        obs = self._obs
        with obs.section("cluster.arrivals"):
            self._deliver_arrivals_until(start_mt)
        self.policy.on_cycle_start(cycle, start_mt)
        if self._stepper is not None:
            with obs.section("cluster.static_segment"):
                static_fast = self._stepper.run_static_segment(
                    cycle, self._deliver_arrivals_until)
            with obs.section("cluster.dynamic_segment"):
                dynamic_fast = self._stepper.run_dynamic_segment(
                    cycle, self._deliver_arrivals_until)
            if static_fast and dynamic_fast:
                obs.inc("engine.fast_path_cycles")
        else:
            with obs.section("cluster.static_segment"):
                self._static_engine.execute_cycle(
                    cycle, self._deliver_arrivals_until)
            with obs.section("cluster.dynamic_segment"):
                self._dynamic_engine.execute_cycle(
                    cycle, self._deliver_arrivals_until)
            obs.inc(
                "engine.heap_events",
                self.params.g_number_of_static_slots * len(self.channels)
                + len(self._dynamic_engine.last_cycle_results),
            )
        obs.inc("engine.cycles")
        obs.set_gauge("engine.trace_records", len(self.trace))
        obs.emit("engine.cycle", cycle=cycle, start_mt=start_mt,
                 pending_work=self.policy.pending_work())

    def _deliver_arrivals_until(self, time_mt: int) -> None:
        """Flush host releases with generation time <= ``time_mt``."""
        for release in self._multiplexer.pop_until(time_mt):
            if self._observed:
                self._obs.inc("engine.arrivals_delivered")
            self.trace.note_instance(
                release.message_id, release.instance,
                release.generation_time_mt, release.deadline_mt,
                chunks=release.chunks,
            )
            for pending in release.pendings:
                producer = pending.frame.producer_ecu
                if 0 <= producer < len(self.nodes):
                    self.nodes[producer].controller.note_sent()
                self.policy.on_arrival(pending)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def metrics(self, horizon_mt: Optional[int] = None) -> SimulationMetrics:
        """Reduce the trace to the paper's metric set.

        Args:
            horizon_mt: Measurement window; defaults to the time span the
                cluster actually executed.
        """
        if horizon_mt is None:
            horizon_mt = max(1, self.now_mt)
        collector = MetricsCollector(
            macrotick_us=self.params.gd_macrotick_us,
            channel_count=self.params.channel_count,
            obs=self._obs,
        )
        self.policy.on_horizon_end(self.now_mt)
        return collector.compute(self.trace, horizon_mt)
