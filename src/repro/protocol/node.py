"""ECU node: host + communication controller + CHI.

Section II-B: "each node in a FlexRay cluster contains a host and a
Communication Controller (CC) ... the host is a part of an ECU and can
carry out the application software to deal with incoming messages and
generate outgoing messages."

The host side here is the arrival machinery (:mod:`repro.protocol.arrivals`
sources are attributed to nodes); the node object binds a controller, a
CHI and a local clock into the unit the cluster is assembled from.
"""

from __future__ import annotations

from typing import Optional

from repro.protocol.chi import ControllerHostInterface
from repro.protocol.clock import MacrotickClock
from repro.protocol.controller import CommunicationController

__all__ = ["EcuNode"]


class EcuNode:
    """One FlexRay node.

    Args:
        node_id: Cluster-wide node index (0-based).
        name: Human-readable ECU name (defaults to ``"ECU<n>"``).
        clock: Node-local clock model (defaults to a 100 ppm crystal).
    """

    def __init__(self, node_id: int, name: Optional[str] = None,
                 clock: Optional[MacrotickClock] = None) -> None:
        if node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {node_id}")
        self.node_id = node_id
        self.name = name or f"ECU{node_id}"
        self.clock = clock or MacrotickClock()
        self.chi = ControllerHostInterface()
        self.controller = CommunicationController(node_id, self.chi)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EcuNode({self.node_id}, {self.name!r})"

    def start(self) -> None:
        """Bring the node's controller into normal operation."""
        self.controller.start()

    def halt(self) -> None:
        """Halt the node's controller."""
        self.controller.halt()

    def summary(self) -> dict:
        """Per-node counters for experiment logs."""
        return {
            "node": self.name,
            "static_slots": self.controller.owned_static_slots(),
            "dynamic_ids": self.controller.owned_dynamic_ids(),
            "sent": self.controller.frames_sent,
            "received": self.controller.frames_received,
            "faults_seen": self.controller.faults_seen,
        }
