"""Communication controller (CC) state.

Section II-B: each node's communication controller executes the FlexRay
protocol services -- it tracks the protocol phase, owns the node's view
of the slot counters, and moves frames between the CHI and the bus.

In this reproduction the bus-level arbitration runs centrally in the
segment engines (they are the "bus"), so the controller's remaining
responsibilities are per-node bookkeeping: which slots and frame IDs this
node owns, protocol-phase sanity, and send/receive counters that the node
-level tests and examples inspect.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Set

from repro.protocol.chi import ControllerHostInterface

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.timeline.compiler import CompiledRound

__all__ = ["ProtocolPhase", "CommunicationController"]


class ProtocolPhase(enum.Enum):
    """Coarse protocol state machine of a communication controller."""

    CONFIG = "config"
    READY = "ready"
    NORMAL_ACTIVE = "normal-active"
    HALT = "halt"


class CommunicationController:
    """Per-node protocol bookkeeping.

    Args:
        node_id: Index of the owning node.
        chi: The node's controller-host interface.
    """

    def __init__(self, node_id: int, chi: ControllerHostInterface) -> None:
        if node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {node_id}")
        self._node_id = node_id
        self._chi = chi
        self._phase = ProtocolPhase.CONFIG
        self._owned_static_slots: Set[int] = set()
        self._owned_dynamic_ids: Set[int] = set()
        self.frames_sent = 0
        self.frames_received = 0
        self.faults_seen = 0

    @property
    def node_id(self) -> int:
        """Owning node index."""
        return self._node_id

    @property
    def phase(self) -> ProtocolPhase:
        """Current protocol phase."""
        return self._phase

    @property
    def chi(self) -> ControllerHostInterface:
        """The node's CHI."""
        return self._chi

    def configure_static_slot(self, slot_id: int) -> None:
        """Claim a static slot (CONFIG phase only)."""
        self._require_phase(ProtocolPhase.CONFIG, "configure static slot")
        self._owned_static_slots.add(slot_id)
        self._chi.static_buffer(slot_id)

    def configure_from_round(self, compiled: "CompiledRound") -> None:
        """Claim every static slot the compiled round assigns this node.

        The compiled round's ``owner_nodes`` array is the authoritative
        slot-ownership record (it resolves cycle multiplexing, which a
        naive cycle-0 table lookup misses), so node configuration reads
        it directly instead of re-deriving the signal->slot mapping.
        CONFIG phase only.
        """
        from repro.timeline.compiler import SEGMENT_STATIC

        self._require_phase(ProtocolPhase.CONFIG,
                            "configure from compiled round")
        for kind, owner, slot_id in zip(compiled.segment_kinds,
                                        compiled.owner_nodes,
                                        compiled.slot_ids):
            if kind == SEGMENT_STATIC and owner == self._node_id \
                    and slot_id not in self._owned_static_slots:
                self.configure_static_slot(slot_id)

    def configure_dynamic_id(self, frame_id: int) -> None:
        """Claim a dynamic frame ID (CONFIG phase only)."""
        self._require_phase(ProtocolPhase.CONFIG, "configure dynamic frame id")
        self._owned_dynamic_ids.add(frame_id)
        self._chi.dynamic_queue(frame_id)

    def owned_static_slots(self) -> List[int]:
        """Static slots this node transmits in."""
        return sorted(self._owned_static_slots)

    def owned_dynamic_ids(self) -> List[int]:
        """Dynamic frame IDs this node transmits with."""
        return sorted(self._owned_dynamic_ids)

    def owns_slot(self, slot_id: int) -> bool:
        """Whether this node owns a static slot."""
        return slot_id in self._owned_static_slots

    def owns_dynamic_id(self, frame_id: int) -> bool:
        """Whether this node owns a dynamic frame ID."""
        return frame_id in self._owned_dynamic_ids

    def start(self) -> None:
        """CONFIG -> READY -> NORMAL_ACTIVE (startup/integration done)."""
        self._require_phase(ProtocolPhase.CONFIG, "start")
        self._phase = ProtocolPhase.READY
        self._phase = ProtocolPhase.NORMAL_ACTIVE

    def halt(self) -> None:
        """Enter the HALT phase (end of simulation or fatal error)."""
        self._phase = ProtocolPhase.HALT

    def note_sent(self) -> None:
        """Count a transmission by this node."""
        self.frames_sent += 1

    def note_received(self, corrupted: bool) -> None:
        """Count a reception observed by this node."""
        self.frames_received += 1
        if corrupted:
            self.faults_seen += 1

    def _require_phase(self, phase: ProtocolPhase, action: str) -> None:
        if self._phase is not phase:
            raise RuntimeError(
                f"node {self._node_id}: cannot {action} in phase "
                f"{self._phase.value} (requires {phase.value})"
            )
