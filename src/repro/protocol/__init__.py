"""Protocol-neutral scheduling core.

The cycle-accurate engine of the repo, factored out of the original
FlexRay package: segment geometry (:mod:`~repro.protocol.geometry`),
frame and signal models, TDMA static segment, minislot-arbitrated
dynamic segment, channels, controller-host interface, nodes, topologies
and the cluster driver.  Everything here speaks only the contracts in
:mod:`~repro.protocol.contracts`; concrete protocols (FlexRay,
time-triggered Ethernet) plug in through
:mod:`~repro.protocol.backend`.
"""

from repro.protocol.backend import (
    ProtocolBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.protocol.contracts import FaultOracle, GeometryContract, TraceIdentity
from repro.protocol.geometry import SegmentGeometry

__all__ = [
    "FaultOracle",
    "GeometryContract",
    "ProtocolBackend",
    "SegmentGeometry",
    "TraceIdentity",
    "available_backends",
    "get_backend",
    "register_backend",
]
