"""Communication-cycle layout.

A FlexRay communication cycle is ``static segment | dynamic segment |
symbol window | network idle time (NIT)``.  :class:`CycleLayout` converts
between (cycle, slot/minislot) coordinates and absolute macrotick times;
the segment engines and the trace recorder both rely on it so that every
recorded transmission interval is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.protocol.geometry import SegmentGeometry

__all__ = ["CycleLayout"]


@dataclass(frozen=True)
class CycleLayout:
    """Time geometry of the communication cycle for a parameter set."""

    params: SegmentGeometry

    def cycle_start(self, cycle: int) -> int:
        """Absolute start time of communication cycle ``cycle`` (0-based)."""
        if cycle < 0:
            raise ValueError(f"cycle must be >= 0, got {cycle}")
        return cycle * self.params.gd_cycle_mt

    def cycle_of_time(self, time_mt: int) -> int:
        """Communication cycle containing absolute time ``time_mt``."""
        if time_mt < 0:
            raise ValueError(f"time must be >= 0, got {time_mt}")
        return time_mt // self.params.gd_cycle_mt

    def static_slot_window(self, cycle: int, slot_id: int) -> Tuple[int, int]:
        """Absolute ``[start, end)`` of a static slot.

        Args:
            cycle: Communication cycle (0-based).
            slot_id: Static slot ID (1-based).
        """
        if not 1 <= slot_id <= self.params.g_number_of_static_slots:
            raise ValueError(
                f"slot_id {slot_id} outside static range "
                f"[1, {self.params.g_number_of_static_slots}]"
            )
        start = (self.cycle_start(cycle)
                 + (slot_id - 1) * self.params.gd_static_slot_mt)
        return start, start + self.params.gd_static_slot_mt

    def static_action_point(self, cycle: int, slot_id: int) -> int:
        """Absolute macrotick at which a static transmission starts."""
        start, __ = self.static_slot_window(cycle, slot_id)
        return start + self.params.gd_action_point_offset_mt

    def dynamic_segment_window(self, cycle: int) -> Tuple[int, int]:
        """Absolute ``[start, end)`` of the cycle's dynamic segment."""
        start = self.cycle_start(cycle) + self.params.static_segment_mt
        return start, start + self.params.dynamic_segment_mt

    def minislot_start(self, cycle: int, minislot_index: int) -> int:
        """Absolute start of the ``minislot_index``-th minislot (0-based)."""
        if not 0 <= minislot_index <= self.params.g_number_of_minislots:
            raise ValueError(
                f"minislot index {minislot_index} outside "
                f"[0, {self.params.g_number_of_minislots}]"
            )
        segment_start, __ = self.dynamic_segment_window(cycle)
        return segment_start + minislot_index * self.params.gd_minislot_mt

    def symbol_window(self, cycle: int) -> Tuple[int, int]:
        """Absolute ``[start, end)`` of the symbol window (may be empty)."""
        __, dynamic_end = self.dynamic_segment_window(cycle)
        return dynamic_end, dynamic_end + self.params.gd_symbol_window_mt

    def nit_window(self, cycle: int) -> Tuple[int, int]:
        """Absolute ``[start, end)`` of the network idle time."""
        __, symbol_end = self.symbol_window(cycle)
        return symbol_end, self.cycle_start(cycle + 1)

    def cycles_for_horizon(self, horizon_mt: int) -> int:
        """Number of whole cycles fitting in ``[0, horizon_mt]``."""
        if horizon_mt < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon_mt}")
        return horizon_mt // self.params.gd_cycle_mt
