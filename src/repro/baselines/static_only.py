"""Static-segment-only fault-tolerant scheduling.

Models the related-work line the paper cites as [4] (Tanasa et al.,
"Scheduling for fault-tolerant communication on the static segment of
FlexRay") and [14], [15]: fault tolerance is provided entirely by
*pre-scheduled* static redundancy -- each frame is duplicated on the
second channel where capacity allows -- and the dynamic segment is left
to plain FTDMA with no retransmission support at all.

"However, this work only considers the static segments of FlexRay"
(Section V-C): event-triggered traffic gets whatever the dynamic segment
offers, failures there are unrecovered, and no capacity ever crosses the
segment boundary.
"""

from __future__ import annotations

from repro.core.queueing import QueueingPolicyBase
from repro.protocol.channel import Channel
from repro.protocol.frame import PendingFrame
from repro.protocol.schedule import ChannelStrategy
from repro.packing.frame_packing import PackingResult

__all__ = ["StaticOnlyPolicy"]


class StaticOnlyPolicy(QueueingPolicyBase):
    """Pre-scheduled static redundancy, no retransmission anywhere."""

    name = "StaticOnly"

    def __init__(self, packing: PackingResult,
                 drop_expired_dynamic: bool = True,
                 optimize_iterations: int = 0) -> None:
        # No retransmissions -> no reserved dynamic slot; the dynamic
        # messages keep their natural frame IDs.
        super().__init__(packing, reserve_retransmission_slot=False,
                         drop_expired_dynamic=drop_expired_dynamic,
                         optimize_iterations=optimize_iterations)

    def channel_strategy(self) -> str:
        return ChannelStrategy.DUPLICATE_BEST_EFFORT

    def serves_dynamic(self, channel: Channel) -> bool:
        return channel is Channel.A

    def handle_failure(self, pending: PendingFrame, segment: str,
                       end_mt: int) -> None:
        # Fault tolerance is the pre-scheduled duplicate or nothing.
        self.counters["retx_abandoned"] += 1
        if self.obs.enabled:
            self.obs.inc("baseline.unrecovered_failures")
