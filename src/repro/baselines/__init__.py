"""Baseline schedulers CoEfficient is evaluated against.

- :class:`~repro.baselines.fspec.FspecPolicy` -- the paper's main
  comparator: the standard FlexRay-specification behaviour with
  best-effort redundancy and best-effort retransmission of all segments;
- :class:`~repro.baselines.static_only.StaticOnlyPolicy` -- the
  static-segment-only fault-tolerant scheduling line of related work
  ([4], [14], [15]);
- :class:`~repro.baselines.dynamic_priority.DynamicPriorityPolicy` --
  the dynamic-segment-only priority scheduling line ([16]-[18]).
"""

from repro.baselines.dynamic_priority import DynamicPriorityPolicy
from repro.baselines.fspec import FspecPolicy
from repro.baselines.static_only import StaticOnlyPolicy

__all__ = ["DynamicPriorityPolicy", "FspecPolicy", "StaticOnlyPolicy"]
