"""FSPEC: the standard FlexRay-specification scheduling behaviour.

The paper's main comparator.  Its three defining (in)efficiencies, each
implemented literally:

1. **Blanket redundancy**: static frames are duplicated on the second
   channel wherever capacity allows (best-effort duplication) -- "FlexRay
   leverages static and pre-defined schedules that contain redundant
   transmission tasks".  The duplicate is transmitted whether or not the
   primary succeeded, which is precisely the bandwidth the paper says is
   wasted.

2. **Best-effort retransmission for all segments**: every corrupted
   frame -- any message, no selection, no budget -- is re-queued for
   retransmission through the dynamic segment until it succeeds or its
   deadline passes.  Under bursts this floods the (single-channel)
   dynamic segment and starves low-priority event traffic.

3. **Separate scheduling**: the static and dynamic segments never share
   capacity.  Idle static slots stay idle; dynamic messages are served
   only by channel A's dynamic segment (the spec's separate per-segment
   configuration), leaving channel B's dynamic segment unused.
"""

from __future__ import annotations

from repro.core.queueing import QueueingPolicyBase
from repro.protocol.channel import Channel
from repro.protocol.frame import PendingFrame
from repro.protocol.schedule import ChannelStrategy
from repro.packing.frame_packing import PackingResult

__all__ = ["FspecPolicy"]


class FspecPolicy(QueueingPolicyBase):
    """Standard FlexRay specification behaviour (see module docstring).

    Args:
        packing: The packed workload.
        duplicate_static: Whether to attempt best-effort duplication of
            static frames on the second channel (the spec's redundancy);
            disable to model a single-copy spec deployment.
        retransmission_copies: Open-loop best-effort copies queued per
            instance for every message not already covered by a
            channel-B duplicate -- "best-effort retransmission for all
            segments", priced blind because FSPEC has no per-message
            reliability analysis.
        feedback: Reactive-ARQ extension (see the queueing base).
    """

    name = "FSPEC"

    def __init__(self, packing: PackingResult,
                 duplicate_static: bool = True,
                 retransmission_copies: int = 1,
                 feedback: bool = False,
                 drop_expired_dynamic: bool = True,
                 optimize_iterations: int = 0) -> None:
        super().__init__(packing, reserve_retransmission_slot=True,
                         feedback=feedback,
                         drop_expired_dynamic=drop_expired_dynamic,
                         optimize_iterations=optimize_iterations)
        self._duplicate_static = duplicate_static
        if retransmission_copies < 0:
            raise ValueError("retransmission_copies must be >= 0")
        self._retransmission_copies = retransmission_copies

    def channel_strategy(self) -> str:
        if self._duplicate_static:
            return ChannelStrategy.DUPLICATE_BEST_EFFORT
        return ChannelStrategy.DISTRIBUTE

    def serves_dynamic(self, channel: Channel) -> bool:
        # Separate scheduling: the dynamic segment is configured on one
        # channel only.
        return channel is Channel.A

    def redundancy_for_arrival(self, pending: PendingFrame) -> int:
        # Best-effort retransmission for ALL segments: every instance
        # gets the same blind copy count, except where the channel-B
        # duplicate already doubles it.
        key = (pending.message_id, pending.frame.chunk)
        placements = self._placements.get(key, ())
        if len(placements) >= 2:
            if self.obs.enabled:
                self.obs.inc("baseline.duplicate_covered")
            return 0  # already duplicated in the static schedule
        return self._retransmission_copies

    def handle_failure(self, pending: PendingFrame, segment: str,
                       end_mt: int) -> None:
        # Feedback extension: retry anything that can still make its
        # deadline -- still no selection, no budget, no slack check.
        if end_mt >= pending.deadline_mt:
            self.counters["retx_abandoned"] += 1
            return
        if self.chunk_delivered(pending):
            return
        self.push_retransmission(pending.retry(end_mt))
        self.counters["retx_enqueued"] += 1
        if self.obs.enabled:
            # Best-effort ARQ admits unconditionally -- the contrast
            # with CoEfficient's acceptance test in the event stream.
            self.obs.emit("policy.retx_admission",
                          message_id=pending.message_id,
                          instance=pending.instance,
                          admitted=True, open_loop=False)

    # No slack_frame_for override: idle static slots stay idle (the
    # separate-scheduling waste the paper criticizes).
