"""Dynamic-segment-only priority scheduling.

Models the related-work line the paper cites as [16]-[18] (Schmidt &
Schmidt "Message scheduling for the FlexRay protocol: the dynamic
segment", Jung et al. "Priority-based scheduling of dynamic segment"):
the dynamic segment is optimized in isolation -- event messages get
priority-ordered FTDMA service on *both* channels' dynamic segments --
while the static segment is a plain single-copy schedule and faults are
nobody's problem.

Compared against CoEfficient this isolates the value of (a) the
reliability machinery and (b) static-slack cooperation, since this
baseline's dynamic service is otherwise identical.
"""

from __future__ import annotations

from repro.core.queueing import QueueingPolicyBase
from repro.protocol.channel import Channel
from repro.protocol.frame import PendingFrame
from repro.protocol.schedule import ChannelStrategy
from repro.packing.frame_packing import PackingResult

__all__ = ["DynamicPriorityPolicy"]


class DynamicPriorityPolicy(QueueingPolicyBase):
    """Priority-optimized dynamic segment, fault-oblivious static."""

    name = "DynamicPriority"

    def __init__(self, packing: PackingResult,
                 drop_expired_dynamic: bool = True,
                 optimize_iterations: int = 0) -> None:
        super().__init__(packing, reserve_retransmission_slot=False,
                         drop_expired_dynamic=drop_expired_dynamic,
                         optimize_iterations=optimize_iterations)

    def channel_strategy(self) -> str:
        return ChannelStrategy.DISTRIBUTE

    def serves_dynamic(self, channel: Channel) -> bool:
        return True  # dual-channel dynamic service is this line's focus

    def handle_failure(self, pending: PendingFrame, segment: str,
                       end_mt: int) -> None:
        # Fault-oblivious: corrupted frames are simply lost.
        self.counters["retx_abandoned"] += 1
        if self.obs.enabled:
            self.obs.inc("baseline.unrecovered_failures")
