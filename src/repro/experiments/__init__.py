"""Experiment orchestration.

- :mod:`repro.experiments.runner` -- one-call experiment execution:
  workload x scheduler x fault environment -> metrics;
- :mod:`repro.experiments.figures` -- regenerates the data series behind
  every figure and table of the paper's evaluation (Section IV);
- :mod:`repro.experiments.campaign` -- multi-seed Monte-Carlo campaigns
  with confidence intervals, optional worker-pool parallelism, and
  deterministic seed-order merging;
- :mod:`repro.experiments.cache` -- the content-addressed on-disk cache
  completed campaign seed runs persist in.
"""

from repro.experiments.cache import CampaignCache
from repro.experiments.campaign import (
    CAMPAIGN_METRICS,
    CampaignFailure,
    CampaignResult,
    MetricSummary,
    compare_campaigns,
    run_campaign,
)
from repro.experiments.plots import ascii_bar_chart, ascii_line_chart
from repro.experiments.runner import (
    SCHEDULERS,
    ExperimentResult,
    make_policy,
    run_experiment,
)

__all__ = [
    "CAMPAIGN_METRICS",
    "CampaignCache",
    "CampaignFailure",
    "CampaignResult",
    "MetricSummary",
    "SCHEDULERS",
    "ExperimentResult",
    "ascii_bar_chart",
    "ascii_line_chart",
    "compare_campaigns",
    "make_policy",
    "run_campaign",
    "run_experiment",
]
