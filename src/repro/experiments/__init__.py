"""Experiment orchestration.

- :mod:`repro.experiments.runner` -- one-call experiment execution:
  workload x scheduler x fault environment -> metrics;
- :mod:`repro.experiments.figures` -- regenerates the data series behind
  every figure and table of the paper's evaluation (Section IV).
"""

from repro.experiments.campaign import (
    CampaignResult,
    MetricSummary,
    compare_campaigns,
    run_campaign,
)
from repro.experiments.plots import ascii_bar_chart, ascii_line_chart
from repro.experiments.runner import (
    SCHEDULERS,
    ExperimentResult,
    make_policy,
    run_experiment,
)

__all__ = [
    "CampaignResult",
    "MetricSummary",
    "SCHEDULERS",
    "ExperimentResult",
    "ascii_bar_chart",
    "ascii_line_chart",
    "compare_campaigns",
    "make_policy",
    "run_campaign",
    "run_experiment",
]
