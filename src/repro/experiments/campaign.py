"""Monte-Carlo experiment campaigns.

A single seeded run is reproducible but still one sample; the paper's
"extensive experiments" imply repetition.  A campaign runs the same
configuration across many seeds and reports mean / spread / confidence
intervals per metric, so claims like "CoEfficient's miss ratio is lower"
can be made with error bars instead of single draws.

Execution model
---------------

Seeds are embarrassingly parallel: each one is an independent sample
with its own workload jitter and fault pattern.  ``run_campaign(...,
workers=N)`` fans them out over a spawn-safe ``multiprocessing`` pool;
every seed runs in its **own fresh observability context** (no shared
registry to race on or leak across seeds) and the parent merges the
per-seed results and :class:`~repro.obs.ObsSnapshot`\\ s back together
**in seed order**, so summaries, counters, and deterministic JSONL
exports are identical to a serial run over the same seeds regardless of
worker count or completion order.  Timers and profiler sections are
wall clock and therefore excluded from that guarantee.

A seed whose worker raises is retried once (``retries=1``); a seed that
fails again is surfaced in :attr:`CampaignResult.failures` instead of
killing the campaign, and summaries cover the seeds that completed.

With ``cache_dir=`` set, completed seed runs persist in a
content-addressed on-disk cache (see :mod:`repro.experiments.cache`)
keyed by scheduler + seed + the full experiment configuration; a warm
re-run of the same campaign performs zero new simulations.

Statistics
----------

Confidence intervals use two-sided 95 % Student-t critical values for
df = 1..29 and the normal approximation (1.96) from df >= 30.  A df
that somehow falls between table entries rounds *down* to the nearest
tabulated df, which has the larger critical value -- the conservative
direction for a confidence interval.
"""

from __future__ import annotations

import math
import multiprocessing
import statistics
import traceback
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.cache import CampaignCache
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.obs import NULL_OBS, Observability, ObsSnapshot, \
    attach_event_capture

__all__ = ["CAMPAIGN_METRICS", "MetricSummary", "CampaignFailure",
           "CampaignResult", "run_campaign", "compare_campaigns"]

#: Two-sided 95 % Student-t critical values for df = 1..29; from df >= 30
#: the normal approximation (1.96) applies.
_T_95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
         7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
         13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110,
         18: 2.101, 19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074,
         23: 2.069, 24: 2.064, 25: 2.060, 26: 2.056, 27: 2.052,
         28: 2.048, 29: 2.045}


def _t_critical(df: int) -> float:
    if df <= 0:
        return float("inf")
    if df >= 30:
        return 1.96
    value = _T_95.get(df)
    if value is not None:
        return value
    # Between table entries, round down to the nearest tabulated df:
    # the smaller df has the *larger* critical value, so the interval
    # stays conservative rather than anti-conservative.
    return _T_95[max(bound for bound in _T_95 if bound <= df)]


@dataclass(frozen=True)
class MetricSummary:
    """Mean, spread and 95 % CI of one metric over a campaign."""

    name: str
    samples: int
    mean: float
    stdev: float
    ci_low: float
    ci_high: float
    minimum: float
    maximum: float

    @staticmethod
    def of(name: str, values: Sequence[float]) -> "MetricSummary":
        if not values:
            raise ValueError(f"no samples for metric {name}")
        mean = statistics.fmean(values)
        stdev = statistics.stdev(values) if len(values) > 1 else 0.0
        half_width = (_t_critical(len(values) - 1) * stdev
                      / math.sqrt(len(values))) if len(values) > 1 else 0.0
        return MetricSummary(
            name=name, samples=len(values), mean=mean, stdev=stdev,
            ci_low=mean - half_width, ci_high=mean + half_width,
            minimum=min(values), maximum=max(values),
        )

    @staticmethod
    def skipped(name: str) -> "MetricSummary":
        """A zero-sample summary (every seed's value was undefined)."""
        nan = float("nan")
        return MetricSummary(name=name, samples=0, mean=nan, stdev=nan,
                             ci_low=nan, ci_high=nan, minimum=nan,
                             maximum=nan)

    def overlaps(self, other: "MetricSummary") -> bool:
        """Whether the two 95 % CIs overlap (a quick separation check)."""
        return not (self.ci_high < other.ci_low
                    or other.ci_high < self.ci_low)


@dataclass(frozen=True)
class CampaignFailure:
    """One seed that kept failing after its retry.

    Attributes:
        seed: The failing seed.
        attempts: How many times it was tried.
        error: Formatted traceback of the final attempt.
    """

    seed: int
    attempts: int
    error: str


@dataclass
class CampaignResult:
    """All per-seed results plus per-metric summaries.

    ``results`` (and ``obs_snapshots`` when observability was enabled)
    are ordered by the input seed order, covering the seeds that
    completed; ``failures`` lists the seeds that did not.
    """

    scheduler: str
    seeds: List[int]
    results: List[ExperimentResult]
    summaries: Dict[str, MetricSummary] = field(default_factory=dict)
    failures: List[CampaignFailure] = field(default_factory=list)
    obs_snapshots: List[ObsSnapshot] = field(default_factory=list)
    cache_hits: int = 0
    simulations_run: int = 0
    store_campaign_id: Optional[str] = None

    @property
    def completed_seeds(self) -> List[int]:
        """Seeds that produced a result, in input order."""
        failed = {failure.seed for failure in self.failures}
        return [seed for seed in self.seeds if seed not in failed]

    def summary(self, metric: str) -> MetricSummary:
        return self.summaries[metric]

    def table_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {"scheduler": self.scheduler,
                                  "seeds": len(self.results)}
        for name, summary in self.summaries.items():
            row[name] = round(summary.mean, 4)
            row[f"{name}_ci"] = (f"[{summary.ci_low:.4f}, "
                                 f"{summary.ci_high:.4f}]")
        return row


_METRIC_EXTRACTORS: Dict[str, Callable[[ExperimentResult], float]] = {
    "deadline_miss_ratio":
        lambda r: r.metrics.deadline_miss_ratio,
    "bandwidth_utilization":
        lambda r: r.metrics.bandwidth_utilization,
    "dynamic_latency_ms":
        lambda r: r.metrics.dynamic_latency.mean_ms,
    "static_latency_ms":
        lambda r: r.metrics.static_latency.mean_ms,
    # A run that produced zero instances has no delivered fraction: it
    # reports NaN and is excluded from the summary as a skipped sample
    # (0.0 would silently drag the campaign mean down).
    "delivered_fraction":
        lambda r: (r.metrics.delivered_instances
                   / r.metrics.produced_instances)
        if r.metrics.produced_instances else float("nan"),
}

#: Public metric catalogue (the CLI's ``--metric`` choices).
CAMPAIGN_METRICS: Tuple[str, ...] = tuple(_METRIC_EXTRACTORS)


def _summarize(name: str, values: Sequence[float]) -> MetricSummary:
    """Summarize one metric, excluding NaN (skipped) samples."""
    finite = [value for value in values if not math.isnan(value)]
    if not finite:
        return MetricSummary.skipped(name)
    return MetricSummary.of(name, finite)


# ----------------------------------------------------------------------
# Seed execution (runs in the parent or in a spawn worker)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _SeedTask:
    """Everything one seed attempt needs; must pickle under spawn."""

    index: int
    seed: int
    attempt: int
    scheduler: str
    collect_obs: bool
    crash_attempts: int
    experiment_kwargs: Dict[str, object]


def _execute_seed(task: _SeedTask) \
        -> Tuple[ExperimentResult, Optional[ObsSnapshot]]:
    """Run one seed in an isolated observability context.

    ``crash_attempts`` is the fault-injection hook the robustness tests
    use: the first that-many attempts raise before simulating, which
    exercises the retry/failure machinery across real process
    boundaries without any cross-process shared state.
    """
    if task.attempt < task.crash_attempts:
        raise RuntimeError(
            f"injected crash: seed {task.seed} attempt {task.attempt}")
    if task.collect_obs:
        child = Observability()
        recorder = attach_event_capture(child)
        result = run_experiment(scheduler=task.scheduler, seed=task.seed,
                                obs=child, **task.experiment_kwargs)
        return result, ObsSnapshot.capture(child, events=recorder)
    result = run_experiment(scheduler=task.scheduler, seed=task.seed,
                            **task.experiment_kwargs)
    return result, None


def _campaign_worker(task: _SeedTask):
    """Pool entry point: exceptions travel home as formatted strings.

    Catching here keeps the pool healthy (an excepted seed never tears
    down its worker's queue) and keeps the parent's retry logic
    identical between serial and parallel execution.
    """
    try:
        result, snapshot = _execute_seed(task)
        return task.index, "ok", (result, snapshot)
    except Exception:
        return task.index, "error", traceback.format_exc()


def _run_serial(tasks: Sequence[_SeedTask], max_attempts: int,
                outcomes: Dict[int, tuple]) -> None:
    for task in tasks:
        attempt = task.attempt
        while True:
            try:
                result, snapshot = _execute_seed(
                    replace(task, attempt=attempt))
            except Exception:
                attempt += 1
                if attempt >= max_attempts:
                    outcomes[task.index] = (
                        "failed", traceback.format_exc(), attempt)
                    break
            else:
                outcomes[task.index] = ("ok", result, snapshot)
                break


def _run_parallel(tasks: Sequence[_SeedTask], workers: int,
                  max_attempts: int, outcomes: Dict[int, tuple]) -> None:
    """Fan tasks over a spawn pool; retries resubmit in waves.

    Spawn (rather than fork) keeps workers import-clean on every
    platform and guarantees no state -- RNG, registries, caches --
    leaks from the parent into a seed run.
    """
    context = multiprocessing.get_context("spawn")
    pending = list(tasks)
    with context.Pool(processes=min(workers, len(tasks))) as pool:
        while pending:
            handles = [(task, pool.apply_async(_campaign_worker, (task,)))
                       for task in pending]
            pending = []
            for task, handle in handles:
                index, status, payload = handle.get()
                if status == "ok":
                    result, snapshot = payload
                    outcomes[index] = ("ok", result, snapshot)
                elif task.attempt + 1 < max_attempts:
                    pending.append(replace(task, attempt=task.attempt + 1))
                else:
                    outcomes[index] = ("failed", payload, task.attempt + 1)


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------

#: ``run_experiment`` keyword arguments the pre-campaign gate can check
#: statically (the subset :func:`repro.verify.verifier.verify_experiment`
#: understands).
_VALIDATABLE_KWARGS = ("params", "periodic", "aperiodic", "ber",
                       "reliability_goal", "time_unit_ms")


def _validate_campaign(obs, **experiment_kwargs) -> None:
    """Statically verify a campaign configuration before simulating.

    Runs the simulation-free checks of :mod:`repro.verify` over the
    forwarded experiment configuration and raises with the full
    structured report when any ERROR-severity finding fires -- so a
    thousand-seed campaign fails in milliseconds instead of after the
    first full simulation (or worse, after all of them).
    """
    from repro.verify import ConfigurationError, verify_experiment

    if "params" not in experiment_kwargs:
        raise ValueError(
            "validate=True needs an explicit params= configuration")
    relevant = {key: experiment_kwargs[key]
                for key in _VALIDATABLE_KWARGS
                if key in experiment_kwargs}
    report = verify_experiment(**relevant)
    if obs.enabled:
        obs.inc("campaign.validations")
        if report.has_errors:
            obs.inc("campaign.validation_failures")
    if report.has_errors:
        raise ConfigurationError(report)


def run_campaign(
    scheduler: str,
    seeds: Sequence[int],
    metrics: Optional[Sequence[str]] = None,
    obs=NULL_OBS,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    retries: int = 1,
    validate: bool = False,
    store=None,
    store_workload: str = "",
    _crash_plan: Optional[Mapping[int, int]] = None,
    **experiment_kwargs,
) -> CampaignResult:
    """Run one configuration across many seeds.

    Args:
        scheduler: Registry name.
        seeds: Seeds to run (each is one independent sample: workload
            jitter and fault pattern both re-drawn).
        metrics: Metric names to summarize (default: all known).
        obs: Parent observability context.  Every seed runs in its own
            isolated child context; the per-seed snapshots merge into
            ``obs`` in seed order when the campaign ends (so aggregate
            totals match what a shared context would have accumulated,
            while per-seed attribution stays exact via
            :attr:`CampaignResult.obs_snapshots`).  ``campaign.runs``
            records the sample count.
        workers: Fan seeds over this many spawn-safe worker processes;
            ``None``/``0``/``1`` runs serially.  Results are merged in
            seed order either way, so the two modes produce identical
            summaries, counters, and deterministic exports.
        cache_dir: Content-addressed on-disk cache for completed seed
            runs; hits skip the simulation entirely.
        retries: Extra attempts for a seed whose run raises (default 1;
            a seed failing every attempt lands in
            :attr:`CampaignResult.failures`).
        store: A :class:`repro.results.ResultStore` (or a path to one)
            the finished campaign is ingested into -- campaign row,
            per-seed runs, trace digests under the campaign's engine
            mode, and per-seed obs snapshots, all in one transaction.
            The assigned content-addressed id lands on
            :attr:`CampaignResult.store_campaign_id`.
        store_workload: Workload label recorded with the campaign (the
            store's faceting key; free-form).
        validate: Run the simulation-free invariant checks of
            :mod:`repro.verify` over the configuration *before* any
            seed executes; ERROR findings raise
            :class:`repro.verify.ConfigurationError` (carrying the full
            report) instead of burning seeds on a broken setup.
        _crash_plan: Test-only fault injection: ``{seed: n}`` makes the
            first ``n`` attempts of that seed raise.
        **experiment_kwargs: Forwarded to
            :func:`repro.experiments.runner.run_experiment` (everything
            except ``scheduler`` and ``seed``).

    Returns:
        A :class:`CampaignResult` with per-metric summaries.

    Raises:
        ValueError: No seeds, or an unknown metric name.
        repro.verify.ConfigurationError: ``validate=True`` and the
            configuration fails a static invariant check.
        RuntimeError: Every seed failed.
    """
    if not seeds:
        raise ValueError("campaign needs at least one seed")
    if validate:
        _validate_campaign(obs, **experiment_kwargs)
    names = list(metrics or _METRIC_EXTRACTORS)
    unknown = set(names) - set(_METRIC_EXTRACTORS)
    if unknown:
        raise ValueError(f"unknown metrics: {sorted(unknown)}")

    collect_obs = obs.enabled
    cache = CampaignCache(cache_dir, obs=obs) if cache_dir else None
    crash_plan = dict(_crash_plan or {})

    outcomes: Dict[int, tuple] = {}
    cache_keys: Dict[int, str] = {}
    tasks: List[_SeedTask] = []
    for index, seed in enumerate(seeds):
        if cache is not None:
            key = cache.key_for(scheduler, seed, experiment_kwargs)
            cache_keys[index] = key
            entry = cache.load(key, need_obs=collect_obs)
            if entry is not None:
                outcomes[index] = ("cached", entry.result, entry.snapshot)
                continue
        tasks.append(_SeedTask(
            index=index, seed=seed, attempt=0, scheduler=scheduler,
            collect_obs=collect_obs,
            crash_attempts=crash_plan.get(seed, 0),
            experiment_kwargs=dict(experiment_kwargs),
        ))

    max_attempts = max(1, retries + 1)
    if tasks:
        if workers and workers > 1 and len(tasks) > 1:
            _run_parallel(tasks, workers, max_attempts, outcomes)
        else:
            _run_serial(tasks, max_attempts, outcomes)

    # Deterministic merge: walk the *input* seed order, never the
    # completion order.
    results: List[ExperimentResult] = []
    snapshots: List[ObsSnapshot] = []
    failures: List[CampaignFailure] = []
    cache_hits = simulations_run = 0
    for index, seed in enumerate(seeds):
        outcome = outcomes[index]
        kind = outcome[0]
        if kind == "failed":
            failures.append(CampaignFailure(
                seed=seed, attempts=outcome[2], error=outcome[1]))
            continue
        result, snapshot = outcome[1], outcome[2]
        if kind == "cached":
            cache_hits += 1
        else:
            simulations_run += 1
            if cache is not None:
                cache.store(cache_keys[index], result, snapshot)
        results.append(result)
        if snapshot is not None:
            snapshots.append(snapshot)
    if not results:
        detail = failures[0].error if failures else ""
        raise RuntimeError(
            f"campaign failed on every seed "
            f"{[failure.seed for failure in failures]}\n{detail}")

    if obs.enabled:
        for snapshot in snapshots:
            snapshot.apply_to(obs)
        obs.inc("campaign.runs", len(results))
        if cache_hits:
            obs.inc("campaign.cache_hits", cache_hits)
        if failures:
            obs.inc("campaign.seed_failures", len(failures))
        obs.emit("campaign.finished", scheduler=scheduler,
                 seeds=len(results))

    summaries = {
        name: _summarize(
            name, [_METRIC_EXTRACTORS[name](result) for result in results])
        for name in names
    }
    campaign = CampaignResult(
        scheduler=scheduler, seeds=list(seeds), results=results,
        summaries=summaries, failures=failures,
        obs_snapshots=snapshots if collect_obs else [],
        cache_hits=cache_hits, simulations_run=simulations_run,
    )
    if store is not None:
        from repro.results.store import ResultStore

        if isinstance(store, str):
            with ResultStore(store, obs=obs) as opened:
                campaign.store_campaign_id = opened.record_campaign(
                    campaign, experiment_kwargs, workload=store_workload)
        else:
            campaign.store_campaign_id = store.record_campaign(
                campaign, experiment_kwargs, workload=store_workload)
    return campaign


def compare_campaigns(
    a: CampaignResult, b: CampaignResult, metric: str,
) -> Dict[str, object]:
    """Compare two campaigns on one metric.

    Returns:
        A dict with both means, the difference, and whether the 95 %
        CIs separate (a conservative significance check).
    """
    summary_a = a.summary(metric)
    summary_b = b.summary(metric)
    return {
        "metric": metric,
        a.scheduler: summary_a.mean,
        b.scheduler: summary_b.mean,
        "difference": summary_a.mean - summary_b.mean,
        "separated": not summary_a.overlaps(summary_b),
    }
