"""Monte-Carlo experiment campaigns.

A single seeded run is reproducible but still one sample; the paper's
"extensive experiments" imply repetition.  A campaign runs the same
configuration across many seeds and reports mean / spread / confidence
intervals per metric, so claims like "CoEfficient's miss ratio is lower"
can be made with error bars instead of single draws.

Confidence intervals use the t-distribution via the normal approximation
for n >= 30 and Student-t critical values for small n (table-free
two-sided 95 %), keeping the module dependency-light.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentResult, run_experiment
from repro.obs import NULL_OBS

__all__ = ["MetricSummary", "CampaignResult", "run_campaign",
           "compare_campaigns"]

#: Two-sided 95 % Student-t critical values for small sample sizes
#: (df = n - 1); falls back to 1.96 beyond the table.
_T_95 = {1: 12.71, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
         7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
         25: 2.060, 29: 2.045}


def _t_critical(df: int) -> float:
    if df <= 0:
        return float("inf")
    if df in _T_95:
        return _T_95[df]
    for bound in sorted(_T_95):
        if df <= bound:
            return _T_95[bound]
    return 1.96


@dataclass(frozen=True)
class MetricSummary:
    """Mean, spread and 95 % CI of one metric over a campaign."""

    name: str
    samples: int
    mean: float
    stdev: float
    ci_low: float
    ci_high: float
    minimum: float
    maximum: float

    @staticmethod
    def of(name: str, values: Sequence[float]) -> "MetricSummary":
        if not values:
            raise ValueError(f"no samples for metric {name}")
        mean = statistics.fmean(values)
        stdev = statistics.stdev(values) if len(values) > 1 else 0.0
        half_width = (_t_critical(len(values) - 1) * stdev
                      / math.sqrt(len(values))) if len(values) > 1 else 0.0
        return MetricSummary(
            name=name, samples=len(values), mean=mean, stdev=stdev,
            ci_low=mean - half_width, ci_high=mean + half_width,
            minimum=min(values), maximum=max(values),
        )

    def overlaps(self, other: "MetricSummary") -> bool:
        """Whether the two 95 % CIs overlap (a quick separation check)."""
        return not (self.ci_high < other.ci_low
                    or other.ci_high < self.ci_low)


@dataclass
class CampaignResult:
    """All per-seed results plus per-metric summaries."""

    scheduler: str
    seeds: List[int]
    results: List[ExperimentResult]
    summaries: Dict[str, MetricSummary] = field(default_factory=dict)

    def summary(self, metric: str) -> MetricSummary:
        return self.summaries[metric]

    def table_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {"scheduler": self.scheduler,
                                  "seeds": len(self.seeds)}
        for name, summary in self.summaries.items():
            row[name] = round(summary.mean, 4)
            row[f"{name}_ci"] = (f"[{summary.ci_low:.4f}, "
                                 f"{summary.ci_high:.4f}]")
        return row


_METRIC_EXTRACTORS: Dict[str, Callable[[ExperimentResult], float]] = {
    "deadline_miss_ratio":
        lambda r: r.metrics.deadline_miss_ratio,
    "bandwidth_utilization":
        lambda r: r.metrics.bandwidth_utilization,
    "dynamic_latency_ms":
        lambda r: r.metrics.dynamic_latency.mean_ms,
    "static_latency_ms":
        lambda r: r.metrics.static_latency.mean_ms,
    "delivered_fraction":
        lambda r: (r.metrics.delivered_instances
                   / max(1, r.metrics.produced_instances)),
}


def run_campaign(
    scheduler: str,
    seeds: Sequence[int],
    metrics: Optional[Sequence[str]] = None,
    obs=NULL_OBS,
    **experiment_kwargs,
) -> CampaignResult:
    """Run one configuration across many seeds.

    Args:
        scheduler: Registry name.
        seeds: Seeds to run (each is one independent sample: workload
            jitter and fault pattern both re-drawn).
        metrics: Metric names to summarize (default: all known).
        obs: Observability context shared by every seeded run; counters
            accumulate across seeds and ``campaign.runs`` records the
            sample count.
        **experiment_kwargs: Forwarded to
            :func:`repro.experiments.runner.run_experiment` (everything
            except ``scheduler`` and ``seed``).

    Returns:
        A :class:`CampaignResult` with per-metric summaries.
    """
    if not seeds:
        raise ValueError("campaign needs at least one seed")
    names = list(metrics or _METRIC_EXTRACTORS)
    unknown = set(names) - set(_METRIC_EXTRACTORS)
    if unknown:
        raise ValueError(f"unknown metrics: {sorted(unknown)}")

    results = [
        run_experiment(scheduler=scheduler, seed=seed, obs=obs,
                       **experiment_kwargs)
        for seed in seeds
    ]
    if obs.enabled:
        obs.inc("campaign.runs", len(results))
        obs.emit("campaign.finished", scheduler=scheduler,
                 seeds=len(results))
    summaries = {
        name: MetricSummary.of(
            name, [_METRIC_EXTRACTORS[name](r) for r in results])
        for name in names
    }
    return CampaignResult(scheduler=scheduler, seeds=list(seeds),
                          results=results, summaries=summaries)


def compare_campaigns(
    a: CampaignResult, b: CampaignResult, metric: str,
) -> Dict[str, object]:
    """Compare two campaigns on one metric.

    Returns:
        A dict with both means, the difference, and whether the 95 %
        CIs separate (a conservative significance check).
    """
    summary_a = a.summary(metric)
    summary_b = b.summary(metric)
    return {
        "metric": metric,
        a.scheduler: summary_a.mean,
        b.scheduler: summary_b.mean,
        "difference": summary_a.mean - summary_b.mean,
        "separated": not summary_a.overlaps(summary_b),
    }
