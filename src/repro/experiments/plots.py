"""Terminal (ASCII) chart rendering for figure data.

The environment has no plotting stack, but a figure's *shape* -- who is
above whom, where curves cross -- reads fine in monospace.  Two
renderers cover the evaluation's figure types:

- :func:`ascii_bar_chart` -- grouped horizontal bars (Figures 3 and 5:
  one bar per scheduler per sweep point);
- :func:`ascii_line_chart` -- multi-series line/scatter grid (Figures
  1-2 and 4: metric vs sweep axis, one glyph per scheduler).

Both are pure string producers, used by the report generator and the
examples; tests assert structural properties (bars proportional to
values, every series plotted, axis labels present).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["ascii_bar_chart", "ascii_line_chart"]

#: Glyphs assigned to series, in order.
_GLYPHS = "ox+*#@%&"


def ascii_bar_chart(
    rows: Sequence[Mapping],
    category_key: str,
    value_key: str,
    series_key: str = "scheduler",
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Grouped horizontal bar chart.

    Args:
        rows: Flat row dicts (the figure generators' output).
        category_key: Field naming the group (e.g. ``"minislots"``).
        value_key: Numeric field to draw.
        series_key: Field distinguishing bars within a group.
        width: Maximum bar length in characters.
        title: Optional heading.

    Returns:
        The chart as a multi-line string.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    if not rows:
        return "(no data)\n"
    maximum = max(float(row[value_key]) for row in rows)
    scale = (width / maximum) if maximum > 0 else 0.0

    categories: List = []
    for row in rows:
        if row[category_key] not in categories:
            categories.append(row[category_key])
    series: List = []
    for row in rows:
        if row[series_key] not in series:
            series.append(row[series_key])
    label_width = max(len(str(s)) for s in series)

    lines: List[str] = []
    if title:
        lines.append(title)
    for category in categories:
        lines.append(f"{category_key}={category}")
        for name in series:
            value = next(
                (float(r[value_key]) for r in rows
                 if r[category_key] == category and r[series_key] == name),
                None,
            )
            if value is None:
                continue
            bar = "#" * max(0, int(round(value * scale)))
            lines.append(f"  {str(name):>{label_width}s} |{bar} {value:g}")
    lines.append(f"  (full bar = {maximum:g} {value_key})")
    return "\n".join(lines) + "\n"


def ascii_line_chart(
    rows: Sequence[Mapping],
    x_key: str,
    y_key: str,
    series_key: str = "scheduler",
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Multi-series scatter grid with axis annotations.

    Args:
        rows: Flat row dicts.
        x_key: Numeric field for the horizontal axis.
        y_key: Numeric field for the vertical axis.
        series_key: Field distinguishing the series.
        width: Plot area width in characters.
        height: Plot area height in lines.
        title: Optional heading.

    Returns:
        The chart as a multi-line string, including a glyph legend.
    """
    if width < 10 or height < 4:
        raise ValueError("need width >= 10 and height >= 4")
    if not rows:
        return "(no data)\n"

    xs = [float(row[x_key]) for row in rows]
    ys = [float(row[y_key]) for row in rows]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    series: List = []
    for row in rows:
        if row[series_key] not in series:
            series.append(row[series_key])
    glyph_of = {name: _GLYPHS[index % len(_GLYPHS)]
                for index, name in enumerate(series)}

    grid = [[" "] * width for __ in range(height)]
    for row in rows:
        x = float(row[x_key])
        y = float(row[y_key])
        column = int(round((x - x_low) / x_span * (width - 1)))
        line = int(round((y - y_low) / y_span * (height - 1)))
        grid[height - 1 - line][column] = glyph_of[row[series_key]]

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_high:>10.4g} ┐")
    for grid_line in grid:
        lines.append(" " * 11 + "│" + "".join(grid_line))
    lines.append(f"{y_low:>10.4g} ┘" + "─" * width)
    lines.append(" " * 12 + f"{x_low:<.4g}".ljust(width - 8)
                 + f"{x_high:>.4g}")
    lines.append(" " * 12 + f"x: {x_key}   y: {y_key}")
    legend = "   ".join(f"{glyph_of[name]} = {name}" for name in series)
    lines.append(" " * 12 + legend)
    return "\n".join(lines) + "\n"
