"""Content-addressed on-disk cache for campaign seed runs.

A campaign seed run is a pure function of ``(scheduler, seed,
experiment kwargs)``: the simulator is deterministic, so the same
configuration always reproduces the same :class:`ExperimentResult` and
the same deterministic observability snapshot.  That makes seed runs
safely cacheable -- repeated sweeps (iterating on a figure, re-running
a campaign with more seeds, CI re-runs) skip every seed they have
already simulated.

Layout: ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is the SHA-256 of
a canonical JSON fingerprint of the configuration (plus a format
version *and* the installed ``repro`` release, so entries invalidate
across releases instead of silently serving results produced under
older simulation semantics).  Entries are written atomically (temp
file + ``os.replace``) so a crashed or concurrent writer can never
leave a torn entry; an entry that fails to load or validate is treated
as a miss and overwritten -- but a *present-yet-unloadable* file is
surfaced (``cache.corrupt_entries`` counter plus a warning) so
operators can tell disk rot from ordinary cold misses.  A cached entry
stores the full result *and* the per-seed
:class:`~repro.obs.snapshot.ObsSnapshot` (when the producing run
collected one), so a warm-cache campaign merges byte-identical
deterministic counters.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.protocol.signal import SignalSet
from repro.obs import NULL_OBS, ObsLike, ObsSnapshot

__all__ = ["CACHE_VERSION", "CacheEntry", "CampaignCache",
           "cache_key", "config_key", "fingerprint", "run_key"]

#: Bump on any change to the cached payload shape or to simulation
#: semantics that should invalidate old entries wholesale.
CACHE_VERSION = 1


def fingerprint(value: object) -> object:
    """Canonical, JSON-able description of one configuration value.

    Dataclasses (``SegmentGeometry``, ``Signal`` ...) decompose into their
    fields, signal sets into their ordered signals, floats into their
    exact ``repr`` (so 0.1 and 0.1000000000000001 differ), and anything
    unrecognized falls back to ``repr`` -- a conservative choice that
    can only cause spurious misses, never false hits between genuinely
    different configurations.
    """
    if isinstance(value, SignalSet):
        return {"__signal_set__": value.name,
                "signals": [fingerprint(s) for s in value]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        described = {"__dataclass__": type(value).__name__,
                     "fields": fingerprint(dataclasses.asdict(value))}
        # Backend identity: two protocols' geometries must never
        # fingerprint identically, even if their field values (or even
        # class names, in a pathological backend) coincide.
        protocol = getattr(value, "protocol", None)
        if isinstance(protocol, str):
            described["__protocol__"] = protocol
        return described
    if isinstance(value, Mapping):
        return {str(key): fingerprint(val)
                for key, val in sorted(value.items(),
                                       key=lambda item: str(item[0]))}
    if isinstance(value, (list, tuple)):
        return [fingerprint(item) for item in value]
    if isinstance(value, float):
        return {"__float__": repr(value)}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return {"__repr__": repr(value)}


def _package_version() -> str:
    """The installed ``repro`` release (lazy: avoids an import cycle)."""
    from repro import __version__

    return __version__


def cache_key(scheduler: str, seed: int,
              experiment_kwargs: Mapping[str, object]) -> str:
    """SHA-256 content key of one seed run's full configuration.

    The key covers the package release alongside ``CACHE_VERSION``:
    simulation semantics may change between releases without anyone
    remembering to bump the cache format, and a stale hit would
    silently mix results from two different simulators.  It also names
    the *protocol backend* explicitly (read off the ``params`` value),
    so runs of different backends can never collide even if their
    remaining configuration is identical.
    """
    payload = {
        "version": CACHE_VERSION,
        "repro_version": _package_version(),
        "protocol": _protocol_of(experiment_kwargs),
        "scheduler": scheduler,
        "seed": seed,
        "kwargs": fingerprint(experiment_kwargs),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _protocol_of(experiment_kwargs: Mapping[str, object]) -> Optional[str]:
    """Backend identity of a run's geometry (``None`` when paramless)."""
    protocol = getattr(experiment_kwargs.get("params"), "protocol", None)
    return protocol if isinstance(protocol, str) else None


def _strip_engine_mode(experiment_kwargs: Mapping[str, object],
                       ) -> Mapping[str, object]:
    return {key: value for key, value in experiment_kwargs.items()
            if key != "engine_mode"}


def run_key(scheduler: str, seed: int,
            experiment_kwargs: Mapping[str, object]) -> str:
    """Engine-independent content key of one run.

    Same fingerprint as :func:`cache_key` with ``engine_mode`` stripped
    from the kwargs first: the three engines are trace-equivalent by
    contract, so the same configuration simulated under any of them is
    the *same run*.  The result store keys runs this way, which is what
    lets it line digests from different engines up against each other.
    """
    return cache_key(scheduler, seed, _strip_engine_mode(experiment_kwargs))


def config_key(scheduler: str,
               experiment_kwargs: Mapping[str, object]) -> str:
    """Seed- and engine-independent key of one campaign configuration.

    Two campaigns over the same workload/scheduler/parameters share this
    key even when run with different seed lists, which is the facet the
    result store groups campaigns by.
    """
    payload = {
        "version": CACHE_VERSION,
        "repro_version": _package_version(),
        "protocol": _protocol_of(experiment_kwargs),
        "scheduler": scheduler,
        "kwargs": fingerprint(_strip_engine_mode(experiment_kwargs)),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One cached seed run: the result plus its obs snapshot (if any)."""

    result: object
    snapshot: Optional[ObsSnapshot]


class CampaignCache:
    """Filesystem-backed store of completed campaign seed runs.

    Args:
        root: Cache directory (created if missing).
        obs: Observability context; corrupt-entry detections increment
            ``cache.corrupt_entries`` on it.
    """

    def __init__(self, root: str, obs: ObsLike = NULL_OBS) -> None:
        self.root = root
        self._obs = obs
        os.makedirs(root, exist_ok=True)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    def key_for(self, scheduler: str, seed: int,
                experiment_kwargs: Mapping[str, object]) -> str:
        return cache_key(scheduler, seed, experiment_kwargs)

    def load(self, key: str, need_obs: bool = False) -> Optional[CacheEntry]:
        """Fetch an entry, or ``None`` on miss.

        ``need_obs=True`` demands a stored observability snapshot: an
        entry produced by an unobserved run cannot serve an observed
        campaign (its counters would silently vanish from the
        aggregate), so it reads as a miss and gets re-simulated.

        A file that exists but cannot be unpickled is still a miss --
        the seed is simply re-simulated and the entry overwritten --
        but the event is surfaced (``cache.corrupt_entries`` counter,
        ``RuntimeWarning``): torn writes are prevented by the atomic
        store, so an unloadable entry means disk rot or an external
        writer, which operators should know about.  Entries from other
        :data:`CACHE_VERSION` s or other code versions load fine and
        are *valid* misses, not corruption.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None  # an ordinary cold miss
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError) as error:
            self._note_corrupt(path, repr(error))
            return None
        if not isinstance(payload, dict) or "result" not in payload:
            self._note_corrupt(
                path, f"unexpected payload {type(payload).__name__}")
            return None
        if payload.get("version") != CACHE_VERSION:
            return None  # another format version: a valid miss
        snapshot = payload.get("snapshot")
        if need_obs and snapshot is None:
            return None
        return CacheEntry(result=payload["result"], snapshot=snapshot)

    def _note_corrupt(self, path: str, detail: str) -> None:
        """Surface one unloadable-entry event (counter + warning)."""
        if self._obs.enabled:
            self._obs.inc("cache.corrupt_entries")
        warnings.warn(
            f"campaign cache entry {path} is unreadable and will be "
            f"re-simulated ({detail}); check the cache volume for "
            f"corruption", RuntimeWarning, stacklevel=3)

    def store(self, key: str, result: object,
              snapshot: Optional[ObsSnapshot]) -> None:
        """Atomically persist one seed run under its content key."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {"version": CACHE_VERSION, "result": result,
                   "snapshot": snapshot}
        fd, temp_path = tempfile.mkstemp(dir=os.path.dirname(path),
                                         suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
