"""Content-addressed on-disk cache for campaign seed runs.

A campaign seed run is a pure function of ``(scheduler, seed,
experiment kwargs)``: the simulator is deterministic, so the same
configuration always reproduces the same :class:`ExperimentResult` and
the same deterministic observability snapshot.  That makes seed runs
safely cacheable -- repeated sweeps (iterating on a figure, re-running
a campaign with more seeds, CI re-runs) skip every seed they have
already simulated.

Layout: ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is the SHA-256 of
a canonical JSON fingerprint of the configuration (plus a format
version).  Entries are written atomically (temp file + ``os.replace``)
so a crashed or concurrent writer can never leave a torn entry; any
entry that fails to load or validate is treated as a miss and silently
overwritten.  A cached entry stores the full result *and* the per-seed
:class:`~repro.obs.snapshot.ObsSnapshot` (when the producing run
collected one), so a warm-cache campaign merges byte-identical
deterministic counters.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.flexray.signal import SignalSet
from repro.obs import ObsSnapshot

__all__ = ["CACHE_VERSION", "CacheEntry", "CampaignCache",
           "cache_key", "fingerprint"]

#: Bump on any change to the cached payload shape or to simulation
#: semantics that should invalidate old entries wholesale.
CACHE_VERSION = 1


def fingerprint(value: object) -> object:
    """Canonical, JSON-able description of one configuration value.

    Dataclasses (``FlexRayParams``, ``Signal`` ...) decompose into their
    fields, signal sets into their ordered signals, floats into their
    exact ``repr`` (so 0.1 and 0.1000000000000001 differ), and anything
    unrecognized falls back to ``repr`` -- a conservative choice that
    can only cause spurious misses, never false hits between genuinely
    different configurations.
    """
    if isinstance(value, SignalSet):
        return {"__signal_set__": value.name,
                "signals": [fingerprint(s) for s in value]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__,
                "fields": fingerprint(dataclasses.asdict(value))}
    if isinstance(value, Mapping):
        return {str(key): fingerprint(val)
                for key, val in sorted(value.items(),
                                       key=lambda item: str(item[0]))}
    if isinstance(value, (list, tuple)):
        return [fingerprint(item) for item in value]
    if isinstance(value, float):
        return {"__float__": repr(value)}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return {"__repr__": repr(value)}


def cache_key(scheduler: str, seed: int,
              experiment_kwargs: Mapping[str, object]) -> str:
    """SHA-256 content key of one seed run's full configuration."""
    payload = {
        "version": CACHE_VERSION,
        "scheduler": scheduler,
        "seed": seed,
        "kwargs": fingerprint(experiment_kwargs),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One cached seed run: the result plus its obs snapshot (if any)."""

    result: object
    snapshot: Optional[ObsSnapshot]


class CampaignCache:
    """Filesystem-backed store of completed campaign seed runs."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    def key_for(self, scheduler: str, seed: int,
                experiment_kwargs: Mapping[str, object]) -> str:
        return cache_key(scheduler, seed, experiment_kwargs)

    def load(self, key: str, need_obs: bool = False) -> Optional[CacheEntry]:
        """Fetch an entry, or ``None`` on miss.

        ``need_obs=True`` demands a stored observability snapshot: an
        entry produced by an unobserved run cannot serve an observed
        campaign (its counters would silently vanish from the
        aggregate), so it reads as a miss and gets re-simulated.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Missing, torn, or written by an incompatible code version:
            # all of them are just misses.
            return None
        if (not isinstance(payload, dict)
                or payload.get("version") != CACHE_VERSION
                or "result" not in payload):
            return None
        snapshot = payload.get("snapshot")
        if need_obs and snapshot is None:
            return None
        return CacheEntry(result=payload["result"], snapshot=snapshot)

    def store(self, key: str, result: object,
              snapshot: Optional[ObsSnapshot]) -> None:
        """Atomically persist one seed run under its content key."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {"version": CACHE_VERSION, "result": result,
                   "snapshot": snapshot}
        fd, temp_path = tempfile.mkstemp(dir=os.path.dirname(path),
                                         suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
