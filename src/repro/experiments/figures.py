"""Regenerates the data behind every table and figure of Section IV.

Each public function returns a list of flat row dicts -- the same rows
the paper plots -- so the benchmark harness can both print them and
assert on their shape (who wins, by roughly what factor).

Configuration notes (the full rationale is in DESIGN.md / EXPERIMENTS.md):

- **BER-to-goal pairing.** The paper states its two BER settings
  "correspond to different reliability goals" and observes *more*
  retransmission under BER = 1e-9.  We therefore pair each BER with a
  reliability goal: (1e-7, 1 - 1e-4) and (1e-9, 1 - 1e-12).  The
  stricter goal of the second pair is what drives its larger
  retransmission budgets, reproducing the paper's "higher reliability ->
  more retransmitted segments -> larger delays" trend.

- **Case-study parameters.** The published gdStaticSlot (40 MT) cannot
  carry the published BBW/ACC message sizes at 10 Mbit/s, so the
  case-study clusters derive their slot length/count from the workload
  (:func:`repro.packing.frame_packing.derive_params_for`); the synthetic
  experiments run the paper's exact published configuration.

- **Open-loop redundancy.** Retransmissions are planned copies (FlexRay
  has no acknowledgements); see :mod:`repro.core.queueing`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import run_experiment
from repro.protocol.backend import get_backend
from repro.protocol.geometry import SegmentGeometry
from repro.obs import NULL_OBS
from repro.protocol.signal import SignalSet
from repro.workloads.acc import acc_signals
from repro.workloads.bbw import bbw_signals
from repro.workloads.sae import sae_aperiodic_signals
from repro.workloads.synthetic import synthetic_signals

__all__ = [
    "BER_RELIABILITY_PAIRING",
    "case_study_params",
    "dynamic_study_periodic",
    "dynamic_study_aperiodic",
    "fig1_2_running_time",
    "fig3_bandwidth_utilization",
    "fig4_transmission_latency",
    "extension_utilization_sweep",
    "fig5_deadline_miss_ratio",
    "fig5_miss_ratio_campaign",
    "table2_bbw_rows",
    "table3_acc_rows",
]

#: BER -> reliability goal rho (see module docstring).
BER_RELIABILITY_PAIRING: Dict[float, float] = {
    1e-7: 1.0 - 1e-4,
    1e-9: 1.0 - 1e-12,
}

#: Schedulers compared in every figure, CoEfficient first.
_COMPARED = ("coefficient", "fspec")


def _goal_for(ber: float) -> float:
    """Reliability goal paired with a BER setting."""
    if ber in BER_RELIABILITY_PAIRING:
        return BER_RELIABILITY_PAIRING[ber]
    return 1.0 - 1e-6


# ----------------------------------------------------------------------
# Workload and parameter construction
# ----------------------------------------------------------------------

def dynamic_study_periodic(count: int = 20, seed: int = 7) -> SignalSet:
    """Synthetic periodic set sized for the paper's dynamic-study preset.

    Sizes fit the preset's 30-MT static slot (216-bit payload capacity);
    deadlines are kept at >= 5 ms so the miss-ratio figures measure
    scheduling quality rather than structurally impossible deadlines.
    """
    return synthetic_signals(
        count, seed=seed, max_size_bits=216,
        deadlines_ms=(5.0, 10.0, 15.0, 20.0),
    )


def dynamic_study_aperiodic(count: int = 30, seed: int = 11) -> SignalSet:
    """SAE-style aperiodic set creating real dynamic-segment contention.

    The paper's 30 messages with a 50 ms deadline; the paper does not
    state sizes or the event rate its hosts' interrupt routines actually
    produced, so those are chosen to create the contention regime its
    results exhibit (FSPEC missing ~20 % of deadlines): sizes of
    600-1800 bits (every message still fits the 25-minislot dynamic
    segment -- no structurally impossible frames) at a 20 ms minimum
    inter-arrival.  A single channel's dynamic segment saturates at the
    small-minislot end once FSPEC's blanket retransmission copies are
    added, while CoEfficient's dual-channel unified pool plus static
    slack absorbs the same load.
    """
    return sae_aperiodic_signals(
        count=count, seed=seed,
        interarrival_ms=20.0, deadline_ms=50.0,
        min_size_bits=600, max_size_bits=1800,
    )


def paper_dynamic_preset(minislots: int = 100) -> SegmentGeometry:
    """The paper's dynamic-study preset (FlexRay backend)."""
    return get_backend("flexray").dynamic_preset(minislots)


def paper_static_preset(static_slots: int = 80) -> SegmentGeometry:
    """The paper's static-study preset (FlexRay backend)."""
    return get_backend("flexray").static_preset(static_slots)


def case_study_params(workload: str, minislots: int = 50) -> SegmentGeometry:
    """Derived cluster parameters for a case-study workload.

    Delegates to the FlexRay backend's derivation (slot headroom 1.1
    for BBW, 1.6 for ACC; see
    :meth:`repro.protocol.backend.ProtocolBackend.case_study_params`).

    Args:
        workload: ``"bbw"`` or ``"acc"``.
        minislots: Dynamic-segment length.
    """
    return get_backend("flexray").case_study_params(workload, minislots)


def _case_study_signals(workload: str) -> SignalSet:
    if workload == "bbw":
        return bbw_signals()
    if workload == "acc":
        return acc_signals()
    raise ValueError(f"unknown case study {workload!r}")


# ----------------------------------------------------------------------
# Tables II and III
# ----------------------------------------------------------------------

def table2_bbw_rows() -> List[Dict[str, float]]:
    """Paper Table II: the BBW message parameters, regenerated."""
    return [
        {
            "message": index + 1,
            "offset_ms": signal.offset_ms,
            "period_ms": signal.period_ms,
            "deadline_ms": signal.deadline_ms,
            "size_bits": signal.size_bits,
        }
        for index, signal in enumerate(bbw_signals())
    ]


def table3_acc_rows() -> List[Dict[str, float]]:
    """Paper Table III: the ACC message parameters, regenerated."""
    return [
        {
            "message": index + 1,
            "offset_ms": signal.offset_ms,
            "period_ms": signal.period_ms,
            "deadline_ms": signal.deadline_ms,
            "size_bits": signal.size_bits,
        }
        for index, signal in enumerate(acc_signals())
    ]


# ----------------------------------------------------------------------
# Figures 1-2: running time
# ----------------------------------------------------------------------

def fig1_2_running_time(
    ber: float = 1e-7,
    instance_limits: Sequence[int] = (10, 20, 40),
    synthetic_counts: Sequence[int] = (20, 40),
    static_slot_options: Sequence[int] = (80, 120),
    seed: int = 42,
    obs=NULL_OBS,
    engine_mode: str = "stepper",
) -> List[Dict[str, float]]:
    """Figure 1 (BER = 1e-7) / Figure 2 (BER = 1e-9): running time.

    Completion-mode runs: every message releases a fixed number of
    instances and the row reports the simulated time at which the last
    deliverable instance landed.

    Args:
        ber: Bit error rate (choose 1e-7 for Fig. 1, 1e-9 for Fig. 2).
        instance_limits: Per-message instance counts for the case
            studies ("number of messages" axis, part (a)).
        synthetic_counts: Message-set sizes for the synthetic sweep
            (part (b)).
        static_slot_options: gNumberOfStaticSlots settings (80 / 120,
            which also shift the aperiodic frame IDs as in the paper).
        seed: Experiment seed.
        engine_mode: Simulation engine mode (``"stepper"``,
            ``"interpreter"`` or ``"vectorized"``); the figures are
            identical in every mode, only wall-clock time differs
            (``BENCH_engine.json``).
    """
    rho = _goal_for(ber)
    rows: List[Dict[str, float]] = []

    def _policy_kwargs(scheduler: str) -> Dict[str, object]:
        # FSPEC's blanket best-effort redundancy scales with the target
        # reliability regime the same way CoEfficient's budgets do --
        # except uniformly, for every message.
        if scheduler == "fspec":
            return {"retransmission_copies": 1 if ber >= 1e-8 else 2}
        return {}

    # Part (a): BBW and ACC case studies.
    for workload in ("bbw", "acc"):
        params = case_study_params(workload, minislots=50)
        for limit in instance_limits:
            for scheduler in _COMPARED:
                result = run_experiment(
                    params=params,
                    scheduler=scheduler,
                    periodic=_case_study_signals(workload),
                    aperiodic=sae_aperiodic_signals(),
                    ber=ber,
                    seed=seed,
                    duration_ms=None,
                    instance_limit=limit,
                    reliability_goal=rho,
                    drop_expired_dynamic=False,
                    obs=obs,
                    engine_mode=engine_mode,
                    **_policy_kwargs(scheduler),
                )
                rows.append({
                    "figure": "1a/2a",
                    "workload": workload,
                    "messages": limit * (20 + 30),
                    "scheduler": scheduler,
                    "ber": ber,
                    "running_time_ms": result.completion_ms,
                    "last_delivery_ms": result.metrics.last_delivery_ms,
                    "delivered": result.metrics.delivered_instances,
                    "produced": result.metrics.produced_instances,
                })

    # Part (b): synthetic test cases at 80 and 120 static slots.
    for static_slots in static_slot_options:
        params = paper_static_preset(static_slots)
        for count in synthetic_counts:
            periodic = synthetic_signals(count, seed=7)
            for scheduler in _COMPARED:
                result = run_experiment(
                    params=params,
                    scheduler=scheduler,
                    periodic=periodic,
                    aperiodic=sae_aperiodic_signals(),
                    ber=ber,
                    seed=seed,
                    duration_ms=None,
                    instance_limit=20,
                    reliability_goal=rho,
                    drop_expired_dynamic=False,
                    obs=obs,
                    engine_mode=engine_mode,
                    **_policy_kwargs(scheduler),
                )
                rows.append({
                    "figure": "1b/2b",
                    "workload": f"synthetic-{count}",
                    "static_slots": static_slots,
                    "messages": 20 * (count + 30),
                    "scheduler": scheduler,
                    "ber": ber,
                    "running_time_ms": result.completion_ms,
                    "last_delivery_ms": result.metrics.last_delivery_ms,
                    "delivered": result.metrics.delivered_instances,
                    "produced": result.metrics.produced_instances,
                })
    return rows


# ----------------------------------------------------------------------
# Figure 3: bandwidth utilization
# ----------------------------------------------------------------------

def fig3_bandwidth_utilization(
    minislot_options: Sequence[int] = (25, 50, 75, 100),
    ber: float = 1e-7,
    duration_ms: float = 500.0,
    seed: int = 42,
    obs=NULL_OBS,
) -> List[Dict[str, float]]:
    """Figure 3: bandwidth utilization vs gNumberOfMinislots.

    Paper result: CoEfficient improves utilization over FSPEC by
    56.2 / 55.3 / 53.8 / 52.2 % at 25 / 50 / 75 / 100 minislots.
    """
    rho = _goal_for(ber)
    rows: List[Dict[str, float]] = []
    for minislots in minislot_options:
        params = paper_dynamic_preset(minislots)
        for scheduler in _COMPARED:
            result = run_experiment(
                params=params,
                scheduler=scheduler,
                periodic=dynamic_study_periodic(),
                aperiodic=dynamic_study_aperiodic(),
                ber=ber,
                seed=seed,
                duration_ms=duration_ms,
                reliability_goal=rho,
                obs=obs,
            )
            rows.append({
                "figure": "3",
                "minislots": minislots,
                "scheduler": scheduler,
                "ber": ber,
                "bandwidth_utilization": result.metrics.bandwidth_utilization,
                "gross_utilization": result.metrics.gross_utilization,
                "efficiency": result.metrics.efficiency,
            })
    return rows


# ----------------------------------------------------------------------
# Figure 4: transmission latency
# ----------------------------------------------------------------------

def fig4_transmission_latency(
    minislot_options: Sequence[int] = (50, 100),
    bers: Sequence[float] = (1e-7, 1e-9),
    duration_ms: float = 500.0,
    seed: int = 42,
    obs=NULL_OBS,
) -> List[Dict[str, float]]:
    """Figure 4: average static/dynamic latency, synthetic + case studies.

    Paper results (shapes to match): CoEfficient's static latency is
    roughly 0.55-0.75x FSPEC's, its dynamic latency 0.3-0.7x, and both
    grow when the reliability goal tightens (the BER = 1e-9 pairing).
    """
    rows: List[Dict[str, float]] = []
    for ber in bers:
        rho = _goal_for(ber)
        # (a)/(c): synthetic workload on the paper's dynamic preset.
        for minislots in minislot_options:
            params = paper_dynamic_preset(minislots)
            for scheduler in _COMPARED:
                result = run_experiment(
                    params=params,
                    scheduler=scheduler,
                    periodic=dynamic_study_periodic(),
                    aperiodic=dynamic_study_aperiodic(),
                    ber=ber,
                    seed=seed,
                    duration_ms=duration_ms,
                    reliability_goal=rho,
                    obs=obs,
                )
                rows.append({
                    "figure": "4ac",
                    "workload": "synthetic",
                    "minislots": minislots,
                    "scheduler": scheduler,
                    "ber": ber,
                    "static_latency_ms": result.metrics.static_latency.mean_ms,
                    "dynamic_latency_ms": result.metrics.dynamic_latency.mean_ms,
                })
        # (b)/(d): BBW and ACC case studies.
        for workload in ("bbw", "acc"):
            params = case_study_params(workload, minislots=50)
            for scheduler in _COMPARED:
                result = run_experiment(
                    params=params,
                    scheduler=scheduler,
                    periodic=_case_study_signals(workload),
                    aperiodic=sae_aperiodic_signals(),
                    ber=ber,
                    seed=seed,
                    duration_ms=duration_ms,
                    reliability_goal=rho,
                    obs=obs,
                )
                rows.append({
                    "figure": "4bd",
                    "workload": workload,
                    "minislots": 50,
                    "scheduler": scheduler,
                    "ber": ber,
                    "static_latency_ms": result.metrics.static_latency.mean_ms,
                    "dynamic_latency_ms": result.metrics.dynamic_latency.mean_ms,
                })
    return rows


# ----------------------------------------------------------------------
# Figure 5: deadline miss ratio
# ----------------------------------------------------------------------

def fig5_deadline_miss_ratio(
    minislot_options: Sequence[int] = (25, 50, 75, 100),
    bers: Sequence[float] = (1e-7, 1e-9),
    duration_ms: float = 500.0,
    seed: int = 42,
    obs=NULL_OBS,
) -> List[Dict[str, float]]:
    """Figure 5: deadline miss ratio vs gNumberOfMinislots.

    Paper result: CoEfficient averages 4.8 % (BER-7) / 3.2 % (BER-9)
    missed messages; FSPEC 21.3 % / 19.5 %.
    """
    rows: List[Dict[str, float]] = []
    for ber in bers:
        rho = _goal_for(ber)
        for minislots in minislot_options:
            params = paper_dynamic_preset(minislots)
            for scheduler in _COMPARED:
                result = run_experiment(
                    params=params,
                    scheduler=scheduler,
                    periodic=dynamic_study_periodic(),
                    aperiodic=dynamic_study_aperiodic(),
                    ber=ber,
                    seed=seed,
                    duration_ms=duration_ms,
                    reliability_goal=rho,
                    obs=obs,
                )
                rows.append({
                    "figure": "5",
                    "minislots": minislots,
                    "scheduler": scheduler,
                    "ber": ber,
                    "deadline_miss_ratio": result.metrics.deadline_miss_ratio,
                    "produced": result.metrics.produced_instances,
                })
    return rows


# ----------------------------------------------------------------------
# Figure 5 with error bars: a seed campaign per sweep point
# ----------------------------------------------------------------------

def fig5_miss_ratio_campaign(
    seeds: Sequence[int] = (11, 23, 37, 41),
    minislot_options: Sequence[int] = (25, 50, 75, 100),
    ber: float = 1e-7,
    duration_ms: float = 500.0,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    obs=NULL_OBS,
) -> List[Dict[str, float]]:
    """Figure 5 as a Monte-Carlo campaign: mean miss ratio with 95 % CI.

    The single-seed :func:`fig5_deadline_miss_ratio` reproduces the
    paper's published draws; this variant runs every sweep point across
    ``seeds`` (optionally fanned over ``workers`` processes and backed
    by the on-disk campaign cache) so the CoEfficient-vs-FSPEC gap
    carries error bars.
    """
    from repro.experiments.campaign import run_campaign

    rho = _goal_for(ber)
    rows: List[Dict[str, float]] = []
    for minislots in minislot_options:
        params = paper_dynamic_preset(minislots)
        for scheduler in _COMPARED:
            campaign = run_campaign(
                scheduler, seeds=seeds,
                metrics=("deadline_miss_ratio",),
                params=params,
                periodic=dynamic_study_periodic(),
                aperiodic=dynamic_study_aperiodic(),
                ber=ber,
                duration_ms=duration_ms,
                reliability_goal=rho,
                workers=workers,
                cache_dir=cache_dir,
                obs=obs,
            )
            summary = campaign.summary("deadline_miss_ratio")
            rows.append({
                "figure": "5-campaign",
                "minislots": minislots,
                "scheduler": scheduler,
                "ber": ber,
                "seeds": summary.samples,
                "deadline_miss_ratio": summary.mean,
                "ci_low": summary.ci_low,
                "ci_high": summary.ci_high,
            })
    return rows


# ----------------------------------------------------------------------
# Extension: utilization sweep (not a paper figure)
# ----------------------------------------------------------------------

def extension_utilization_sweep(
    utilizations: Sequence[float] = (0.05, 0.10, 0.15, 0.20),
    message_count: int = 25,
    minislots: int = 50,
    ber: float = 1e-7,
    duration_ms: float = 500.0,
    seed: int = 42,
) -> List[Dict[str, float]]:
    """Miss ratio vs controlled aperiodic bus utilization (extension).

    Uses UUniFast-generated event-triggered sets so total load is an
    *input*: each sweep point offers every scheduler the same exact
    utilization, giving the clean schedulability-style curve the paper's
    minislot sweep only implies.  Periodic load is held fixed.

    Args:
        utilizations: Aperiodic bus-utilization targets (fraction of one
            channel).
        message_count: Aperiodic messages per point.
        minislots: Dynamic-segment length.
        ber: Bit error rate (paired reliability goal applies).
        duration_ms: Horizon per run.
        seed: Experiment seed.
    """
    from repro.workloads.uunifast import uunifast_signals

    rho = _goal_for(ber)
    params = paper_dynamic_preset(minislots)
    periodic = dynamic_study_periodic()
    rows: List[Dict[str, float]] = []
    for utilization in utilizations:
        aperiodic = uunifast_signals(
            message_count, utilization, seed=seed + 1,
            periods_ms=(10.0, 20.0, 40.0), aperiodic=True,
            min_size_bits=64, max_size_bits=1800,
        )
        achieved = aperiodic.total_utilization() / 10_000.0
        for scheduler in _COMPARED:
            result = run_experiment(
                params=params,
                scheduler=scheduler,
                periodic=periodic,
                aperiodic=aperiodic,
                ber=ber,
                seed=seed,
                duration_ms=duration_ms,
                reliability_goal=rho,
            )
            rows.append({
                "figure": "ext-usweep",
                "target_utilization": utilization,
                "achieved_utilization": achieved,
                "scheduler": scheduler,
                "deadline_miss_ratio": result.metrics.deadline_miss_ratio,
                "dynamic_latency_ms":
                    result.metrics.dynamic_latency.mean_ms,
            })
    return rows
