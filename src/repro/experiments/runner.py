"""One-call experiment runner.

Wires a workload, a scheduler policy, a fault environment and a cluster
configuration together, runs the simulation, and reduces the trace to
the paper's metric set.  Both the benchmark harness and the examples go
through this module, so every number reported anywhere is produced by
the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.baselines.dynamic_priority import DynamicPriorityPolicy
from repro.baselines.fspec import FspecPolicy
from repro.baselines.static_only import StaticOnlyPolicy
from repro.core.coefficient import CoEfficientPolicy
from repro.faults.ber import BitErrorRateModel
from repro.faults.injector import TransientFaultInjector
from repro.protocol.cluster import Cluster
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.policy import SchedulerPolicy
from repro.protocol.signal import SignalSet
from repro.obs import NULL_OBS
from repro.packing.frame_packing import PackingResult, pack_signals
from repro.sim.engine import EngineMode
from repro.sim.metrics import SimulationMetrics
from repro.sim.rng import RngStream

__all__ = ["SCHEDULERS", "ExperimentResult", "make_policy", "run_experiment"]

#: Scheduler registry: name -> constructor signature handled by
#: :func:`make_policy`.
SCHEDULERS = ("coefficient", "fspec", "static-only", "dynamic-priority")

#: Default reliability goal: 99.999 % of instances delivered per time
#: unit -- between SIL2 and SIL3 for a 1-second unit, the regime the
#: paper's BER settings exercise.
DEFAULT_RHO = 0.99999
DEFAULT_TIME_UNIT_MS = 1000.0


@dataclass
class ExperimentResult:
    """Everything one experiment run produced.

    Attributes:
        scheduler: Scheduler name.
        metrics: The paper's metric set.
        counters: Policy-internal counters (steals, retransmissions...).
        cycles_run: Communication cycles executed.
        params: The cluster configuration used.
        cluster: The cluster itself (for deep inspection in tests).
        engine_mode: Which engine produced the run (``"stepper"``,
            ``"interpreter"`` or ``"vectorized"``); the result store
            keys trace digests by it.
    """

    scheduler: str
    metrics: SimulationMetrics
    counters: Dict[str, int]
    cycles_run: int
    params: SegmentGeometry
    cluster: Cluster
    engine_mode: str = "stepper"

    @property
    def completion_ms(self) -> float:
        """Simulated time the run actually spanned (cycles x cycle length).

        In completion mode this is the paper's "running time": the
        workload -- including every transmission the reliability scheme
        planned -- finished within this many simulated milliseconds.
        """
        return self.cycles_run * self.params.cycle_ms

    def row(self) -> Dict[str, float]:
        """Flat summary row for table printing."""
        row = {"scheduler": self.scheduler}
        row.update(self.metrics.summary_row())
        return row


def make_policy(
    scheduler: str,
    packing: PackingResult,
    ber_model: BitErrorRateModel,
    reliability_goal: float = DEFAULT_RHO,
    time_unit_ms: float = DEFAULT_TIME_UNIT_MS,
    **policy_kwargs,
) -> SchedulerPolicy:
    """Construct a scheduler policy by registry name.

    Args:
        scheduler: One of :data:`SCHEDULERS`.
        packing: The packed workload.
        ber_model: Fault environment (used by CoEfficient's planning).
        reliability_goal: rho for CoEfficient.
        time_unit_ms: Theorem-1 time unit for CoEfficient.
        **policy_kwargs: Forwarded to the policy constructor (e.g.
            ``selective=False`` for the ablation).
    """
    if scheduler == "coefficient":
        return CoEfficientPolicy(
            packing, ber_model,
            reliability_goal=reliability_goal,
            time_unit_ms=time_unit_ms,
            **policy_kwargs,
        )
    if scheduler == "fspec":
        return FspecPolicy(packing, **policy_kwargs)
    if scheduler == "static-only":
        return StaticOnlyPolicy(packing, **policy_kwargs)
    if scheduler == "dynamic-priority":
        return DynamicPriorityPolicy(packing, **policy_kwargs)
    raise ValueError(
        f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
    )


def run_experiment(
    params: SegmentGeometry,
    scheduler: str,
    periodic: Optional[SignalSet] = None,
    aperiodic: Optional[SignalSet] = None,
    ber: float = 1e-7,
    seed: int = 42,
    duration_ms: Optional[float] = 200.0,
    instance_limit: Optional[int] = None,
    reliability_goal: float = DEFAULT_RHO,
    time_unit_ms: float = DEFAULT_TIME_UNIT_MS,
    node_count: int = 10,
    max_cycles: int = 200_000,
    obs=NULL_OBS,
    engine_mode: Union[str, EngineMode] = EngineMode.STEPPER,
    **policy_kwargs,
) -> ExperimentResult:
    """Run one workload under one scheduler and return its metrics.

    Two modes, matching the paper's two measurement styles:

    - ``duration_ms`` set (default): run a fixed horizon and report
      utilization / latency / miss ratio over it (Figures 3-5);
    - ``instance_limit`` set (with ``duration_ms=None``): every message
      releases exactly that many instances and the run continues until
      all are delivered -- the *running time* experiments (Figures 1-2).

    Args:
        params: Cluster configuration.
        scheduler: Registry name from :data:`SCHEDULERS`.
        periodic: Time-triggered workload (may be ``None``).
        aperiodic: Event-triggered workload (may be ``None``).
        ber: Bit error rate on both channels.
        seed: Root seed for workload jitter and fault injection.
        duration_ms: Fixed horizon, or ``None`` for completion mode.
        instance_limit: Per-message instance cap (completion mode).
        reliability_goal: rho for CoEfficient.
        time_unit_ms: Theorem-1 time unit.
        node_count: Cluster size (paper: 10 nodes).
        max_cycles: Safety cap in completion mode.
        obs: Observability context threaded through the policy, the
            cluster and the metric reduction; policy counters and
            slack-planner statistics are merged into its registry when
            the run ends.
        engine_mode: ``"stepper"`` (default, compiled-timeline fast
            path), ``"interpreter"`` (the pure event-list oracle) or
            ``"vectorized"`` (cycle-batch engine); all three are
            trace-equivalent by construction and by differential test.
        **policy_kwargs: Forwarded to the policy constructor.

    Returns:
        An :class:`ExperimentResult`.
    """
    if duration_ms is None and instance_limit is None:
        raise ValueError("set duration_ms or instance_limit")
    workload = _merge(periodic, aperiodic)
    with obs.section("experiment.setup"):
        packing = pack_signals(workload, params)
        rng = RngStream(seed, scope="experiment")
        ber_model = BitErrorRateModel(ber_channel_a=ber)
        injector = TransientFaultInjector(ber_model, rng)
        policy = make_policy(
            scheduler, packing, ber_model,
            reliability_goal=reliability_goal,
            time_unit_ms=time_unit_ms,
            **policy_kwargs,
        )
        policy.attach_observability(obs)
        sources = packing.build_sources(rng, instance_limit=instance_limit)
        cluster = Cluster(
            params=params,
            policy=policy,
            sources=sources,
            corrupts=injector,
            node_count=node_count,
            obs=obs,
            mode=engine_mode,
        )
    with obs.section("experiment.run"):
        if duration_ms is not None:
            cycles = cluster.run_for_ms(duration_ms)
        else:
            cycles = cluster.run_until_complete(max_cycles=max_cycles)
    metrics = cluster.metrics()
    counters = dict(getattr(policy, "counters", {}))
    if obs.enabled:
        _export_run_observability(obs, scheduler, policy, counters, cycles,
                                  seed)
    return ExperimentResult(
        scheduler=scheduler,
        metrics=metrics,
        counters=counters,
        cycles_run=cycles,
        params=params,
        cluster=cluster,
        engine_mode=EngineMode.parse(engine_mode).value,
    )


def _export_run_observability(obs, scheduler: str,
                              policy: SchedulerPolicy,
                              counters: Dict[str, int],
                              cycles: int, seed: int) -> None:
    """Merge end-of-run policy state into the observability registry."""
    obs.merge_counters("policy", counters)
    obs.set_gauge("engine.cycles_run", cycles)
    planner = getattr(policy, "_planner", None)
    if planner is not None:
        obs.merge_counters("slack.planner", planner.stats)
    obs.emit("experiment.finished", scheduler=scheduler, cycles=cycles,
             seed=seed)


def _merge(periodic: Optional[SignalSet],
           aperiodic: Optional[SignalSet]) -> SignalSet:
    """Combine the workload halves, tolerating either being absent."""
    if periodic is None and aperiodic is None:
        raise ValueError("experiment needs at least one workload")
    if periodic is None:
        return aperiodic  # type: ignore[return-value]
    if aperiodic is None:
        return periodic
    return periodic.merged_with(aperiodic)
