"""Full-reproduction report generation.

Runs every figure's data generator and renders one self-contained
markdown report -- the programmatic counterpart of EXPERIMENTS.md, for
users who change workloads/parameters and want the whole evaluation
regenerated in one call.

The report intentionally contains only *measured* values plus the
paper's published numbers for side-by-side reading; interpretation
lives in EXPERIMENTS.md.
"""

from __future__ import annotations

import io
from typing import Dict, Optional, Sequence

from repro.experiments import figures

__all__ = ["generate_report", "render_rows"]

#: The paper's published values, quoted next to each regenerated series.
_PAPER_NOTES = {
    "fig1": "CoEfficient 76.2 s (80 slots) / 92.3 s (120) vs "
            "FSPEC 1670 / 1910 s",
    "fig2": "same ordering as Fig. 1, larger delays",
    "fig3": "CoEfficient +56.2/55.3/53.8/52.2 % utilization at "
            "25/50/75/100 minislots",
    "fig4": "static: CoEff 4.7/3.8 vs FSPEC 8.2/5.8 ms (BER-7); "
            "dynamic: CoEff 59-67 % lower",
    "fig5": "CoEfficient 4.8 % (BER-7) / 3.2 % (BER-9) vs "
            "FSPEC 21.3 / 19.5 %",
}


def render_rows(rows: Sequence[Dict], title: str,
                note: Optional[str] = None) -> str:
    """Render a data series as a markdown table."""
    out = io.StringIO()
    out.write(f"### {title}\n\n")
    if note:
        out.write(f"*Paper: {note}*\n\n")
    if not rows:
        out.write("(no rows)\n\n")
        return out.getvalue()
    columns = list(rows[0].keys())
    out.write("| " + " | ".join(columns) + " |\n")
    out.write("|" + "|".join("---" for __ in columns) + "|\n")
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.4f}")
            else:
                cells.append(str(value))
        out.write("| " + " | ".join(cells) + " |\n")
    out.write("\n")
    return out.getvalue()


def generate_report(
    duration_ms: float = 500.0,
    seed: int = 42,
    include_running_time: bool = True,
) -> str:
    """Regenerate every evaluation series and render the report.

    Args:
        duration_ms: Horizon for the fixed-horizon figures (3-5).
        seed: Experiment seed.
        include_running_time: Include the (slower) completion-mode
            Figures 1-2.

    Returns:
        The report as a markdown string.
    """
    out = io.StringIO()
    out.write("# CoEfficient reproduction report\n\n")
    out.write(f"(seed {seed}, horizon {duration_ms:g} ms; see "
              f"EXPERIMENTS.md for interpretation)\n\n")

    out.write(render_rows(figures.table2_bbw_rows(),
                          "Table II -- BBW message parameters"))
    out.write(render_rows(figures.table3_acc_rows(),
                          "Table III -- ACC message parameters"))

    if include_running_time:
        out.write(render_rows(
            figures.fig1_2_running_time(ber=1e-7, seed=seed,
                                        instance_limits=(10,),
                                        synthetic_counts=(20,),
                                        static_slot_options=(80, 120)),
            "Figure 1 -- running time, BER = 1e-7",
            _PAPER_NOTES["fig1"],
        ))
        out.write(render_rows(
            figures.fig1_2_running_time(ber=1e-9, seed=seed,
                                        instance_limits=(10,),
                                        synthetic_counts=(20,),
                                        static_slot_options=(80,)),
            "Figure 2 -- running time, BER = 1e-9",
            _PAPER_NOTES["fig2"],
        ))

    from repro.experiments.plots import ascii_bar_chart, ascii_line_chart

    fig3_rows = figures.fig3_bandwidth_utilization(
        duration_ms=duration_ms, seed=seed)
    out.write(render_rows(fig3_rows, "Figure 3 -- bandwidth utilization",
                          _PAPER_NOTES["fig3"]))
    out.write("```\n" + ascii_bar_chart(
        fig3_rows, "minislots", "bandwidth_utilization",
        title="useful utilization by minislot count") + "```\n\n")

    fig4_rows = figures.fig4_transmission_latency(
        duration_ms=duration_ms, seed=seed)
    out.write(render_rows(fig4_rows, "Figure 4 -- transmission latency",
                          _PAPER_NOTES["fig4"]))
    synthetic_relaxed = [
        r for r in fig4_rows
        if r["figure"] == "4ac" and r["ber"] >= 1e-8
    ]
    if synthetic_relaxed:
        out.write("```\n" + ascii_line_chart(
            synthetic_relaxed, "minislots", "dynamic_latency_ms",
            title="dynamic latency vs minislots (synthetic, relaxed goal)")
            + "```\n\n")

    fig5_rows = figures.fig5_deadline_miss_ratio(
        duration_ms=duration_ms, seed=seed)
    out.write(render_rows(fig5_rows, "Figure 5 -- deadline miss ratio",
                          _PAPER_NOTES["fig5"]))
    relaxed = [r for r in fig5_rows if r["ber"] >= 1e-8]
    if relaxed:
        out.write("```\n" + ascii_bar_chart(
            relaxed, "minislots", "deadline_miss_ratio",
            title="miss ratio by minislot count (relaxed goal)")
            + "```\n\n")
    return out.getvalue()
