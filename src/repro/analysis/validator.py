"""Analytical fault-free schedule validation.

Given a schedule table and the packed workload, verify *without
simulation* that every periodic instance meets its deadline in
fault-free operation: for each message, find the worst release-to-slot
wait over the schedule's repeating pattern and compare against the
deadline.  Chunked messages take the worst chunk.

This is the deterministic half of what the simulation shows; tests
cross-validate the two (the validator's worst-case bound must dominate
every fault-free simulated latency), and the CoEfficient policy can be
audited post-bind: ``validate_schedule(policy.table, packing, params)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.protocol.channel import Channel
from repro.protocol.frame import frame_duration_mt
from repro.protocol.geometry import SegmentGeometry
from repro.protocol.schedule import ScheduleTable
from repro.packing.frame_packing import PackedMessage, PackingResult

__all__ = ["MessageValidation", "validate_schedule"]


@dataclass(frozen=True)
class MessageValidation:
    """Worst-case fault-free timing of one periodic message.

    Attributes:
        message_id: The packed message.
        worst_latency_mt: Largest release-to-delivery over the pattern.
        deadline_mt: The message's relative deadline.
        scheduled: Whether every chunk was found in the table.
    """

    message_id: str
    worst_latency_mt: int
    deadline_mt: int
    scheduled: bool

    @property
    def meets_deadline(self) -> bool:
        return self.scheduled and self.worst_latency_mt <= self.deadline_mt


def _chunk_worst_latency(
    table: ScheduleTable,
    params: SegmentGeometry,
    message: PackedMessage,
    chunk_index: int,
) -> Optional[int]:
    """Worst release-to-delivery of one chunk over the pattern, or
    ``None`` if the chunk is not scheduled."""
    placements: List[Tuple[int, int, int]] = []  # (slot, base, rep)
    for channel in (Channel.A, Channel.B):
        for assignment in table.assignments(channel):
            frame = assignment.frame
            if (frame.message_id == message.message_id
                    and frame.chunk == chunk_index):
                placements.append((assignment.slot_id, frame.base_cycle,
                                   frame.cycle_repetition))
    if not placements:
        return None

    cycle_mt = params.gd_cycle_mt
    period_mt = params.ms_to_mt(message.period_ms)
    offset_mt = params.ms_to_mt(message.offset_ms)
    duration = frame_duration_mt(
        message.chunks[chunk_index].payload_bits, params)

    # Releases repeat with lcm(period, rep * cycle) -- walk one full
    # pattern of releases and take, per release, the earliest firing
    # across all placements of this chunk.
    pattern_mt = period_mt
    for __, ___, repetition in placements:
        span = repetition * cycle_mt
        pattern_mt = pattern_mt * span // math.gcd(pattern_mt, span)
    releases = range(offset_mt, offset_mt + pattern_mt, period_mt)

    worst = 0
    for release in releases:
        best_delivery: Optional[int] = None
        for slot_id, base, repetition in placements:
            action_in_cycle = ((slot_id - 1) * params.gd_static_slot_mt
                               + params.gd_action_point_offset_mt)
            # First cycle >= release's cycle with cycle % rep == base
            # whose action point is not before the release.
            cycle_index = release // cycle_mt
            for probe in range(cycle_index, cycle_index + 2 * repetition + 1):
                if probe % repetition != base:
                    continue
                action = probe * cycle_mt + action_in_cycle
                if action >= release:
                    delivery = action + duration
                    if best_delivery is None or delivery < best_delivery:
                        best_delivery = delivery
                    break
        if best_delivery is None:
            return None  # no firing found within the probe window
        worst = max(worst, best_delivery - release)
    return worst


def validate_schedule(
    table: ScheduleTable,
    packing: PackingResult,
    params: SegmentGeometry,
) -> List[MessageValidation]:
    """Validate every periodic message of a packed workload.

    Returns:
        One :class:`MessageValidation` per periodic message, sorted by
        message id.  Aperiodic messages have no static schedule and are
        skipped (their guarantees are the dynamic segment's).
    """
    out: List[MessageValidation] = []
    for message in packing.periodic_messages():
        deadline_mt = params.ms_to_mt(message.deadline_ms)
        worst = 0
        scheduled = True
        for chunk_index in range(message.chunk_count):
            chunk_worst = _chunk_worst_latency(table, params, message,
                                               chunk_index)
            if chunk_worst is None:
                scheduled = False
                break
            worst = max(worst, chunk_worst)
        out.append(MessageValidation(
            message_id=message.message_id,
            worst_latency_mt=worst if scheduled else 0,
            deadline_mt=deadline_mt,
            scheduled=scheduled,
        ))
    return sorted(out, key=lambda v: v.message_id)
