"""Sensitivity analysis: breakdown load search.

A classic schedulability-research instrument the paper's evaluation
implies but never runs: scale the event-triggered load until a
scheduler starts missing deadlines, and report the *breakdown factor* --
the largest load multiplier it sustains.  Comparing breakdown factors
condenses the whole Figure-3/5 story into one number per scheduler:
CoEfficient's cooperative capacity (dual-channel dynamic + stolen
static slack) sustains a strictly higher factor than FSPEC's single
dynamic channel.

The search is a standard monotone bisection over the load multiplier;
load is scaled by dividing the aperiodic set's inter-arrival times (so
a factor of 2.0 doubles the event rate).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable

from repro.protocol.geometry import SegmentGeometry
from repro.protocol.signal import SignalSet

__all__ = ["scale_aperiodic_load", "bisect_breakdown",
           "aperiodic_breakdown_factor", "BreakdownResult"]


def scale_aperiodic_load(signals: SignalSet, factor: float) -> SignalSet:
    """Scale an aperiodic set's event rate by ``factor``.

    Inter-arrival times (and the period field carrying them) are divided
    by the factor; deadlines and sizes are untouched, so a factor of 2
    is "the same messages, twice as often".

    Args:
        signals: An aperiodic signal set.
        factor: Rate multiplier (> 0).
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    scaled = []
    for signal in signals:
        if not signal.aperiodic:
            raise ValueError(
                f"{signal.name}: scale_aperiodic_load only scales "
                f"aperiodic sets"
            )
        interarrival = (signal.min_interarrival_ms
                        or signal.period_ms) / factor
        scaled.append(dataclasses.replace(
            signal,
            period_ms=signal.period_ms / factor,
            min_interarrival_ms=interarrival,
        ))
    return SignalSet(scaled, name=f"{signals.name}x{factor:g}")


@dataclass(frozen=True)
class BreakdownResult:
    """Outcome of a breakdown search.

    Attributes:
        factor: Largest sustained load multiplier found.
        miss_at_factor: Miss ratio measured at that factor.
        miss_above: Miss ratio just above (at ``factor * (1 + step)``).
        evaluations: Simulation runs spent.
    """

    factor: float
    miss_at_factor: float
    miss_above: float
    evaluations: int


def bisect_breakdown(
    miss_ratio_at: Callable[[float], float],
    low: float = 0.5,
    high: float = 8.0,
    miss_threshold: float = 0.01,
    tolerance: float = 0.05,
    max_evaluations: int = 24,
) -> BreakdownResult:
    """Find the largest factor whose miss ratio stays under a threshold.

    Assumes ``miss_ratio_at`` is (noisily) nondecreasing in the factor.

    Args:
        miss_ratio_at: Load factor -> measured miss ratio.
        low: A factor assumed sustainable (checked; the search degrades
            gracefully if not).
        high: A factor assumed unsustainable (expanded once if not).
        miss_threshold: "Sustained" means miss ratio <= this.
        tolerance: Relative width at which bisection stops.
        max_evaluations: Cap on simulation runs.

    Returns:
        A :class:`BreakdownResult`.
    """
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    evaluations = 0

    low_miss = miss_ratio_at(low)
    evaluations += 1
    if low_miss > miss_threshold:
        return BreakdownResult(factor=low, miss_at_factor=low_miss,
                               miss_above=low_miss,
                               evaluations=evaluations)
    high_miss = miss_ratio_at(high)
    evaluations += 1
    if high_miss <= miss_threshold:
        # Even `high` is sustained; expand once and accept whatever holds.
        high *= 2
        high_miss = miss_ratio_at(high)
        evaluations += 1
        if high_miss <= miss_threshold:
            return BreakdownResult(factor=high, miss_at_factor=high_miss,
                                   miss_above=high_miss,
                                   evaluations=evaluations)

    best = low
    best_miss = low_miss
    while (high - best) / best > tolerance \
            and evaluations < max_evaluations:
        mid = math.sqrt(best * high)  # geometric midpoint for rates
        mid_miss = miss_ratio_at(mid)
        evaluations += 1
        if mid_miss <= miss_threshold:
            best, best_miss = mid, mid_miss
        else:
            high, high_miss = mid, mid_miss
    return BreakdownResult(factor=best, miss_at_factor=best_miss,
                           miss_above=high_miss, evaluations=evaluations)


def aperiodic_breakdown_factor(
    scheduler: str,
    params: SegmentGeometry,
    periodic: SignalSet,
    aperiodic: SignalSet,
    ber: float = 1e-7,
    reliability_goal: float = 1 - 1e-4,
    duration_ms: float = 500.0,
    seed: int = 42,
    miss_threshold: float = 0.01,
    **search_kwargs,
) -> BreakdownResult:
    """Breakdown factor of one scheduler on one workload.

    Args:
        scheduler: Registry name.
        params: Cluster configuration.
        periodic: Time-triggered workload (unscaled).
        aperiodic: Event-triggered workload (scaled by the search).
        ber: Bit error rate.
        reliability_goal: rho (CoEfficient).
        duration_ms: Horizon per evaluation.
        seed: Experiment seed.
        miss_threshold: Sustained-load criterion.
        **search_kwargs: Forwarded to :func:`bisect_breakdown`.
    """
    # Imported lazily: the runner imports the policies, which import
    # this package's siblings -- a module-level import would be circular.
    from repro.experiments.runner import run_experiment

    def miss_ratio_at(factor: float) -> float:
        result = run_experiment(
            params=params,
            scheduler=scheduler,
            periodic=periodic,
            aperiodic=scale_aperiodic_load(aperiodic, factor),
            ber=ber,
            seed=seed,
            duration_ms=duration_ms,
            reliability_goal=reliability_goal,
        )
        return result.metrics.deadline_miss_ratio

    return bisect_breakdown(miss_ratio_at,
                            miss_threshold=miss_threshold,
                            **search_kwargs)
