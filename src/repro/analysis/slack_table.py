"""Static idle-slot table: the FlexRay form of precomputed slack.

Section III-F: "CoEfficient handles the hard periodic tasks by examining
the selective slacks between the deadlines ... We further use a table to
store and maintain the identified values.  A set of counters can be
helpful to keep track of the selective slacks."

In the table-driven static segment, the periodic schedule is fixed, so
the *structural* slack -- slots where no assignment fires -- is exactly
periodic with the schedule's repetition pattern (<= 64 cycles).  The
heavy lifting now lives in the timeline compiler: a
:class:`~repro.timeline.compiler.CompiledRound` derives per-channel,
per-cycle idle tables with prefix sums directly from its flat arrays.
This class is the analysis-facing view over those tables; the online
scheduler answers "how much slack is guaranteed between now and a
deadline?" with pure arithmetic, the fast path the paper's "fast and
accurate slack computation" requires.

(On top of structural slack the online scheduler also sees *dynamic*
slack -- slots whose owner's buffer happens to be empty -- which is free
extra and never needed for guarantees.)
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.protocol.channel import Channel
from repro.protocol.schedule import ScheduleTable
from repro.timeline.compiler import CompiledRound, compile_round

__all__ = ["IdleSlotTable"]


class IdleSlotTable:
    """Precomputed structural idle slots of a static schedule.

    A view over the slack tables of a compiled round.  Construct either
    from a schedule (compiles a round internally) or, when the policy has
    already compiled one, via :meth:`from_compiled` -- both paths read
    the same derived tables, so analysis and execution cannot disagree.

    Args:
        table: The schedule to analyze.
        channels: Channels to include.
    """

    def __init__(self, table: ScheduleTable,
                 channels: Sequence[Channel]) -> None:
        self._round = compile_round(table, table.params, list(channels))

    @classmethod
    def from_compiled(cls, compiled: CompiledRound) -> "IdleSlotTable":
        """Wrap an already-compiled round (no recompilation)."""
        instance = cls.__new__(cls)
        instance._round = compiled
        return instance

    @property
    def compiled(self) -> CompiledRound:
        """The backing compiled round."""
        return self._round

    @property
    def pattern_length(self) -> int:
        """Cycles after which the idle pattern repeats."""
        return self._round.pattern_length

    @property
    def channels(self) -> List[Channel]:
        """Channels included in this table."""
        return list(self._round.channels)

    def idle_slots(self, channel: Channel, cycle: int) -> Tuple[int, ...]:
        """Structurally idle slot IDs of (channel, cycle)."""
        return self._round.idle_slots(channel, cycle)

    def idle_count(self, channel: Channel, cycle: int) -> int:
        """Number of structurally idle slots of (channel, cycle)."""
        return self._round.idle_count(channel, cycle)

    def idle_slot_windows(self, channel: Channel,
                          cycle: int) -> Tuple[Tuple[int, int], ...]:
        """Within-cycle ``(start, end)`` windows of the idle slots."""
        return self._round.idle_slot_windows(channel, cycle)

    def idle_slots_between(self, start_cycle: int, end_cycle: int) -> int:
        """Total structurally idle slots over cycles [start, end), all channels.

        This is the guaranteed slack supply the hard-aperiodic acceptance
        test (Section III-C) measures demand against.
        """
        return self._round.idle_slots_between(start_cycle, end_cycle)

    def structural_utilization(self) -> float:
        """Fraction of static (slot, cycle, channel) capacity in use."""
        return self._round.structural_utilization()
