"""Static idle-slot table: the FlexRay form of precomputed slack.

Section III-F: "CoEfficient handles the hard periodic tasks by examining
the selective slacks between the deadlines ... We further use a table to
store and maintain the identified values.  A set of counters can be
helpful to keep track of the selective slacks."

In the table-driven static segment, the periodic schedule is fixed, so
the *structural* slack -- slots where no assignment fires -- is exactly
periodic with the schedule's repetition pattern (<= 64 cycles).  This
table precomputes, per channel and per cycle-in-pattern, which slots are
structurally idle; the online scheduler then answers "how much slack is
guaranteed between now and a deadline?" with pure arithmetic, the fast
path the paper's "fast and accurate slack computation" requires.

(On top of structural slack the online scheduler also sees *dynamic*
slack -- slots whose owner's buffer happens to be empty -- which is free
extra and never needed for guarantees.)
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.flexray.channel import Channel
from repro.flexray.schedule import ScheduleTable

__all__ = ["IdleSlotTable"]


class IdleSlotTable:
    """Precomputed structural idle slots of a static schedule.

    Args:
        table: The schedule to analyze.
        channels: Channels to include.
    """

    def __init__(self, table: ScheduleTable,
                 channels: Sequence[Channel]) -> None:
        self._params = table.params
        self._channels = list(channels)
        self._pattern_length = self._compute_pattern_length(table)
        # idle[channel][cycle_in_pattern] -> tuple of idle slot IDs
        self._idle: Dict[Channel, List[Tuple[int, ...]]] = {}
        total_slots = self._params.g_number_of_static_slots
        for channel in self._channels:
            per_cycle: List[Tuple[int, ...]] = []
            for cycle in range(self._pattern_length):
                idle = tuple(
                    slot_id for slot_id in range(1, total_slots + 1)
                    if table.lookup(channel, cycle, slot_id) is None
                )
                per_cycle.append(idle)
            self._idle[channel] = per_cycle
        self._idle_per_cycle_total = [
            sum(len(self._idle[channel][cycle]) for channel in self._channels)
            for cycle in range(self._pattern_length)
        ]

    @staticmethod
    def _compute_pattern_length(table: ScheduleTable) -> int:
        """LCM of all repetitions = the schedule's cycle pattern length."""
        length = 1
        for channel in (Channel.A, Channel.B):
            for assignment in table.assignments(channel):
                repetition = assignment.frame.cycle_repetition
                length = length * repetition // math.gcd(length, repetition)
        return length

    @property
    def pattern_length(self) -> int:
        """Cycles after which the idle pattern repeats."""
        return self._pattern_length

    @property
    def channels(self) -> List[Channel]:
        """Channels included in this table."""
        return list(self._channels)

    def idle_slots(self, channel: Channel, cycle: int) -> Tuple[int, ...]:
        """Structurally idle slot IDs of (channel, cycle)."""
        if channel not in self._idle:
            return ()
        return self._idle[channel][cycle % self._pattern_length]

    def idle_count(self, channel: Channel, cycle: int) -> int:
        """Number of structurally idle slots of (channel, cycle)."""
        return len(self.idle_slots(channel, cycle))

    def idle_slots_between(self, start_cycle: int, end_cycle: int) -> int:
        """Total structurally idle slots over cycles [start, end), all channels.

        This is the guaranteed slack supply the hard-aperiodic acceptance
        test (Section III-C) measures demand against.
        """
        if end_cycle < start_cycle:
            raise ValueError(
                f"empty cycle range [{start_cycle}, {end_cycle})"
            )
        total = 0
        full_patterns, remainder = divmod(
            end_cycle - start_cycle, self._pattern_length
        )
        if full_patterns:
            total += full_patterns * sum(self._idle_per_cycle_total)
        for offset in range(remainder):
            cycle = (start_cycle + offset) % self._pattern_length
            total += self._idle_per_cycle_total[cycle]
        return total

    def structural_utilization(self) -> float:
        """Fraction of static (slot, cycle, channel) capacity in use."""
        capacity = (self._params.g_number_of_static_slots
                    * self._pattern_length * len(self._channels))
        idle = sum(self._idle_per_cycle_total)
        return 1.0 - idle / capacity if capacity else 0.0
