"""Fixed-priority schedulability analysis substrate.

The classical real-time analysis toolkit the paper's scheduling theory
(Section III) builds on:

- :mod:`repro.analysis.busy_period` -- level-i busy periods;
- :mod:`repro.analysis.response_time` -- worst-case response-time
  analysis for hard periodic tasks;
- :mod:`repro.analysis.slack_table` -- the static idle-slot table the
  FlexRay-level slack stealer consults (the table-driven counterpart of
  the processor-model slack stealer in :mod:`repro.core.slack_stealing`).
"""

from repro.analysis.busy_period import level_i_busy_period, synchronous_busy_period
from repro.analysis.dynamic_response import (
    DynamicMessageSpec,
    dynamic_segment_schedulable,
    dynamic_worst_case_delay_cycles,
)
from repro.analysis.response_time import (
    is_schedulable,
    response_time_analysis,
    worst_case_response_time,
)
from repro.analysis.sensitivity import (
    aperiodic_breakdown_factor,
    bisect_breakdown,
    scale_aperiodic_load,
)
from repro.analysis.slack_table import IdleSlotTable
from repro.analysis.validator import MessageValidation, validate_schedule

__all__ = [
    "DynamicMessageSpec",
    "IdleSlotTable",
    "MessageValidation",
    "aperiodic_breakdown_factor",
    "bisect_breakdown",
    "dynamic_segment_schedulable",
    "dynamic_worst_case_delay_cycles",
    "scale_aperiodic_load",
    "validate_schedule",
    "is_schedulable",
    "level_i_busy_period",
    "response_time_analysis",
    "synchronous_busy_period",
    "worst_case_response_time",
]
