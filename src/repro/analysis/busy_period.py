"""Level-i busy-period computation.

Section III-F of the paper: "For a level i busy period, it is a
continuous time interval and we can place one or more tasks of priority
level i or higher in the execution queue.  On the other hand, a level i
idle period is a time interval [where] the corresponding execution queue
is free of level i or higher priority tasks."

The computations here are the classical fixed-priority recurrences
(Lehoczky 1990): the synchronous level-i busy period is the fixed point
of ``L = sum_{j <= i} ceil(L / T_j) * C_j`` started at the critical
instant.  Tasks are given as ``(C, T)`` pairs in priority order (index 0
= highest priority); all times share one unit (macroticks in this
reproduction).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = ["synchronous_busy_period", "level_i_busy_period"]

#: Iteration cap: a recurrence that has not converged after this many
#: steps indicates utilization >= 1 (the busy period never ends).
_MAX_ITERATIONS = 100_000


def _validate_tasks(tasks: Sequence[Tuple[int, int]]) -> None:
    for index, (execution, period) in enumerate(tasks):
        if execution <= 0:
            raise ValueError(f"task {index}: execution must be positive")
        if period <= 0:
            raise ValueError(f"task {index}: period must be positive")


def level_i_busy_period(tasks: Sequence[Tuple[int, int]], level: int) -> int:
    """Length of the synchronous level-``level`` busy period.

    Args:
        tasks: ``(C_j, T_j)`` in priority order (0 = highest).
        level: Priority level i; tasks ``0..level`` participate.

    Returns:
        The busy-period length (same unit as the inputs).

    Raises:
        ValueError: On malformed tasks or an over-utilized level
            (the recurrence diverges).
    """
    if not 0 <= level < len(tasks):
        raise ValueError(f"level {level} out of range for {len(tasks)} tasks")
    _validate_tasks(tasks)
    involved = tasks[:level + 1]
    utilization = sum(c / t for c, t in involved)
    if utilization >= 1.0:
        raise ValueError(
            f"level-{level} utilization {utilization:.3f} >= 1; "
            f"busy period unbounded"
        )
    length = sum(c for c, __ in involved)
    for __ in range(_MAX_ITERATIONS):
        demand = sum(math.ceil(length / t) * c for c, t in involved)
        if demand == length:
            return length
        length = demand
    raise RuntimeError("busy-period recurrence failed to converge")


def synchronous_busy_period(tasks: Sequence[Tuple[int, int]]) -> int:
    """The full (lowest-level) synchronous busy period of a task set."""
    if not tasks:
        return 0
    return level_i_busy_period(tasks, len(tasks) - 1)
