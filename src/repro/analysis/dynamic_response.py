"""Worst-case delay analysis for the FTDMA dynamic segment.

The related-work line the paper cites as [10], [16] ("Message scheduling
for the FlexRay protocol: the dynamic segment", "Schedulability analysis
for the dynamic segment...") bounds how long an event-triggered message
can wait under minislot-counting arbitration.  This module implements a
conservative bound in their style:

A message m needing ``c_m`` minislots transmits in the first cycle whose
dynamic segment still has room after

1. **higher-priority demand** -- every lower-frame-ID message that can be
   pending takes its minislots first (worst case: all released together
   with m and re-released at their minimum inter-arrival);
2. **ID traversal** -- one idle minislot per higher-priority ID with no
   pending message (the slot counter walks every ID);
3. **fragmentation** -- up to ``c_m - 1`` minislots at the end of a cycle
   are unusable for m (the frame must fit the remainder, else it waits a
   full cycle).

The bound is the smallest window of whole cycles in which cumulative
usable capacity covers cumulative demand; ``None`` marks structural
unschedulability (m never fits, e.g. ``c_m`` exceeds the segment).

Cross-validation: the simulated per-ID FTDMA (the dynamic-priority
baseline) must never exceed this bound in fault-free runs -- asserted in
``tests/analysis/test_dynamic_response.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["DynamicMessageSpec", "dynamic_worst_case_delay_cycles",
           "dynamic_segment_schedulable"]

#: Safety cap on the window search.
_MAX_WINDOW_CYCLES = 100_000


@dataclass(frozen=True)
class DynamicMessageSpec:
    """One dynamic message for the analysis.

    Attributes:
        name: Identifier.
        minislots: Minislots one transmission occupies (frame length in
            minislots plus the dynamic-slot idle phase).
        period_cycles: Minimum inter-arrival time in whole communication
            cycles (>= 1; fractional inter-arrivals round *down*, which
            over-approximates demand and keeps the bound safe).
    """

    name: str
    minislots: int
    period_cycles: int

    def __post_init__(self) -> None:
        if self.minislots < 1:
            raise ValueError(f"{self.name}: minislots must be >= 1")
        if self.period_cycles < 1:
            raise ValueError(f"{self.name}: period_cycles must be >= 1")


def dynamic_worst_case_delay_cycles(
    message: DynamicMessageSpec,
    higher_priority: Sequence[DynamicMessageSpec],
    segment_minislots: int,
    latest_tx: Optional[int] = None,
) -> Optional[int]:
    """Worst-case cycles from release to the start of m's transmission.

    Args:
        message: The message under analysis.
        higher_priority: Messages with lower frame IDs.
        segment_minislots: gNumberOfMinislots.
        latest_tx: pLatestTx (defaults to the whole segment).

    Returns:
        The smallest number of whole cycles m can be delayed (0 = it can
        transmit in its release cycle even in the worst case), or
        ``None`` if no window ever fits m.
    """
    if segment_minislots < 1:
        return None
    usable_per_cycle = min(segment_minislots,
                           latest_tx if latest_tx else segment_minislots)

    # m must fit a cycle at all: its own minislots plus the traversal of
    # every higher-priority ID (one minislot each when idle).
    traversal = len(higher_priority)
    if message.minislots + traversal > usable_per_cycle:
        return None

    # Fragmentation loss per cycle: the worst suffix m cannot use.
    fragmentation = message.minislots - 1

    for window in range(1, _MAX_WINDOW_CYCLES + 1):
        capacity = window * usable_per_cycle
        demand = 0
        for rival in higher_priority:
            instances = math.ceil(window / rival.period_cycles)
            # Each pending instance takes its minislots; an idle ID still
            # costs one traversal minislot per cycle it is idle.
            demand += instances * rival.minislots
            idle_cycles = window - min(window, instances)
            demand += idle_cycles
        demand += window * 0  # m's own traversal position is counted below
        # m transmits in the last cycle of the window: it needs its own
        # minislots there, and every cycle may lose the fragmentation
        # suffix to the doesn't-fit rule.
        total_needed = demand + message.minislots + window * fragmentation
        if capacity >= total_needed:
            return window - 1
    return None


def dynamic_segment_schedulable(
    messages: Sequence[DynamicMessageSpec],
    segment_minislots: int,
    deadlines_cycles: Sequence[int],
    latest_tx: Optional[int] = None,
) -> List[Tuple[str, Optional[int], bool]]:
    """Bound every message of a priority-ordered set.

    Args:
        messages: Messages in frame-ID (priority) order, highest first.
        segment_minislots: gNumberOfMinislots.
        deadlines_cycles: Relative deadline of each message, in cycles.
        latest_tx: pLatestTx.

    Returns:
        ``(name, worst_delay_cycles_or_None, meets_deadline)`` per
        message.
    """
    if len(messages) != len(deadlines_cycles):
        raise ValueError("need one deadline per message")
    out: List[Tuple[str, Optional[int], bool]] = []
    for index, message in enumerate(messages):
        delay = dynamic_worst_case_delay_cycles(
            message, messages[:index], segment_minislots, latest_tx)
        meets = delay is not None and delay + 1 <= deadlines_cycles[index]
        out.append((message.name, delay, meets))
    return out
