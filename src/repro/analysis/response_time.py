"""Worst-case response-time analysis for fixed-priority periodic tasks.

The standard Joseph-Pandya/Audsley recurrence:

    R_i = C_i + sum_{j < i} ceil(R_i / T_j) * C_j

iterated to a fixed point, with the blocking term ``B_i`` extended for
callers that model non-preemptive sections (a FlexRay slot in progress
cannot be preempted, so the largest lower-priority slot length is the
blocking bound).

Used by CoEfficient's admission reasoning and by tests that check the
simulated latencies never exceed the analytical worst case for
fault-free runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["worst_case_response_time", "response_time_analysis",
           "is_schedulable"]

_MAX_ITERATIONS = 100_000


def worst_case_response_time(
    tasks: Sequence[Tuple[int, int]],
    index: int,
    blocking: int = 0,
) -> Optional[int]:
    """WCRT of task ``index`` under fixed-priority preemptive scheduling.

    Args:
        tasks: ``(C_j, T_j)`` in priority order (0 = highest).
        index: Task under analysis.
        blocking: Non-preemptive blocking bound B_i.

    Returns:
        The worst-case response time, or ``None`` if the recurrence
        diverges past the task's period (the task is unschedulable and
        the response time is unbounded for analysis purposes).
    """
    if not 0 <= index < len(tasks):
        raise ValueError(f"index {index} out of range")
    if blocking < 0:
        raise ValueError(f"blocking must be >= 0, got {blocking}")
    execution, period = tasks[index]
    if execution <= 0 or period <= 0:
        raise ValueError("execution and period must be positive")
    higher = tasks[:index]
    response = execution + blocking
    for __ in range(_MAX_ITERATIONS):
        interference = sum(
            math.ceil(response / t) * c for c, t in higher
        )
        candidate = execution + blocking + interference
        if candidate == response:
            return response
        # Divergence guard: once past 2x the hyper-ish bound there is no
        # fixed point below any meaningful deadline.
        if candidate > 1_000 * period:
            return None
        response = candidate
    return None


@dataclass(frozen=True)
class _TaskResult:
    """Per-task outcome of a full analysis run."""

    response_time: Optional[int]
    deadline: int

    @property
    def schedulable(self) -> bool:
        return (self.response_time is not None
                and self.response_time <= self.deadline)


def response_time_analysis(
    tasks: Sequence[Tuple[int, int, int]],
    blocking: int = 0,
) -> Dict[int, Optional[int]]:
    """WCRT for every task of a set.

    Args:
        tasks: ``(C_i, T_i, D_i)`` in priority order.
        blocking: Uniform non-preemptive blocking bound.

    Returns:
        ``index -> response time`` (``None`` marks divergence).
    """
    pairs = [(c, t) for c, t, __ in tasks]
    return {
        index: worst_case_response_time(pairs, index, blocking)
        for index in range(len(tasks))
    }


def is_schedulable(tasks: Sequence[Tuple[int, int, int]],
                   blocking: int = 0) -> bool:
    """Whether every task's WCRT is within its deadline."""
    results = response_time_analysis(tasks, blocking)
    for index, (__, ___, deadline) in enumerate(tasks):
        response = results[index]
        if response is None or response > deadline:
            return False
    return True
